//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the API subset the kSPR property tests use:
//!
//! * the [`Strategy`] trait, implemented for numeric ranges, tuples of
//!   strategies and [`collection::vec`],
//! * the [`proptest!`] macro (including the `#![proptest_config(...)]`
//!   header) and the `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` assertion macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is no shrinking and no failure persistence:
//! inputs are drawn from a deterministic RNG seeded from the test's module
//! path and name, so failures reproduce across runs.  `prop_assume!` skips
//! the offending case instead of re-drawing.  Swapping back to the real crate
//! is a one-line change in the workspace manifest.

use std::ops::{Range, RangeInclusive};

/// Execution configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases every test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic RNG driving input generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary string (typically the test name), so
    /// every test draws a reproducible input sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A size in `[lo, hi)`.
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo + 1 {
            return lo;
        }
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a size range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing `Vec`s whose length lies in `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.size_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The prelude: everything a `proptest!` block needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests over randomly drawn inputs.
///
/// Supported form (a subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0.0f64..1.0, v in prop::collection::vec(0u64..9, 3)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0f64..1.0, len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.25f64..0.75, n in 1usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0.0f64..1.0, 2..5), w in unit_vec(3)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert_eq!(w.len(), 3);
            prop_assert_ne!(w.len(), 4);
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..10, 0u64..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert!(pair.0 != pair.1);
        }
    }
}
