//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the API subset the kSPR workspace uses — `par_iter()` over
//! slices and `Vec`s, `map`, `collect`, plus [`join`] and
//! [`current_num_threads`] — on top of `std::thread::scope`.  Work is split
//! into one contiguous chunk per available core; there is no work stealing,
//! which is adequate for the coarse-grained, per-query parallelism the
//! workspace needs.  Swapping back to the real crate is a one-line change in
//! the workspace manifest.

use std::num::NonZeroUsize;
use std::thread;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel iterator will use.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Types that can produce a parallel iterator over references to their items.
pub trait IntoParallelRefIterator<'a> {
    /// The item type iterated over.
    type Item: Sync + 'a;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> SliceParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

/// A parallel iterator over the items of a slice.
pub struct SliceParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> SliceParIter<'a, T> {
    /// Maps every item through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> Map<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        Map {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync + Send> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn drive(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// A mapped parallel iterator (the result of [`SliceParIter::map`]).
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The driving end of this crate's parallel iterators.
pub trait ParallelIterator: Sized {
    /// The item type produced.
    type Item: Send;

    /// Executes the pipeline and returns the results in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Executes the pipeline and collects the results (in input order).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Number of items produced (executes the pipeline).
    fn count(self) -> usize {
        self.drive().len()
    }
}

impl<'a, T, R, F> ParallelIterator for Map<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let n = self.items.len();
        let workers = current_num_threads().min(n.max(1));
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        // One scoped thread per contiguous chunk; chunk order preserves input
        // order in the flattened result.
        thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u64> = Vec::new();
        let out: Vec<u64> = input.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let input: Vec<u64> = (0..16).collect();
        let _: Vec<u64> = input
            .par_iter()
            .map(|x| {
                if *x == 7 {
                    panic!("boom");
                }
                *x
            })
            .collect();
    }
}
