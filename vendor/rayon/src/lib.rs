//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the API subset the kSPR workspace uses:
//!
//! * `par_iter()` over slices and `Vec`s, `map`, `collect`, plus [`join`] and
//!   [`current_num_threads`] — on top of `std::thread::scope`, split into one
//!   contiguous chunk per available core.  Adequate for the coarse-grained
//!   per-query parallelism of batch serving.
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] and [`ThreadPool::scope`] /
//!   [`scope`] with [`Scope::spawn`] — dynamic task parallelism over
//!   work-stealing deques (owner pops LIFO, thieves steal FIFO, in the style
//!   of Chase–Lev), which is what the intra-query CellTree expansion needs:
//!   its task tree is skewed and unpredictable, so fixed-chunk splitting
//!   serializes behind the deepest subtree while stealing keeps every worker
//!   busy.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! manifest; the signatures mirror `rayon`'s.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads a parallel iterator will use.
pub fn current_num_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Types that can produce a parallel iterator over references to their items.
pub trait IntoParallelRefIterator<'a> {
    /// The item type iterated over.
    type Item: Sync + 'a;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> SliceParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter { items: self }
    }
}

/// A parallel iterator over the items of a slice.
pub struct SliceParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> SliceParIter<'a, T> {
    /// Maps every item through `f`, in parallel.
    pub fn map<R, F>(self, f: F) -> Map<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        Map {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync + Send> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn drive(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// A mapped parallel iterator (the result of [`SliceParIter::map`]).
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// The driving end of this crate's parallel iterators.
pub trait ParallelIterator: Sized {
    /// The item type produced.
    type Item: Send;

    /// Executes the pipeline and returns the results in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Executes the pipeline and collects the results (in input order).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Number of items produced (executes the pipeline).
    fn count(self) -> usize {
        self.drive().len()
    }
}

impl<'a, T, R, F> ParallelIterator for Map<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let n = self.items.len();
        let workers = current_num_threads().min(n.max(1));
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        // One scoped thread per contiguous chunk; chunk order preserves input
        // order in the flattened result.
        thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

// ---------------------------------------------------------------------------
// Work-stealing thread pool with scoped task spawning
// ---------------------------------------------------------------------------

/// A task queued on the pool.  Tasks are type-erased to `'static` when
/// enqueued; the `'scope` lifetime they actually borrow is enforced by
/// [`ThreadPool::scope`], which never returns before every task finished.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    /// One deque per worker.  The owner pushes and pops at the back (LIFO,
    /// keeping the hot subtree in cache); thieves steal from the front (FIFO,
    /// taking the oldest — typically largest — task), the classic Chase–Lev
    /// discipline.  A `Mutex` per deque stands in for the lock-free original;
    /// contention is negligible at the task granularity the workspace uses
    /// (every task runs at least one LP feasibility test).
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Submissions from threads that are not workers of this pool.
    injector: Mutex<VecDeque<Task>>,
    /// Tasks spawned but not yet finished (across the active scope).
    pending: AtomicUsize,
    /// Set by `Drop` to terminate the workers.
    shutdown: AtomicBool,
    /// First panic observed in a task; rethrown when the scope closes.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Parking for idle workers and the scope-closing caller.
    lock: Mutex<()>,
    cv: Condvar,
}

impl PoolShared {
    /// Pops a task: own deque back (LIFO) first when called from worker
    /// `me`, then the injector front, then steals from the other deques'
    /// fronts (FIFO).
    fn take_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(me) = me {
            if let Some(t) = self.deques[me].lock().ok()?.pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().ok()?.pop_front() {
            return Some(t);
        }
        for (i, deque) in self.deques.iter().enumerate() {
            if Some(i) == me {
                continue;
            }
            if let Some(t) = deque.lock().ok()?.pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Runs a task, capturing the first panic, and retires it from `pending`.
    fn run_task(&self, task: Task) {
        let outcome = panic::catch_unwind(AssertUnwindSafe(task));
        if let Err(payload) = outcome {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.pending.fetch_sub(1, Ordering::SeqCst);
        // Wake the scope-closing caller (waiting for pending == 0) and any
        // parked worker (a finished task may have spawned successors).
        self.cv.notify_all();
    }

    /// Enqueues an already-counted task, preferring the current worker's own
    /// deque when called from inside the pool.
    fn push_task(&self, task: Task) {
        let me = current_worker(self);
        match me {
            Some(i) => self.deques[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task),
            None => self
                .injector
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(task),
        }
        self.cv.notify_one();
    }
}

std::thread_local! {
    /// `(pool identity, worker index)` of the current thread, when it is a
    /// pool worker.  The identity is the address of the pool's `PoolShared`,
    /// so a worker only ever pushes to its own pool's deques.
    static WORKER: std::cell::Cell<(usize, usize)> = const { std::cell::Cell::new((0, usize::MAX)) };
}

/// The worker index of the calling thread within `shared`'s pool, if any.
fn current_worker(shared: &PoolShared) -> Option<usize> {
    let (pool, idx) = WORKER.with(std::cell::Cell::get);
    (pool == shared as *const PoolShared as usize).then_some(idx)
}

fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    WORKER.with(|w| w.set((Arc::as_ptr(&shared) as usize, me)));
    loop {
        if let Some(task) = shared.take_task(Some(me)) {
            shared.run_task(task);
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Park briefly.  The timeout (rather than an exact wakeup protocol)
        // bounds the cost of any lost-wakeup race to one millisecond.
        let guard = shared.lock.lock().unwrap_or_else(|e| e.into_inner());
        let _ = shared.cv.wait_timeout(guard, Duration::from_millis(1));
    }
}

/// Error returned by [`ThreadPoolBuilder::build`].  The stand-in never fails
/// to build; the type exists for signature parity with the real crate.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`] (mirrors `rayon::ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (`num_threads = 0`, meaning auto).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; `0` means one per available core.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        let shared = Arc::new(PoolShared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("kspr-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .map_err(|_| ThreadPoolBuildError)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ThreadPool { shared, handles })
    }
}

/// A persistent pool of worker threads executing scoped tasks with work
/// stealing (mirrors `rayon::ThreadPool`).
///
/// Limitation of the stand-in: a pool tracks one active [`ThreadPool::scope`]
/// at a time; concurrent scopes on the *same* pool would share the pending
/// counter and over-synchronize (results stay correct, wakeups degrade).
/// Every use in this workspace owns its pool exclusively.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.shared.deques.len()
    }

    /// Runs `op` with a [`Scope`] on which tasks borrowing `'scope` data can
    /// be spawned; returns once `op` *and every spawned task* (transitively)
    /// have finished.  The calling thread helps execute tasks while waiting.
    /// A panic in `op` or any task is propagated after all tasks completed.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R + Send,
        R: Send,
    {
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            _marker: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // Drain: the scope must not close while tasks that borrow `'scope`
        // data are queued or running — this wait is what makes the lifetime
        // erasure in `Scope::spawn` sound.
        let me = current_worker(&self.shared);
        loop {
            if let Some(task) = self.shared.take_task(me) {
                self.shared.run_task(task);
                continue;
            }
            if self.shared.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            let guard = self.shared.lock.lock().unwrap_or_else(|e| e.into_inner());
            let _ = self.shared.cv.wait_timeout(guard, Duration::from_millis(1));
        }
        let task_panic = self
            .shared
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        match result {
            Err(payload) => panic::resume_unwind(payload),
            Ok(_) if task_panic.is_some() => {
                panic::resume_unwind(task_panic.expect("checked is_some"))
            }
            Ok(value) => value,
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A scope in which tasks borrowing `'scope` data can be spawned (mirrors
/// `rayon::Scope`).
pub struct Scope<'scope> {
    shared: Arc<PoolShared>,
    /// Invariant in `'scope`, like the real crate's scope.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns a task onto the pool.  The task may itself spawn onto the same
    /// scope; the enclosing [`ThreadPool::scope`] waits for all of them.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let task_scope = Scope {
            shared: Arc::clone(&self.shared),
            _marker: PhantomData,
        };
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || body(&task_scope));
        // SAFETY: erasing `'scope` to `'static` is sound because
        // `ThreadPool::scope` does not return before `pending` reaches zero,
        // i.e. before this task has run to completion — the borrowed data is
        // alive for as long as the task can observe it.  The transmute only
        // changes a lifetime parameter of an otherwise identical fat-pointer
        // type.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(task)
        };
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.push_task(task);
    }
}

/// Runs `op` with a scope on a transient pool with one worker per core (the
/// free-function form of [`ThreadPool::scope`], mirroring `rayon::scope`).
/// Prefer a persistent [`ThreadPool`] when scoping repeatedly — this spawns
/// (and joins) threads on every call.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let pool = ThreadPoolBuilder::new()
        .build()
        .expect("transient pool construction cannot fail");
    pool.scope(op)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u64> = Vec::new();
        let out: Vec<u64> = input.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let input: Vec<u64> = (0..16).collect();
        let _: Vec<u64> = input
            .par_iter()
            .map(|x| {
                if *x == 7 {
                    panic!("boom");
                }
                *x
            })
            .collect();
    }

    mod pool {
        use crate::{scope, Scope, ThreadPoolBuilder};
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        #[test]
        fn builder_honors_thread_count() {
            let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
            assert_eq!(pool.current_num_threads(), 3);
            let auto = ThreadPoolBuilder::new().build().unwrap();
            assert_eq!(
                auto.current_num_threads(),
                super::super::current_num_threads()
            );
        }

        #[test]
        fn scoped_tasks_borrow_stack_data() {
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            let data: Vec<usize> = (0..100).collect();
            let sum = AtomicUsize::new(0);
            pool.scope(|s| {
                for chunk in data.chunks(7) {
                    let sum = &sum;
                    s.spawn(move |_| {
                        sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(sum.into_inner(), (0..100).sum::<usize>());
        }

        #[test]
        fn tasks_spawn_recursively() {
            // A binary task tree four levels deep; every node increments the
            // counter.  Exercises worker-local pushes and stealing.
            fn node<'a>(s: &Scope<'a>, depth: usize, hits: &'a AtomicUsize) {
                hits.fetch_add(1, Ordering::SeqCst);
                if depth > 0 {
                    s.spawn(move |s| node(s, depth - 1, hits));
                    node(s, depth - 1, hits);
                }
            }
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            let hits = AtomicUsize::new(0);
            pool.scope(|s| node(s, 4, &hits));
            assert_eq!(hits.into_inner(), 31, "2^5 - 1 nodes");
        }

        #[test]
        fn scope_returns_closure_value_and_pool_is_reusable() {
            let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            for round in 0..5 {
                let log = Mutex::new(Vec::new());
                let got = pool.scope(|s| {
                    for i in 0..8 {
                        let log = &log;
                        s.spawn(move |_| log.lock().unwrap().push(i));
                    }
                    round
                });
                assert_eq!(got, round);
                let mut seen = log.into_inner().unwrap();
                seen.sort_unstable();
                assert_eq!(seen, (0..8).collect::<Vec<_>>());
            }
        }

        #[test]
        #[should_panic(expected = "task blew up")]
        fn task_panics_propagate_from_scope() {
            let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            pool.scope(|s| {
                for i in 0..4 {
                    s.spawn(move |_| {
                        if i == 2 {
                            panic!("task blew up");
                        }
                    });
                }
            });
        }

        #[test]
        fn panicking_scope_still_waits_for_tasks() {
            // The spawned tasks borrow `flags`; the scope must not unwind past
            // `flags`' frame before they finish.
            let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
            let flags: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for f in &flags {
                        s.spawn(move |_| {
                            f.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    panic!("op fails after spawning");
                })
            }));
            assert!(caught.is_err());
            assert!(flags.iter().all(|f| f.load(Ordering::SeqCst) == 1));
        }

        #[test]
        fn free_scope_function_works() {
            let total = AtomicUsize::new(0);
            scope(|s| {
                for i in 1..=10 {
                    let total = &total;
                    s.spawn(move |_| {
                        total.fetch_add(i, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(total.into_inner(), 55);
        }
    }
}
