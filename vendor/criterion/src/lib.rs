//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the kSPR benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery.  Each
//! benchmark prints its mean / min / max per-iteration time.  Swapping back
//! to the real crate is a one-line change in the workspace manifest.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A benchmark id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Throughput annotation for a benchmark (reported next to the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark manager handed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time hint (accepted for API compatibility; the
    /// stand-in always runs exactly `sample_size` samples).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {}/{}: no samples", self.name, id.id);
            return;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "  {}/{}: mean {:?}  min {:?}  max {:?}  ({} samples){}",
            self.name,
            id.id,
            mean,
            min,
            max,
            samples.len(),
            throughput
        );
    }
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Runs `f` repeatedly and records per-iteration wall-clock times.
    ///
    /// Fast closures are batched so that every sample spans at least ~1 ms,
    /// which keeps timer quantization noise in check.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up + batch size estimation.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` / `cargo test` pass harness flags (e.g. --bench);
            // the stand-in accepts and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 4, "warm-up plus three samples, got {runs}");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("alg", 5).id, "alg/5");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
