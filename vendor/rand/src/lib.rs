//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no access to crates.io, so
//! this crate implements — dependency-free — exactly the API subset the
//! workspace uses:
//!
//! * [`rngs::SmallRng`] (xoshiro256++, seeded through splitmix64, the same
//!   construction the real `SmallRng` uses on 64-bit targets),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over half-open and inclusive ranges of the common
//!   float and integer types, and [`Rng::gen_bool`].
//!
//! Generated streams are deterministic per seed but are **not** guaranteed to
//! be bit-identical to the real `rand` crate; all in-workspace consumers use
//! randomness statistically (synthetic datasets, Monte-Carlo sampling), so
//! only determinism matters.  Swapping back to the real crate is a one-line
//! change in the workspace manifest.

/// Low-level source of random 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (via splitmix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Maps 64 random bits to a double in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that a uniform value of type `T` can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Guard against rounding up to the (excluded) end point.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++ with splitmix64
    /// seeding (the construction used by the real `SmallRng` on 64-bit
    /// platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace does not need a cryptographic generator, so the
    /// "standard" RNG maps to the same engine as [`SmallRng`].
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let mut diverged = false;
        for _ in 0..100 {
            let x: f64 = a.gen_range(0.0..1.0);
            let y: f64 = b.gen_range(0.0..1.0);
            let z: f64 = c.gen_range(0.0..1.0);
            assert_eq!(x.to_bits(), y.to_bits());
            diverged |= x.to_bits() != z.to_bits();
        }
        assert!(diverged, "different seeds must yield different streams");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let w = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
            let inclusive = rng.gen_range(1i32..=5);
            assert!((1..=5).contains(&inclusive));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
