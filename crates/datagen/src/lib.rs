//! Synthetic benchmark data generators.
//!
//! The paper evaluates on the standard preference-query benchmarks of
//! Börzsönyi et al. — **Independent (IND)**, **Correlated (COR)** and
//! **Anti-correlated (ANTI)** — plus three real datasets (HOTEL, HOUSE, NBA).
//! The real datasets are not redistributable, so this crate provides
//! surrogates with the same dimensionality and correlation structure
//! (documented in `DESIGN.md`); every generator is deterministic given a seed.
//!
//! All attribute values are normalized to `(0, 1)` and follow the
//! "larger is better" convention used throughout the reproduction.

pub mod real;
pub mod synthetic;

pub use real::{hotel_like, house_like, nba_like, nba_seasons, NbaSeasons};
pub use synthetic::{generate, Distribution};

/// A plain data record: one value per attribute, each in `(0, 1)`.
pub type RawRecord = Vec<f64>;

/// Clamps a value into the open unit interval, keeping generators safe against
/// occasional excursions of the underlying noise distributions.
pub(crate) fn clamp_unit(x: f64) -> f64 {
    x.clamp(1e-6, 1.0 - 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_unit_bounds() {
        assert!(clamp_unit(-1.0) > 0.0);
        assert!(clamp_unit(2.0) < 1.0);
        assert_eq!(clamp_unit(0.5), 0.5);
    }
}
