//! Surrogates for the real datasets used in the paper's evaluation.
//!
//! The paper uses three real datasets (Table 1): HOTEL (418K × 4, from
//! hotels-base.com), HOUSE (315K × 6, from ipums.org) and NBA (22K × 8, from
//! basketball-reference.com).  Those datasets are not redistributable, so this
//! module generates synthetic surrogates that preserve the properties the
//! evaluation actually depends on — dimensionality, relative cardinality,
//! value skew, and the correlation structure between attributes — as
//! documented in `DESIGN.md`.

use crate::{clamp_unit, RawRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn approx_normal(rng: &mut SmallRng, mean: f64, std: f64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
    mean + (sum - 6.0) * std
}

/// HOTEL surrogate: 4 attributes (stars, price attractiveness, rooms,
/// facilities).  Star rating is discrete; price and facilities correlate
/// positively with the star rating, room count is largely independent.
pub fn hotel_like(n: usize, seed: u64) -> Vec<RawRecord> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4f54454c);
    (0..n)
        .map(|_| {
            // Discrete star ratings mapped to {0.1, 0.3, 0.5, 0.7, 0.9} so the
            // values stay strictly inside the open unit interval.
            let stars = (rng.gen_range(1..=5) as f64 - 0.5) / 5.0;
            let facilities = clamp_unit(0.6 * stars + approx_normal(&mut rng, 0.2, 0.12));
            // "Price attractiveness": cheaper is better, and high-star hotels
            // tend to be less attractive price-wise (mild anti-correlation).
            let price = clamp_unit(1.0 - 0.5 * stars + approx_normal(&mut rng, 0.0, 0.15));
            let rooms = clamp_unit(rng.gen_range(0.02..1.0));
            vec![stars, price, rooms, facilities]
        })
        .collect()
}

/// HOUSE surrogate: 6 attributes (gas, electricity, water, heating, insurance,
/// property tax), modelled as per-household spending attractiveness.  Spending
/// categories are mildly correlated through a per-household wealth factor and
/// individually skewed (many small spenders, few large ones).
pub fn house_like(n: usize, seed: u64) -> Vec<RawRecord> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x484f555345);
    (0..n)
        .map(|_| {
            let wealth = clamp_unit(approx_normal(&mut rng, 0.45, 0.2));
            (0..6)
                .map(|_| {
                    let skewed = rng.gen_range(0.0..1.0f64).powf(1.7);
                    clamp_unit(0.4 * wealth + 0.6 * skewed)
                })
                .collect()
        })
        .collect()
}

/// NBA surrogate: 8 attributes (games, rebounds, assists, steals, blocks,
/// turnover avoidance, foul avoidance, points).  Player quality drives most
/// attributes; the big-man / guard split makes rebounds+blocks anti-correlate
/// with assists+steals, which is what produces the interesting kSPR structure
/// the paper's case study highlights.
pub fn nba_like(n: usize, seed: u64) -> Vec<RawRecord> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x4e4241);
    (0..n).map(|_| nba_player(&mut rng, None)).collect()
}

fn nba_player(rng: &mut SmallRng, role_bias: Option<f64>) -> RawRecord {
    // quality in (0,1): overall player strength; role in (0,1): 0 = guard
    // (assists/steals), 1 = center (rebounds/blocks).
    let quality = clamp_unit(rng.gen_range(0.0..1.0f64).powf(1.5));
    let role = role_bias.unwrap_or_else(|| rng.gen_range(0.0..1.0));
    let noise = |rng: &mut SmallRng| approx_normal(rng, 0.0, 0.08);
    let games = clamp_unit(0.3 + 0.6 * quality + noise(rng));
    let rebounds = clamp_unit(quality * (0.35 + 0.6 * role) + noise(rng));
    let assists = clamp_unit(quality * (0.35 + 0.6 * (1.0 - role)) + noise(rng));
    let steals = clamp_unit(quality * (0.3 + 0.5 * (1.0 - role)) + noise(rng));
    let blocks = clamp_unit(quality * (0.25 + 0.6 * role) + noise(rng));
    let turnover_avoid = clamp_unit(0.5 + 0.3 * (1.0 - quality) + noise(rng));
    let foul_avoid = clamp_unit(0.5 + 0.25 * (1.0 - role) + noise(rng));
    let points = clamp_unit(quality * 0.9 + noise(rng));
    vec![
        games,
        rebounds,
        assists,
        steals,
        blocks,
        turnover_avoid,
        foul_avoid,
        points,
    ]
}

/// Data for the Section 7.2 case study: two "seasons" of three-attribute
/// player statistics (points, rebounds, assists) plus the index of the focal
/// player, whose profile shifts from attack-oriented in season one to
/// defense-oriented in season two — mirroring the Dwight Howard example.
#[derive(Debug, Clone)]
pub struct NbaSeasons {
    /// Season-one records: `(points, rebounds, assists)` per player.
    pub season1: Vec<RawRecord>,
    /// Season-two records for the same players.
    pub season2: Vec<RawRecord>,
    /// Index of the focal player in both seasons.
    pub focal: usize,
}

/// Generates the two-season case-study data with `n_players` players.
///
/// # Panics
/// Panics if `n_players < 10`.
pub fn nba_seasons(n_players: usize, seed: u64) -> NbaSeasons {
    assert!(
        n_players >= 10,
        "the case study needs a reasonable league size"
    );
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x484f574152);
    let noise = |rng: &mut SmallRng| approx_normal(rng, 0.0, 0.06);
    let mut season1 = Vec::with_capacity(n_players);
    let mut season2 = Vec::with_capacity(n_players);
    for _ in 0..n_players {
        let quality = clamp_unit(rng.gen_range(0.0..1.0f64).powf(1.4));
        let role = rng.gen_range(0.0..1.0);
        // Season-to-season stability with small drift.
        for season in [&mut season1, &mut season2] {
            let points = clamp_unit(quality * 0.9 + noise(&mut rng));
            let rebounds = clamp_unit(quality * (0.3 + 0.6 * role) + noise(&mut rng));
            let assists = clamp_unit(quality * (0.3 + 0.6 * (1.0 - role)) + noise(&mut rng));
            season.push(vec![points, rebounds, assists]);
        }
    }
    // The focal player: a strong center whose season-one value comes from
    // scoring and whose season-two value comes from rebounding.
    let focal = season1.len();
    season1.push(vec![0.93, 0.62, 0.25]);
    season2.push(vec![0.60, 0.95, 0.27]);
    NbaSeasons {
        season1,
        season2,
        focal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_unit(records: &[RawRecord], d: usize) {
        for r in records {
            assert_eq!(r.len(), d);
            assert!(r.iter().all(|&v| (0.0..1.0).contains(&v)));
        }
    }

    #[test]
    fn hotel_shape() {
        let data = hotel_like(500, 1);
        assert_eq!(data.len(), 500);
        in_unit(&data, 4);
        // Star ratings are discrete (five distinct levels).
        assert!(data
            .iter()
            .all(|r| ((r[0] * 10.0).round() - r[0] * 10.0).abs() < 1e-9));
    }

    #[test]
    fn house_shape() {
        let data = house_like(400, 2);
        assert_eq!(data.len(), 400);
        in_unit(&data, 6);
    }

    #[test]
    fn nba_shape_and_role_structure() {
        let data = nba_like(2_000, 3);
        in_unit(&data, 8);
        // Rebounds (idx 1) and assists (idx 2) should be less correlated than
        // rebounds and blocks (idx 4), reflecting the role split.
        let pear = |i: usize, j: usize| {
            let xi: Vec<f64> = data.iter().map(|r| r[i]).collect();
            let xj: Vec<f64> = data.iter().map(|r| r[j]).collect();
            let mi = xi.iter().sum::<f64>() / xi.len() as f64;
            let mj = xj.iter().sum::<f64>() / xj.len() as f64;
            let cov: f64 = xi.iter().zip(&xj).map(|(a, b)| (a - mi) * (b - mj)).sum();
            let vi: f64 = xi.iter().map(|a| (a - mi).powi(2)).sum();
            let vj: f64 = xj.iter().map(|b| (b - mj).powi(2)).sum();
            cov / (vi.sqrt() * vj.sqrt())
        };
        assert!(
            pear(1, 4) > pear(1, 2),
            "rebounds should track blocks more than assists"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(hotel_like(50, 9), hotel_like(50, 9));
        assert_eq!(house_like(50, 9), house_like(50, 9));
        assert_eq!(nba_like(50, 9), nba_like(50, 9));
    }

    #[test]
    fn case_study_focal_player_shifts_profile() {
        let seasons = nba_seasons(100, 5);
        assert_eq!(seasons.season1.len(), 101);
        assert_eq!(seasons.season2.len(), 101);
        let p1 = &seasons.season1[seasons.focal];
        let p2 = &seasons.season2[seasons.focal];
        assert!(p1[0] > p1[1], "season 1: points-driven");
        assert!(p2[1] > p2[0], "season 2: rebounds-driven");
    }

    #[test]
    #[should_panic(expected = "league size")]
    fn case_study_requires_enough_players() {
        nba_seasons(3, 1);
    }
}
