//! IND / COR / ANTI generators (Börzsönyi et al. style).

use crate::{clamp_unit, RawRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The three standard synthetic data distributions used in the paper's
/// evaluation (Section 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Attribute values drawn independently and uniformly.
    Independent,
    /// Attribute values positively correlated: records good in one dimension
    /// tend to be good in the others (small skylines, few kSPR regions).
    Correlated,
    /// Attribute values negatively correlated: records good in one dimension
    /// tend to be poor in the others (large skylines, many kSPR regions).
    AntiCorrelated,
}

impl Distribution {
    /// Short label matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Independent => "IND",
            Distribution::Correlated => "COR",
            Distribution::AntiCorrelated => "ANTI",
        }
    }

    /// All three distributions, in the order the paper plots them.
    pub fn all() -> [Distribution; 3] {
        [
            Distribution::AntiCorrelated,
            Distribution::Independent,
            Distribution::Correlated,
        ]
    }
}

/// Generates `n` records with `d` attributes from `dist`, deterministically
/// from `seed`.
///
/// # Panics
/// Panics if `d == 0`.
pub fn generate(dist: Distribution, n: usize, d: usize, seed: u64) -> Vec<RawRecord> {
    assert!(d > 0, "records need at least one attribute");
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match dist {
            Distribution::Independent => independent(&mut rng, d),
            Distribution::Correlated => correlated(&mut rng, d),
            Distribution::AntiCorrelated => anti_correlated(&mut rng, d),
        })
        .collect()
}

fn independent(rng: &mut SmallRng, d: usize) -> RawRecord {
    (0..d).map(|_| rng.gen_range(0.0..1.0)).collect()
}

/// Approximate normal sample via the sum of uniforms (Irwin–Hall), which is
/// plenty for data generation and avoids a dependency on `rand_distr`.
fn approx_normal(rng: &mut SmallRng, mean: f64, std: f64) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum();
    mean + (sum - 6.0) * std
}

fn correlated(rng: &mut SmallRng, d: usize) -> RawRecord {
    // Pick a point on the diagonal, then perturb each attribute slightly.
    let base = clamp_unit(approx_normal(rng, 0.5, 0.18));
    (0..d)
        .map(|_| clamp_unit(base + approx_normal(rng, 0.0, 0.05)))
        .collect()
}

fn anti_correlated(rng: &mut SmallRng, d: usize) -> RawRecord {
    // Pick a hyperplane Σ v_i ≈ const, then spread mass across the attributes
    // so that good values in one dimension come with poor values in others.
    let total = clamp_unit(approx_normal(rng, 0.5, 0.08)) * d as f64;
    // Random split of `total` across d attributes via a Dirichlet-like draw.
    let mut weights: Vec<f64> = (0..d).map(|_| -rng.gen_range(1e-9..1.0f64).ln()).collect();
    let wsum: f64 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= wsum);
    weights.into_iter().map(|w| clamp_unit(w * total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(values: &[f64]) -> f64 {
        values.iter().sum::<f64>() / values.len() as f64
    }

    fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let mx = mean(xs);
        let my = mean(ys);
        let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt())
    }

    fn column(records: &[RawRecord], i: usize) -> Vec<f64> {
        records.iter().map(|r| r[i]).collect()
    }

    #[test]
    fn generators_are_deterministic() {
        for dist in Distribution::all() {
            let a = generate(dist, 100, 4, 7);
            let b = generate(dist, 100, 4, 7);
            assert_eq!(a, b, "{dist:?} must be deterministic");
            let c = generate(dist, 100, 4, 8);
            assert_ne!(a, c, "{dist:?} must vary with the seed");
        }
    }

    #[test]
    fn records_have_requested_shape_and_range() {
        for dist in Distribution::all() {
            let data = generate(dist, 500, 5, 1);
            assert_eq!(data.len(), 500);
            for r in &data {
                assert_eq!(r.len(), 5);
                assert!(r.iter().all(|&v| (0.0..1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn correlated_data_is_positively_correlated() {
        let data = generate(Distribution::Correlated, 3_000, 2, 3);
        let rho = pearson(&column(&data, 0), &column(&data, 1));
        assert!(rho > 0.5, "expected strong positive correlation, got {rho}");
    }

    #[test]
    fn anti_correlated_data_is_negatively_correlated() {
        let data = generate(Distribution::AntiCorrelated, 3_000, 2, 3);
        let rho = pearson(&column(&data, 0), &column(&data, 1));
        assert!(rho < -0.3, "expected negative correlation, got {rho}");
    }

    #[test]
    fn independent_data_is_roughly_uncorrelated() {
        let data = generate(Distribution::Independent, 3_000, 2, 3);
        let rho = pearson(&column(&data, 0), &column(&data, 1));
        assert!(rho.abs() < 0.1, "expected near-zero correlation, got {rho}");
    }

    #[test]
    fn distribution_labels() {
        assert_eq!(Distribution::Independent.label(), "IND");
        assert_eq!(Distribution::Correlated.label(), "COR");
        assert_eq!(Distribution::AntiCorrelated.label(), "ANTI");
    }
}
