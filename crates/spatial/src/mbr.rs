//! Minimum bounding rectangles.
//!
//! The aggregate R-tree stores an MBR per entry; the look-ahead techniques of
//! LP-CTA use the MBR corners to bound the score of every record underneath
//! an entry (Section 6.2 of the paper): for any record `r` in the subtree and
//! any weight vector, `S(G^L) ≤ S(r) ≤ S(G^U)` where `G^L` / `G^U` are the
//! min- and max-corners of the entry's MBR.

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    /// Per-dimension minimum ("min-corner", `G^L` in the paper).
    pub min: Vec<f64>,
    /// Per-dimension maximum ("max-corner", `G^U` in the paper).
    pub max: Vec<f64>,
}

impl Mbr {
    /// The MBR of a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Self {
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// The MBR of a non-empty collection of points.
    ///
    /// # Panics
    /// Panics if `points` is empty.
    pub fn from_points<'a, I>(mut points: I) -> Self
    where
        I: Iterator<Item = &'a [f64]>,
    {
        let first = points.next().expect("MBR of an empty point set");
        let mut mbr = Mbr::from_point(first);
        for p in points {
            mbr.expand_point(p);
        }
        mbr
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Grows the MBR to contain `p`.
    #[allow(clippy::needless_range_loop)] // three parallel slices are indexed together
    pub fn expand_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dim());
        for i in 0..self.dim() {
            self.min[i] = self.min[i].min(p[i]);
            self.max[i] = self.max[i].max(p[i]);
        }
    }

    /// Grows the MBR to contain another MBR.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        self.expand_point(&other.min);
        self.expand_point(&other.max);
    }

    /// The min-corner `G^L`.
    pub fn lower_corner(&self) -> &[f64] {
        &self.min
    }

    /// The max-corner `G^U`.
    pub fn upper_corner(&self) -> &[f64] {
        &self.max
    }

    /// True iff the point lies inside the MBR (closed).
    pub fn contains(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        p.iter()
            .enumerate()
            .all(|(i, &v)| v >= self.min[i] && v <= self.max[i])
    }

    /// Lower bound on the score of any point in the MBR under weights `w ≥ 0`.
    pub fn min_score(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.dim());
        self.min.iter().zip(w).map(|(v, wi)| v * wi).sum()
    }

    /// Upper bound on the score of any point in the MBR under weights `w ≥ 0`.
    pub fn max_score(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.dim());
        self.max.iter().zip(w).map(|(v, wi)| v * wi).sum()
    }

    /// Sum of the max-corner coordinates; used as the BBS priority key.
    pub fn upper_sum(&self) -> f64 {
        self.max.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_and_expansion() {
        let pts = [vec![0.1, 0.9], vec![0.5, 0.2], vec![0.3, 0.4]];
        let mbr = Mbr::from_points(pts.iter().map(|p| p.as_slice()));
        assert_eq!(mbr.min, vec![0.1, 0.2]);
        assert_eq!(mbr.max, vec![0.5, 0.9]);
        assert!(mbr.contains(&[0.3, 0.5]));
        assert!(!mbr.contains(&[0.6, 0.5]));
    }

    #[test]
    fn expand_with_other_mbr() {
        let mut a = Mbr::from_point(&[0.2, 0.2]);
        let b = Mbr::from_point(&[0.8, 0.1]);
        a.expand_mbr(&b);
        assert_eq!(a.min, vec![0.2, 0.1]);
        assert_eq!(a.max, vec![0.8, 0.2]);
    }

    #[test]
    fn score_bounds_bracket_contained_points() {
        let pts = [vec![0.1, 0.9], vec![0.5, 0.2]];
        let mbr = Mbr::from_points(pts.iter().map(|p| p.as_slice()));
        let w = [0.7, 0.3];
        for p in &pts {
            let s: f64 = p.iter().zip(&w).map(|(v, wi)| v * wi).sum();
            assert!(s >= mbr.min_score(&w) - 1e-12);
            assert!(s <= mbr.max_score(&w) + 1e-12);
        }
    }

    #[test]
    fn upper_sum() {
        let mbr = Mbr {
            min: vec![0.0, 0.0],
            max: vec![0.4, 0.6],
        };
        assert!((mbr.upper_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn from_points_rejects_empty_input() {
        let empty: Vec<Vec<f64>> = vec![];
        Mbr::from_points(empty.iter().map(|p| p.as_slice()));
    }
}
