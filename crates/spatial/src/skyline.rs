//! Skyline and k-skyband computation.
//!
//! P-CTA drives its processing order with skyline batches (Section 5 of the
//! paper): the first batch is the skyline of `D`, subsequent batches are the
//! skylines of `D` minus the non-pivot records of the promising cells.  The
//! k-skyband (records dominated by fewer than `k` others) is used by the
//! Appendix-B baseline.
//!
//! The skyline is computed with a branch-and-bound traversal of the aggregate
//! R-tree (BBS, Papadias et al.): entries are popped in decreasing order of
//! the coordinate sum of their MBR max-corner, which guarantees that any
//! potential dominator of a record is examined before the record itself.

use crate::dominance::dominates;
use crate::record::{Record, RecordId};
use crate::rtree::{AggregateRTree, NodeEntries};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Heap entry for the BBS traversal, ordered by key (max-corner sum).
struct HeapEntry {
    key: f64,
    item: HeapItem,
}

enum HeapItem {
    Node(usize),
    Record(RecordId),
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.partial_cmp(&other.key).unwrap_or(Ordering::Equal)
    }
}

/// Computes the skyline of the indexed dataset with BBS.
///
/// The result contains the ids of all records not dominated by any other
/// record, in the order they were confirmed (roughly decreasing coordinate
/// sum).
pub fn bbs_skyline(tree: &AggregateRTree) -> Vec<RecordId> {
    skyline_excluding(tree, &HashSet::new())
}

/// Computes the skyline of the dataset **ignoring** the records in `exclude`:
/// excluded records neither appear in the result nor prune other records.
///
/// This is the "recompute the skyline of `D` by ignoring the records in the
/// union of non-pivots" step of P-CTA (Section 5).
pub fn skyline_excluding(tree: &AggregateRTree, exclude: &HashSet<RecordId>) -> Vec<RecordId> {
    if tree.is_empty() {
        return Vec::new();
    }
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        key: tree.node_no_io(tree.root()).mbr.upper_sum(),
        item: HeapItem::Node(tree.root()),
    });
    let mut skyline: Vec<RecordId> = Vec::new();

    let dominated_by_skyline = |skyline: &[RecordId], values: &[f64]| {
        skyline
            .iter()
            .any(|&s| dominates(&tree.record(s).values, values))
    };

    while let Some(entry) = heap.pop() {
        match entry.item {
            HeapItem::Node(idx) => {
                let node = tree.node(idx);
                if dominated_by_skyline(&skyline, node.mbr.upper_corner()) {
                    continue;
                }
                match &node.entries {
                    NodeEntries::Internal(children) => {
                        for &c in children {
                            let child = tree.node_no_io(c);
                            if !dominated_by_skyline(&skyline, child.mbr.upper_corner()) {
                                heap.push(HeapEntry {
                                    key: child.mbr.upper_sum(),
                                    item: HeapItem::Node(c),
                                });
                            }
                        }
                    }
                    NodeEntries::Leaf(ids) => {
                        for &id in ids {
                            if exclude.contains(&id) {
                                continue;
                            }
                            let values = &tree.record(id).values;
                            if !dominated_by_skyline(&skyline, values) {
                                heap.push(HeapEntry {
                                    key: values.iter().sum(),
                                    item: HeapItem::Record(id),
                                });
                            }
                        }
                    }
                }
            }
            HeapItem::Record(id) => {
                let values = &tree.record(id).values;
                if !dominated_by_skyline(&skyline, values) {
                    skyline.push(id);
                }
            }
        }
    }
    skyline
}

/// Straightforward O(n²) skyline over a record slice, used as a test oracle
/// and for small inputs.
pub fn naive_skyline(records: &[Record]) -> Vec<RecordId> {
    records
        .iter()
        .filter(|r| {
            !records
                .iter()
                .any(|other| other.id != r.id && dominates(&other.values, &r.values))
        })
        .map(|r| r.id)
        .collect()
}

/// Computes the k-skyband: the ids of all records dominated by fewer than `k`
/// other records.
///
/// Records are scanned in decreasing coordinate-sum order; a dominator always
/// has a coordinate sum at least as large as the record it dominates, so only
/// earlier records need to be checked, and the scan for a record stops as soon
/// as `k` dominators are found.
pub fn k_skyband(records: &[Record], k: usize) -> Vec<RecordId> {
    k_skyband_live(records, k, |_| true)
}

/// Computes the k-skyband of the **live** subset of a record-slot slice.
///
/// `alive` decides which slots participate: dead slots neither appear in the
/// result nor count as dominators, so the result is exactly
/// `k_skyband(live records, k)`.  This is the entry point for datasets whose
/// index has seen deletions (tombstoned record slots).
pub fn k_skyband_live(
    records: &[Record],
    k: usize,
    alive: impl Fn(RecordId) -> bool,
) -> Vec<RecordId> {
    // Dead slots neither compete nor dominate, so they are excluded from the
    // scan order outright (which also makes every survivor a candidate).
    k_skyband_impl(records, k, alive, |_| true)
}

/// Computes the k-skyband restricted to the records accepted by `candidate`.
///
/// Dominator counts are still taken against **all** records, so the result is
/// exactly `k_skyband(records, k)` intersected with the candidate set (in the
/// same order); only the per-candidate dominator scans are saved.  The `kspr`
/// query engine uses this with a precomputed dataset-level skyband as the
/// candidate set: the per-query band is provably contained in it, so the
/// restriction never changes the result.
pub fn k_skyband_restricted(
    records: &[Record],
    k: usize,
    candidate: impl Fn(RecordId) -> bool,
) -> Vec<RecordId> {
    k_skyband_impl(records, k, |_| true, candidate)
}

/// The shared band scan behind every k-skyband variant.
///
/// `dominator` decides which record slots participate at all (excluded slots
/// neither appear in the result nor count as dominators); `candidate`
/// additionally restricts which participating records are *tested and
/// reported* (their dominator scans are skipped, but they still dominate
/// others).  Participants are scanned in decreasing coordinate-sum order, so
/// only earlier participants can dominate and each scan stops at `k`.
fn k_skyband_impl(
    records: &[Record],
    k: usize,
    dominator: impl Fn(RecordId) -> bool,
    candidate: impl Fn(RecordId) -> bool,
) -> Vec<RecordId> {
    let mut order: Vec<usize> = (0..records.len())
        .filter(|&i| dominator(records[i].id))
        .collect();
    let sums: Vec<f64> = records.iter().map(|r| r.values.iter().sum()).collect();
    order.sort_by(|&a, &b| sums[b].partial_cmp(&sums[a]).unwrap_or(Ordering::Equal));
    let mut result = Vec::new();
    for (pos, &idx) in order.iter().enumerate() {
        if !candidate(records[idx].id) {
            continue;
        }
        let mut dominators = 0;
        for &other in &order[..pos] {
            if dominates(&records[other].values, &records[idx].values) {
                dominators += 1;
                if dominators >= k {
                    break;
                }
            }
        }
        if dominators < k {
            result.push(records[idx].id);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|id| Record::new(id, (0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect()
    }

    fn sorted(mut v: Vec<RecordId>) -> Vec<RecordId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn bbs_matches_naive_skyline() {
        for seed in 0..5 {
            for d in [2, 3, 4] {
                let records = random_records(300, d, seed);
                let tree = AggregateRTree::bulk_load(records.clone(), 8);
                let bbs = sorted(bbs_skyline(&tree));
                let naive = sorted(naive_skyline(&records));
                assert_eq!(bbs, naive, "seed {seed}, d {d}");
            }
        }
    }

    #[test]
    fn skyline_excluding_ignores_excluded_records() {
        // Record 0 dominates everything; once excluded, the rest surfaces.
        let records = vec![
            Record::new(0, vec![0.9, 0.9]),
            Record::new(1, vec![0.8, 0.2]),
            Record::new(2, vec![0.2, 0.8]),
            Record::new(3, vec![0.1, 0.1]),
        ];
        let tree = AggregateRTree::bulk_load(records, 4);
        assert_eq!(sorted(bbs_skyline(&tree)), vec![0]);
        let exclude: HashSet<RecordId> = [0].into_iter().collect();
        assert_eq!(sorted(skyline_excluding(&tree, &exclude)), vec![1, 2]);
    }

    #[test]
    fn skyline_excluding_matches_naive_on_filtered_input() {
        for seed in 10..13 {
            let records = random_records(200, 3, seed);
            let tree = AggregateRTree::bulk_load(records.clone(), 8);
            let exclude: HashSet<RecordId> = (0..50).collect();
            let filtered: Vec<Record> = records
                .iter()
                .filter(|r| !exclude.contains(&r.id))
                .cloned()
                .collect();
            assert_eq!(
                sorted(skyline_excluding(&tree, &exclude)),
                sorted(naive_skyline(&filtered)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn k_skyband_contains_skyline_and_respects_k() {
        let records = random_records(400, 3, 42);
        let skyline = sorted(naive_skyline(&records));
        let band1 = sorted(k_skyband(&records, 1));
        assert_eq!(skyline, band1, "1-skyband is exactly the skyline");
        let band5 = k_skyband(&records, 5);
        assert!(band5.len() >= band1.len());
        // Oracle check: every record in the 5-skyband has < 5 dominators.
        for &id in &band5 {
            let dominators = records
                .iter()
                .filter(|r| dominates(&r.values, &records[id].values))
                .count();
            assert!(dominators < 5);
        }
        // And every record not in the band has >= 5 dominators.
        let band_set: HashSet<RecordId> = band5.into_iter().collect();
        for r in &records {
            if !band_set.contains(&r.id) {
                let dominators = records
                    .iter()
                    .filter(|o| dominates(&o.values, &r.values))
                    .count();
                assert!(dominators >= 5);
            }
        }
    }

    #[test]
    fn restricted_skyband_equals_band_intersection() {
        let records = random_records(300, 3, 9);
        let k = 4;
        let full = k_skyband(&records, k);
        // Restricting to a superset of the band must not change anything.
        let superset: HashSet<RecordId> = k_skyband(&records, k + 3).into_iter().collect();
        assert_eq!(
            k_skyband_restricted(&records, k, |id| superset.contains(&id)),
            full
        );
        // Restricting to an arbitrary candidate set yields the intersection,
        // in band order.
        let candidates: HashSet<RecordId> = (0..150).collect();
        let expected: Vec<RecordId> = full
            .iter()
            .copied()
            .filter(|id| candidates.contains(id))
            .collect();
        assert_eq!(
            k_skyband_restricted(&records, k, |id| candidates.contains(&id)),
            expected
        );
    }

    #[test]
    fn live_skyband_equals_band_of_live_subset() {
        let records = random_records(250, 3, 21);
        let k = 3;
        // Kill every fourth record; the live band must equal the band of the
        // compacted live subset (dead records stop counting as dominators).
        let dead: HashSet<RecordId> = (0..250).filter(|id| id % 4 == 0).collect();
        let live: Vec<Record> = records
            .iter()
            .filter(|r| !dead.contains(&r.id))
            .cloned()
            .collect();
        let expected = sorted(k_skyband_live(&live, k, |_| true));
        let got = sorted(k_skyband_live(&records, k, |id| !dead.contains(&id)));
        assert_eq!(got, expected);
        // With everything alive it is the plain k-skyband.
        assert_eq!(
            sorted(k_skyband_live(&records, k, |_| true)),
            sorted(k_skyband(&records, k))
        );
    }

    #[test]
    fn skyline_of_identical_records_keeps_all() {
        // Identical records do not dominate each other, so all are skyline.
        let records = vec![
            Record::new(0, vec![0.5, 0.5]),
            Record::new(1, vec![0.5, 0.5]),
            Record::new(2, vec![0.5, 0.5]),
        ];
        let tree = AggregateRTree::bulk_load(records.clone(), 4);
        assert_eq!(sorted(bbs_skyline(&tree)), vec![0, 1, 2]);
        assert_eq!(sorted(naive_skyline(&records)), vec![0, 1, 2]);
    }
}
