//! Data records.
//!
//! Records follow the paper's convention: every attribute is "larger is
//! better" and the score of a record under a weight vector `w` is the dot
//! product `S(r) = r · w` (Equation 1).

/// Identifier of a record within a dataset (its index in the original input).
pub type RecordId = usize;

/// A data record: an identifier plus one value per attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Stable identifier (index in the input dataset).
    pub id: RecordId,
    /// Attribute values, "larger is better".
    pub values: Vec<f64>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: RecordId, values: Vec<f64>) -> Self {
        Self { id, values }
    }

    /// Number of attributes.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Linear score `r · w` (Equation 1 of the paper).
    ///
    /// # Panics
    /// Panics (in debug builds) if `w` has a different arity than the record.
    pub fn score(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.values.len());
        self.values.iter().zip(w).map(|(v, wi)| v * wi).sum()
    }

    /// Wraps raw attribute vectors into records, assigning sequential ids.
    pub fn from_raw(raw: Vec<Vec<f64>>) -> Vec<Record> {
        raw.into_iter()
            .enumerate()
            .map(|(id, values)| Record::new(id, values))
            .collect()
    }

    /// Appends this record's attribute row to `out` in the canonical byte
    /// layout (see [`encode_row`]); the id is *not* part of the encoding —
    /// callers that persist ids (WAL records, wire frames) carry them in
    /// their own headers.
    pub fn encode_values(&self, out: &mut Vec<u8>) {
        encode_row(&self.values, out);
    }
}

/// Appends an attribute row to `out` in the canonical byte layout shared by
/// the wire protocol and the durability layer: a `u32` little-endian length
/// followed by one IEEE-754 little-endian `f64` per attribute.  The layout
/// is exact — `decode_row` returns bit-identical values, so persisted and
/// transmitted records reproduce the same dominance and score comparisons.
pub fn encode_row(values: &[f64], out: &mut Vec<u8>) {
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a row encoded by [`encode_row`] starting at `*at`, advancing
/// `*at` past it.  Returns `None` if the buffer is truncated.
pub fn decode_row(bytes: &[u8], at: &mut usize) -> Option<Vec<f64>> {
    let len_end = at.checked_add(4)?;
    let len = u32::from_le_bytes(bytes.get(*at..len_end)?.try_into().ok()?) as usize;
    let end = len_end.checked_add(len.checked_mul(8)?)?;
    let body = bytes.get(len_end..end)?;
    let mut values = Vec::with_capacity(len);
    for chunk in body.chunks_exact(8) {
        values.push(f64::from_le_bytes(chunk.try_into().ok()?));
    }
    *at = end;
    Some(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_dot_product() {
        let r = Record::new(0, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.score(&[0.5, 0.25, 0.25]), 1.75);
        assert_eq!(r.dim(), 3);
    }

    #[test]
    fn from_raw_assigns_sequential_ids() {
        let records = Record::from_raw(vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(records.len(), 3);
        assert!(records.iter().enumerate().all(|(i, r)| r.id == i));
    }

    #[test]
    fn row_codec_round_trips_bit_exactly() {
        let rows: [&[f64]; 4] = [
            &[],
            &[0.25],
            &[1.0, -0.0, f64::MIN_POSITIVE, 1e300],
            &[0.1, 0.2, 0.30000000000000004],
        ];
        let mut buf = Vec::new();
        for row in rows {
            encode_row(row, &mut buf);
        }
        let mut at = 0;
        for row in rows {
            let decoded = decode_row(&buf, &mut at).expect("decodes");
            assert_eq!(decoded.len(), row.len());
            for (a, b) in decoded.iter().zip(row) {
                assert_eq!(a.to_bits(), b.to_bits(), "bit-exact round trip");
            }
        }
        assert_eq!(at, buf.len(), "every byte consumed");
    }

    #[test]
    fn row_codec_rejects_truncation() {
        let mut buf = Vec::new();
        encode_row(&[1.5, 2.5], &mut buf);
        for cut in 0..buf.len() {
            let mut at = 0;
            assert!(
                decode_row(&buf[..cut], &mut at).is_none(),
                "truncated at {cut} must not decode"
            );
        }
        // A record encode helper is byte-identical to the free function.
        let mut via_record = Vec::new();
        Record::new(7, vec![1.5, 2.5]).encode_values(&mut via_record);
        assert_eq!(via_record, buf);
    }
}
