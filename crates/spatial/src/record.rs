//! Data records.
//!
//! Records follow the paper's convention: every attribute is "larger is
//! better" and the score of a record under a weight vector `w` is the dot
//! product `S(r) = r · w` (Equation 1).

/// Identifier of a record within a dataset (its index in the original input).
pub type RecordId = usize;

/// A data record: an identifier plus one value per attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Stable identifier (index in the input dataset).
    pub id: RecordId,
    /// Attribute values, "larger is better".
    pub values: Vec<f64>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: RecordId, values: Vec<f64>) -> Self {
        Self { id, values }
    }

    /// Number of attributes.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Linear score `r · w` (Equation 1 of the paper).
    ///
    /// # Panics
    /// Panics (in debug builds) if `w` has a different arity than the record.
    pub fn score(&self, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.values.len());
        self.values.iter().zip(w).map(|(v, wi)| v * wi).sum()
    }

    /// Wraps raw attribute vectors into records, assigning sequential ids.
    pub fn from_raw(raw: Vec<Vec<f64>>) -> Vec<Record> {
        raw.into_iter()
            .enumerate()
            .map(|(id, values)| Record::new(id, values))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_is_dot_product() {
        let r = Record::new(0, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.score(&[0.5, 0.25, 0.25]), 1.75);
        assert_eq!(r.dim(), 3);
    }

    #[test]
    fn from_raw_assigns_sequential_ids() {
        let records = Record::from_raw(vec![vec![1.0], vec![2.0], vec![3.0]]);
        assert_eq!(records.len(), 3);
        assert!(records.iter().enumerate().all(|(i, r)| r.id == i));
    }
}
