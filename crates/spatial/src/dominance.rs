//! Dominance tests and the dominance graph of P-CTA.
//!
//! A record `a` dominates a record `b` (written `a ≺ b` in the skyline
//! literature, but remember our attributes are "larger is better") iff `a` is
//! no worse than `b` in every attribute and strictly better in at least one.
//! P-CTA maintains a *dominance graph* over the records it has already
//! processed (Section 5) and uses it to shortcut hyperplane insertions: if a
//! processed dominator of the incoming record already contributes a negative
//! halfspace to a node, the incoming record's negative halfspace covers that
//! node as well (the reasoning of Lemma 5).

use crate::record::RecordId;
use std::collections::HashMap;

/// True iff `a` dominates `b`: `a_i ≥ b_i` for every attribute and `a_i > b_i`
/// for at least one.
///
/// # Panics
/// Panics (in debug builds) if the two slices have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Dominance relationships among the records processed so far.
///
/// Only the "who dominates me" direction is stored, because that is the only
/// query P-CTA issues (Algorithm 2, line 9).
#[derive(Debug, Default, Clone)]
pub struct DominanceGraph {
    /// Attribute values of each member, keyed by record id.
    members: Vec<(RecordId, Vec<f64>)>,
    /// For each member, the ids of the previously-inserted members that
    /// dominate it.
    dominators: HashMap<RecordId, Vec<RecordId>>,
}

impl DominanceGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records in the graph.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True iff the graph has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True iff `id` has been inserted.
    pub fn contains(&self, id: RecordId) -> bool {
        self.dominators.contains_key(&id)
    }

    /// Inserts a record, computing its dominators among the current members
    /// and recording the record for future insertions.
    ///
    /// Under P-CTA's Invariant 1 every dominator of a record is processed
    /// before the record itself, so computing dominators only against earlier
    /// members is sufficient.
    pub fn insert(&mut self, id: RecordId, values: &[f64]) {
        let doms: Vec<RecordId> = self
            .members
            .iter()
            .filter(|(_, other)| dominates(other, values))
            .map(|(other_id, _)| *other_id)
            .collect();
        self.dominators.insert(id, doms);
        self.members.push((id, values.to_vec()));
    }

    /// The previously-inserted records that dominate `id` (empty if unknown).
    pub fn dominators_of(&self, id: RecordId) -> &[RecordId] {
        self.dominators
            .get(&id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    // -----------------------------------------------------------------------
    // Delta maintenance (incremental skyband upkeep)
    // -----------------------------------------------------------------------

    /// Inserts a member with an externally computed dominator list, without
    /// relying on P-CTA's Invariant-1 insertion order.
    ///
    /// Used by incremental k-skyband maintenance, where a record can join the
    /// graph after records it dominates are already present.
    pub fn insert_with_dominators(&mut self, id: RecordId, values: &[f64], doms: Vec<RecordId>) {
        debug_assert!(!self.contains(id), "record {id} is already a member");
        self.dominators.insert(id, doms);
        self.members.push((id, values.to_vec()));
    }

    /// Removes a member entirely: its own entry, its dominator list, and its
    /// occurrences in every other member's dominator list.
    pub fn remove(&mut self, id: RecordId) {
        self.members.retain(|(m, _)| *m != id);
        self.dominators.remove(&id);
        for doms in self.dominators.values_mut() {
            doms.retain(|&d| d != id);
        }
    }

    /// Appends `dom` to the dominator list of member `id`.
    pub fn add_dominator(&mut self, id: RecordId, dom: RecordId) {
        self.dominators.entry(id).or_default().push(dom);
    }

    /// Number of recorded dominators of member `id` (0 if unknown).
    pub fn dominator_count(&self, id: RecordId) -> usize {
        self.dominators.get(&id).map_or(0, Vec::len)
    }

    /// Attribute values of member `id`, if present.
    pub fn member_values(&self, id: RecordId) -> Option<&[f64]> {
        self.members
            .iter()
            .find(|(m, _)| *m == id)
            .map(|(_, v)| v.as_slice())
    }

    /// Ids of all current members, in insertion order.
    pub fn member_ids(&self) -> impl Iterator<Item = RecordId> + '_ {
        self.members.iter().map(|(id, _)| *id)
    }

    /// Members that dominate the given values.
    pub fn dominating_members(&self, values: &[f64]) -> Vec<RecordId> {
        self.members
            .iter()
            .filter(|(_, v)| dominates(v, values))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Members that are dominated by the given values.
    pub fn dominated_members(&self, values: &[f64]) -> Vec<RecordId> {
        self.members
            .iter()
            .filter(|(_, v)| dominates(values, v))
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(dominates(&[2.0, 3.0], &[1.0, 2.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal records do not dominate"
        );
        assert!(!dominates(&[2.0, 1.0], &[1.0, 2.0]), "incomparable records");
        assert!(!dominates(&[1.0, 2.0], &[2.0, 2.0]));
    }

    #[test]
    fn graph_tracks_dominators_of_later_insertions() {
        let mut g = DominanceGraph::new();
        g.insert(0, &[5.0, 5.0]);
        g.insert(1, &[4.0, 6.0]);
        g.insert(2, &[3.0, 4.0]); // dominated by both 0 and 1
        assert_eq!(g.dominators_of(0), &[] as &[RecordId]);
        assert_eq!(g.dominators_of(1), &[] as &[RecordId]);
        let mut d2 = g.dominators_of(2).to_vec();
        d2.sort_unstable();
        assert_eq!(d2, vec![0, 1]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(2));
        assert!(!g.contains(7));
        assert_eq!(g.dominators_of(7), &[] as &[RecordId]);
    }

    #[test]
    fn empty_graph() {
        let g = DominanceGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn delta_maintenance_round_trip() {
        let mut g = DominanceGraph::new();
        g.insert(0, &[5.0, 5.0]);
        g.insert(1, &[3.0, 4.0]); // dominated by 0
        assert_eq!(g.dominator_count(1), 1);

        // Out-of-order member insertion: 2 dominates everything.
        g.insert_with_dominators(2, &[6.0, 6.0], vec![]);
        g.add_dominator(0, 2);
        g.add_dominator(1, 2);
        assert_eq!(g.dominator_count(0), 1);
        assert_eq!(g.dominator_count(1), 2);
        assert_eq!(g.member_values(2), Some(&[6.0, 6.0][..]));
        assert_eq!(g.member_ids().collect::<Vec<_>>(), vec![0, 1, 2]);

        let mut dominated = g.dominated_members(&[7.0, 7.0]);
        dominated.sort_unstable();
        assert_eq!(dominated, vec![0, 1, 2]);
        let dominating = g.dominating_members(&[4.0, 4.5]);
        assert_eq!(dominating.len(), 2, "0 and 2 dominate (4, 4.5)");

        // Removal strips the member from every dominator list.
        g.remove(2);
        assert!(!g.contains(2));
        assert_eq!(g.member_values(2), None);
        assert_eq!(g.dominator_count(0), 0);
        assert_eq!(g.dominator_count(1), 1);
        assert_eq!(g.len(), 2);
    }
}
