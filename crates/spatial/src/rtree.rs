//! Aggregate R-tree bulk-loaded with Sort-Tile-Recursive (STR), with
//! incremental insert / delete maintenance.
//!
//! Each node stores its MBR and the number of records in its subtree (the
//! "aggregate" part, §6.2 of the paper).  Records live in leaves; internal
//! nodes reference child nodes by index in a flat arena.  Every node access
//! through [`AggregateRTree::node`] is counted as a simulated page read for
//! the disk-based experiments of Appendix A.
//!
//! # Updates
//!
//! Beyond the one-shot STR bulk load, the tree supports single-record
//! [`AggregateRTree::insert`] (Guttman-style choose-subtree descent with a
//! quadratic split on overflow) and [`AggregateRTree::delete`] (leaf removal
//! with exact MBR tightening and empty-branch condensation on the root
//! path).  Record slots are never reused: a deleted record keeps its id but
//! is tombstoned, so ids handed out to callers stay stable across any update
//! sequence.  [`AggregateRTree::records`] therefore returns the *raw* slot
//! slice — iterate [`AggregateRTree::live_records`] or check
//! [`AggregateRTree::is_live`] when the tree may have seen deletions.

use crate::io::IoStats;
use crate::mbr::Mbr;
use crate::record::{Record, RecordId};

/// Children of a node: either child node indices or record ids.
#[derive(Debug, Clone)]
pub enum NodeEntries {
    /// Indices of child nodes in the tree arena.
    Internal(Vec<usize>),
    /// Ids of the records stored in this leaf.
    Leaf(Vec<RecordId>),
}

/// One R-tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Minimum bounding rectangle of everything below this node.
    pub mbr: Mbr,
    /// Number of records in the subtree (`G.num` in the paper).
    pub count: usize,
    /// Children.
    pub entries: NodeEntries,
}

impl Node {
    /// True iff this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, NodeEntries::Leaf(_))
    }
}

/// An aggregate R-tree over a dynamic set of records.
#[derive(Debug, Clone)]
pub struct AggregateRTree {
    dim: usize,
    fanout: usize,
    /// Record slots; `records[id].id == id` always.  Deleted slots are kept
    /// (ids stay stable) and flagged dead in `live`.
    records: Vec<Record>,
    /// Liveness flag per record slot.
    live: Vec<bool>,
    /// Number of live records.
    live_count: usize,
    nodes: Vec<Node>,
    /// Node slots released by delete-condensation, available for reuse.
    free_nodes: Vec<usize>,
    root: usize,
    io: IoStats,
}

impl AggregateRTree {
    /// Default node fanout used by the experiments.
    pub const DEFAULT_FANOUT: usize = 32;

    /// Bulk-loads a tree over `records` with the given `fanout` using STR.
    ///
    /// # Panics
    /// Panics if `records` is empty, if `fanout < 2`, or if the records do
    /// not all share the same arity.
    pub fn bulk_load(records: Vec<Record>, fanout: usize) -> Self {
        assert!(!records.is_empty(), "cannot index an empty dataset");
        assert!(fanout >= 2, "fanout must be at least 2");
        let dim = records[0].dim();
        assert!(
            records.iter().all(|r| r.dim() == dim),
            "all records must have the same arity"
        );
        assert!(
            records.iter().enumerate().all(|(i, r)| r.id == i),
            "record ids must equal their position in the input slice"
        );

        let mut nodes: Vec<Node> = Vec::new();

        // --- Build the leaf level with STR ---------------------------------
        let ids: Vec<RecordId> = (0..records.len()).collect();
        let leaf_groups = str_partition(&ids, dim, fanout, &|id, axis| records[*id].values[axis]);
        let mut current_level: Vec<usize> = Vec::with_capacity(leaf_groups.len());
        for group in leaf_groups {
            let mbr = Mbr::from_points(group.iter().map(|&id| records[id].values.as_slice()));
            let count = group.len();
            nodes.push(Node {
                mbr,
                count,
                entries: NodeEntries::Leaf(group),
            });
            current_level.push(nodes.len() - 1);
        }

        // --- Build internal levels until a single root remains -------------
        while current_level.len() > 1 {
            let groups = str_partition(&current_level, dim, fanout, &|node_idx, axis| {
                let m = &nodes[*node_idx].mbr;
                (m.min[axis] + m.max[axis]) / 2.0
            });
            let mut next_level = Vec::with_capacity(groups.len());
            for group in groups {
                let mut mbr = nodes[group[0]].mbr.clone();
                let mut count = 0;
                for &child in &group {
                    mbr.expand_mbr(&nodes[child].mbr);
                    count += nodes[child].count;
                }
                nodes.push(Node {
                    mbr,
                    count,
                    entries: NodeEntries::Internal(group),
                });
                next_level.push(nodes.len() - 1);
            }
            current_level = next_level;
        }

        let root = current_level[0];
        let live = vec![true; records.len()];
        let live_count = records.len();
        Self {
            dim,
            fanout,
            records,
            live,
            live_count,
            nodes,
            free_nodes: Vec::new(),
            root,
            io: IoStats::new(),
        }
    }

    /// Bulk-loads with the default fanout.
    pub fn from_records(records: Vec<Record>) -> Self {
        Self::bulk_load(records, Self::DEFAULT_FANOUT)
    }

    /// Number of **live** indexed records.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True iff the tree indexes no live record (possible once every record
    /// has been [`AggregateRTree::delete`]d).
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Number of record slots ever allocated (live + tombstoned).
    pub fn num_slots(&self) -> usize {
        self.records.len()
    }

    /// True iff record slot `id` exists and has not been deleted.
    pub fn is_live(&self, id: RecordId) -> bool {
        self.live.get(id).copied().unwrap_or(false)
    }

    /// True iff some record has been deleted (ids are then non-contiguous).
    pub fn has_tombstones(&self) -> bool {
        self.live_count != self.records.len()
    }

    /// Number of tombstoned record slots (deleted records whose slots are
    /// retained for id stability).  Slots are never reclaimed, so this only
    /// grows; compaction monitoring compares it against
    /// [`AggregateRTree::num_slots`].
    pub fn tombstone_count(&self) -> usize {
        self.records.len() - self.live_count
    }

    /// Iterates over the live records, in id order.
    pub fn live_records(&self) -> impl Iterator<Item = &Record> {
        self.records.iter().filter(|r| self.live[r.id])
    }

    /// Record arity.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Node fanout used at construction time.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Accesses a node, counting one simulated page read.
    pub fn node(&self, idx: usize) -> &Node {
        self.io.record_read();
        &self.nodes[idx]
    }

    /// Accesses a node without I/O accounting (used by tests and internal
    /// bookkeeping that would not be a page read in a disk-resident setting).
    pub fn node_no_io(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// All record **slots**, indexed by id.  After deletions this slice still
    /// contains the tombstoned records; pair it with
    /// [`AggregateRTree::is_live`] or use
    /// [`AggregateRTree::live_records`] when liveness matters.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// A record by id.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id]
    }

    /// The I/O counter (shared by all traversals over this tree).
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Partitions the live records into `groups` spatially coherent groups.
    ///
    /// Leaves are visited in tree order — for an STR bulk-loaded tree this is
    /// the tile order, so consecutive leaves are spatially adjacent — and the
    /// resulting record sequence is cut into `groups` contiguous runs whose
    /// sizes differ by at most one.  Every live record lands in exactly one
    /// group; tombstoned slots are skipped.  Trailing groups may be empty
    /// when `groups` exceeds the number of live records.
    ///
    /// This is the dataset-partitioning helper of the sharded serving
    /// front-end (`kspr-serve`): each group becomes one engine shard with its
    /// own R-tree.
    ///
    /// # Panics
    /// Panics if `groups == 0`.
    pub fn partition_subtrees(&self, groups: usize) -> Vec<Vec<RecordId>> {
        assert!(groups >= 1, "at least one group is required");
        let mut ordered: Vec<RecordId> = Vec::with_capacity(self.live_count);
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            match &self.nodes[idx].entries {
                NodeEntries::Leaf(ids) => {
                    ordered.extend(ids.iter().copied().filter(|&id| self.is_live(id)));
                }
                NodeEntries::Internal(children) => {
                    // Reverse so the leftmost child is processed first.
                    stack.extend(children.iter().rev().copied());
                }
            }
        }
        let total = ordered.len();
        let base = total / groups;
        let extra = total % groups;
        let mut out = Vec::with_capacity(groups);
        let mut start = 0;
        for g in 0..groups {
            let size = base + usize::from(g < extra);
            out.push(ordered[start..start + size].to_vec());
            start += size;
        }
        out
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx].entries {
                NodeEntries::Leaf(_) => return h,
                NodeEntries::Internal(children) => {
                    idx = children[0];
                    h += 1;
                }
            }
        }
    }

    // -----------------------------------------------------------------------
    // Incremental maintenance
    // -----------------------------------------------------------------------

    /// Inserts a record and returns its (fresh, never-reused) id.
    ///
    /// Descends from the root choosing the child whose MBR needs the least
    /// enlargement (ties: smaller MBR, then smaller subtree), then splits
    /// overflowing nodes on the way back up with Guttman's quadratic split.
    ///
    /// # Panics
    /// Panics if `values` does not match the tree's arity.
    pub fn insert(&mut self, values: Vec<f64>) -> RecordId {
        assert_eq!(
            values.len(),
            self.dim,
            "inserted record arity must match the tree"
        );
        let id = self.records.len();
        self.records.push(Record::new(id, values));
        self.live.push(true);
        self.live_count += 1;

        if self.live_count == 1 {
            // The tree was (or had become) empty: restart from a fresh root
            // leaf holding just this record.
            let mbr = Mbr::from_point(&self.records[id].values);
            self.nodes[self.root] = Node {
                mbr,
                count: 1,
                entries: NodeEntries::Leaf(vec![id]),
            };
            return id;
        }

        // Choose-subtree descent, remembering the root path.
        let mut path = vec![self.root];
        loop {
            let cur = *path.last().expect("path is never empty");
            let next = match &self.nodes[cur].entries {
                NodeEntries::Leaf(_) => break,
                NodeEntries::Internal(children) => {
                    self.choose_child(children, &self.records[id].values)
                }
            };
            path.push(next);
        }

        let leaf = *path.last().expect("path is never empty");
        if let NodeEntries::Leaf(ids) = &mut self.nodes[leaf].entries {
            ids.push(id);
        }
        let point = self.records[id].values.clone();
        for &n in &path {
            self.nodes[n].count += 1;
            self.nodes[n].mbr.expand_point(&point);
        }
        self.split_overflows(path);
        id
    }

    /// Deletes record `id`, returning `true` if it existed and was live.
    ///
    /// Removes the entry from its leaf, tightens every MBR on the root path
    /// to the exact bounds of the remaining entries, drops emptied branches,
    /// and shrinks the root while it has a single child.  The record slot is
    /// tombstoned: its id is never handed out again.
    pub fn delete(&mut self, id: RecordId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        let point = self.records[id].values.clone();
        let mut path = Vec::new();
        let found = self.find_leaf_of(self.root, id, &point, &mut path);
        debug_assert!(found, "live record {id} must be stored in some leaf");
        if !found {
            return false;
        }
        self.live[id] = false;
        self.live_count -= 1;

        let leaf = *path.last().expect("found implies a non-empty path");
        if let NodeEntries::Leaf(ids) = &mut self.nodes[leaf].entries {
            ids.retain(|&x| x != id);
        }
        // Bottom-up: fix counts, drop emptied children, tighten MBRs.
        for i in (0..path.len()).rev() {
            let n = path[i];
            self.nodes[n].count -= 1;
            if i + 1 < path.len() {
                let child = path[i + 1];
                if self.nodes[child].count == 0 {
                    if let NodeEntries::Internal(ch) = &mut self.nodes[n].entries {
                        ch.retain(|&c| c != child);
                    }
                    self.free_node(child);
                }
            }
            self.recompute_mbr(n);
        }

        if self.live_count == 0 {
            // Collapse to a single empty root leaf.
            let root = self.root;
            self.nodes[root].entries = NodeEntries::Leaf(Vec::new());
            self.nodes[root].count = 0;
            return true;
        }
        // Root condensation: promote a lone child.
        loop {
            let promote = match &self.nodes[self.root].entries {
                NodeEntries::Internal(ch) if ch.len() == 1 => Some(ch[0]),
                _ => None,
            };
            match promote {
                Some(child) => {
                    let old_root = self.root;
                    self.free_node(old_root);
                    self.root = child;
                }
                None => break,
            }
        }
        true
    }

    /// The child of `children` whose MBR needs the least (margin) enlargement
    /// to absorb `point`.
    fn choose_child(&self, children: &[usize], point: &[f64]) -> usize {
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, usize::MAX);
        for &c in children {
            let mbr = &self.nodes[c].mbr;
            let mut enlarged = mbr.clone();
            enlarged.expand_point(point);
            let key = (
                margin(&enlarged) - margin(mbr),
                margin(mbr),
                self.nodes[c].count,
            );
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    /// Finds the leaf storing `id`, pushing the root path onto `path`.
    fn find_leaf_of(&self, idx: usize, id: RecordId, point: &[f64], path: &mut Vec<usize>) -> bool {
        if !self.nodes[idx].mbr.contains(point) {
            return false;
        }
        path.push(idx);
        match &self.nodes[idx].entries {
            NodeEntries::Leaf(ids) => {
                if ids.contains(&id) {
                    return true;
                }
            }
            NodeEntries::Internal(children) => {
                for &c in children {
                    if self.find_leaf_of(c, id, point, path) {
                        return true;
                    }
                }
            }
        }
        path.pop();
        false
    }

    /// Splits every overflowing node on `path`, deepest first, linking the
    /// split-off sibling into the parent (or a new root).
    fn split_overflows(&mut self, mut path: Vec<usize>) {
        while let Some(idx) = path.pop() {
            let over = match &self.nodes[idx].entries {
                NodeEntries::Leaf(ids) => ids.len() > self.fanout,
                NodeEntries::Internal(ch) => ch.len() > self.fanout,
            };
            if !over {
                // Nothing split here, so no ancestor gained an entry either.
                break;
            }
            let sibling = self.split_node(idx);
            match path.last() {
                Some(&parent) => {
                    if let NodeEntries::Internal(ch) = &mut self.nodes[parent].entries {
                        ch.push(sibling);
                    }
                    // The parent's MBR already covers both halves.
                }
                None => {
                    // The root split: grow the tree by one level.
                    let mut mbr = self.nodes[idx].mbr.clone();
                    mbr.expand_mbr(&self.nodes[sibling].mbr);
                    let count = self.nodes[idx].count + self.nodes[sibling].count;
                    let new_root = self.alloc_node(Node {
                        mbr,
                        count,
                        entries: NodeEntries::Internal(vec![idx, sibling]),
                    });
                    self.root = new_root;
                }
            }
        }
    }

    /// Quadratic split of node `idx`: keeps one group in place, returns the
    /// index of a new node holding the other group.
    fn split_node(&mut self, idx: usize) -> usize {
        let is_leaf = self.nodes[idx].is_leaf();
        let handles: Vec<usize> = match &self.nodes[idx].entries {
            NodeEntries::Leaf(ids) => ids.clone(),
            NodeEntries::Internal(ch) => ch.clone(),
        };
        let mbrs: Vec<Mbr> = handles
            .iter()
            .map(|&h| {
                if is_leaf {
                    Mbr::from_point(&self.records[h].values)
                } else {
                    self.nodes[h].mbr.clone()
                }
            })
            .collect();
        let min_fill = (self.fanout / 2).max(1);
        let (group_a, group_b) = quadratic_partition(&mbrs, min_fill);

        let pick = |group: &[usize]| -> Vec<usize> { group.iter().map(|&g| handles[g]).collect() };
        let (handles_a, handles_b) = (pick(&group_a), pick(&group_b));
        let node_b = self.alloc_split_half(handles_b, is_leaf);
        self.replace_entries(idx, handles_a, is_leaf);
        node_b
    }

    /// Allocates the split-off sibling with the given entry handles.
    fn alloc_split_half(&mut self, handles: Vec<usize>, is_leaf: bool) -> usize {
        let (mbr, count) = self.summarize_entries(&handles, is_leaf);
        let entries = if is_leaf {
            NodeEntries::Leaf(handles)
        } else {
            NodeEntries::Internal(handles)
        };
        self.alloc_node(Node {
            mbr,
            count,
            entries,
        })
    }

    /// Resets node `idx` to exactly the given entry handles.
    fn replace_entries(&mut self, idx: usize, handles: Vec<usize>, is_leaf: bool) {
        let (mbr, count) = self.summarize_entries(&handles, is_leaf);
        self.nodes[idx].mbr = mbr;
        self.nodes[idx].count = count;
        self.nodes[idx].entries = if is_leaf {
            NodeEntries::Leaf(handles)
        } else {
            NodeEntries::Internal(handles)
        };
    }

    /// Exact MBR and record count of a non-empty entry-handle set.
    fn summarize_entries(&self, handles: &[usize], is_leaf: bool) -> (Mbr, usize) {
        if is_leaf {
            let mbr = Mbr::from_points(handles.iter().map(|&h| self.records[h].values.as_slice()));
            (mbr, handles.len())
        } else {
            let mut mbr = self.nodes[handles[0]].mbr.clone();
            let mut count = 0;
            for &h in handles {
                mbr.expand_mbr(&self.nodes[h].mbr);
                count += self.nodes[h].count;
            }
            (mbr, count)
        }
    }

    /// Recomputes the exact MBR of a (non-empty) node from its entries.
    fn recompute_mbr(&mut self, idx: usize) {
        let mbr = match &self.nodes[idx].entries {
            NodeEntries::Leaf(ids) if !ids.is_empty() => Some(Mbr::from_points(
                ids.iter().map(|&id| self.records[id].values.as_slice()),
            )),
            NodeEntries::Internal(ch) if !ch.is_empty() => {
                let mut mbr = self.nodes[ch[0]].mbr.clone();
                for &c in &ch[1..] {
                    mbr.expand_mbr(&self.nodes[c].mbr);
                }
                Some(mbr)
            }
            _ => None,
        };
        if let Some(mbr) = mbr {
            self.nodes[idx].mbr = mbr;
        }
    }

    /// Takes a node slot off the free list or grows the arena.
    fn alloc_node(&mut self, node: Node) -> usize {
        match self.free_nodes.pop() {
            Some(idx) => {
                self.nodes[idx] = node;
                idx
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Releases a node slot.  The slot is scrubbed to an empty leaf so that
    /// full-arena scans (tests, invariant checks) see no stale entries.
    fn free_node(&mut self, idx: usize) {
        self.nodes[idx].entries = NodeEntries::Leaf(Vec::new());
        self.nodes[idx].count = 0;
        self.free_nodes.push(idx);
    }

    /// Number of **live** records that dominate `values`, stopping early once
    /// `limit` dominators are found (pass `usize::MAX` for an exact count).
    ///
    /// A return value `>= limit` means "at least `limit`"; below `limit` it is
    /// exact.  Subtrees are pruned with the MBR corners: a subtree whose
    /// max-corner does not dominate `values` cannot contain a dominator
    /// (every record is coordinate-wise at most the max-corner), while a
    /// subtree whose min-corner dominates `values` consists entirely of
    /// dominators and contributes its aggregate count wholesale.
    ///
    /// This is the dominance-delta probe of the standing-query monitor
    /// (`kspr-monitor`): an updated record with at least `k` live dominators
    /// cannot change any top-`k` membership region (the skyband witness
    /// property).  Probes are bookkeeping, not query work, so they bypass the
    /// simulated-I/O counter.
    ///
    /// # Panics
    /// Panics if `values` does not match the tree's arity.
    pub fn count_dominating(&self, values: &[f64], limit: usize) -> usize {
        assert_eq!(
            values.len(),
            self.dim,
            "probed record arity must match the tree"
        );
        if self.is_empty() || limit == 0 {
            return 0;
        }
        let mut count = 0usize;
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = self.node_no_io(idx);
            if node.count == 0 {
                continue;
            }
            // Prune: no record below can dominate `values`.  (An exactly
            // coincident max-corner fails `dominates` too — records equal to
            // `values` are ties, not dominators.)
            if !crate::dominance::dominates(node.mbr.upper_corner(), values) {
                continue;
            }
            if crate::dominance::dominates(node.mbr.lower_corner(), values) {
                // Every record below dominates `values`.
                count += node.count;
            } else {
                match &node.entries {
                    NodeEntries::Leaf(ids) => {
                        count += ids
                            .iter()
                            .filter(|&&id| {
                                crate::dominance::dominates(&self.records[id].values, values)
                            })
                            .count();
                    }
                    NodeEntries::Internal(children) => {
                        stack.extend(children.iter().copied());
                        continue;
                    }
                }
            }
            if count >= limit {
                return count;
            }
        }
        count
    }

    /// Calls `visit` with the id of every live record **strictly dominated
    /// by** `values` (the mirror image of [`AggregateRTree::count_dominating`]).
    ///
    /// A subtree is pruned when `values` does not dominate its MBR's
    /// min-corner: every record below is coordinate-wise at least the
    /// min-corner, so none can be dominated.  A subtree whose max-corner is
    /// dominated by `values` consists entirely of dominated records and is
    /// reported wholesale without touching its leaves' coordinates.
    ///
    /// This is the registry probe of the standing-query monitor
    /// (`kspr-monitor`): the focal points an update record dominates are
    /// exactly the standing queries whose dominator bookkeeping the update
    /// shifts, so they — and only they — must be visited.  Like the
    /// dominance-delta probe, this is bookkeeping, not query work, so it
    /// bypasses the simulated-I/O counter.
    ///
    /// # Panics
    /// Panics if `values` does not match the tree's arity.
    pub fn for_each_dominated(&self, values: &[f64], mut visit: impl FnMut(RecordId)) {
        assert_eq!(
            values.len(),
            self.dim,
            "probed record arity must match the tree"
        );
        if self.is_empty() {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let node = self.node_no_io(idx);
            if node.count == 0 {
                continue;
            }
            // Prune: no record below can be dominated by `values`.  (A
            // min-corner exactly coincident with `values` fails `dominates`
            // too — records equal to `values` are ties, not dominated.)
            if !crate::dominance::dominates(values, node.mbr.lower_corner()) {
                continue;
            }
            let wholesale = crate::dominance::dominates(values, node.mbr.upper_corner());
            match &node.entries {
                NodeEntries::Leaf(ids) => {
                    for &id in ids {
                        if wholesale
                            || crate::dominance::dominates(values, &self.records[id].values)
                        {
                            visit(id);
                        }
                    }
                }
                NodeEntries::Internal(children) => stack.extend(children.iter().copied()),
            }
        }
    }

    /// Returns `Some(record id)` for a record that is **not** dominated by any
    /// of `pivots` and is not in `excluded`, or `None` if every such record is
    /// dominated.
    ///
    /// This is the look-ahead used by P-CTA to decide whether a promising
    /// cell can already be reported (Lemma 5): a subtree can be skipped when
    /// its MBR's max-corner is dominated by some pivot, because then every
    /// record underneath is dominated too.
    pub fn find_not_dominated(
        &self,
        pivots: &[&[f64]],
        excluded: &dyn Fn(RecordId) -> bool,
    ) -> Option<RecordId> {
        if self.is_empty() {
            return None;
        }
        self.find_not_dominated_rec(self.root, pivots, excluded)
    }

    fn find_not_dominated_rec(
        &self,
        idx: usize,
        pivots: &[&[f64]],
        excluded: &dyn Fn(RecordId) -> bool,
    ) -> Option<RecordId> {
        let node = self.node(idx);
        if pivots
            .iter()
            .any(|p| crate::dominance::dominates(p, node.mbr.upper_corner()))
        {
            return None;
        }
        match &node.entries {
            NodeEntries::Leaf(ids) => ids.iter().copied().find(|&id| {
                !excluded(id)
                    && !pivots
                        .iter()
                        .any(|p| crate::dominance::dominates(p, &self.records[id].values))
            }),
            NodeEntries::Internal(children) => children
                .iter()
                .find_map(|&c| self.find_not_dominated_rec(c, pivots, excluded)),
        }
    }
}

/// Margin (sum of side lengths) of an MBR — the split heuristic's size
/// measure.  Unlike the volume it stays informative for the degenerate
/// (point / flat) rectangles that dominate leaf-level splits.
fn margin(mbr: &Mbr) -> f64 {
    mbr.min.iter().zip(&mbr.max).map(|(lo, hi)| hi - lo).sum()
}

/// Guttman's quadratic split over entry MBRs: picks the pair of seeds that
/// wastes the most space when grouped together, then greedily assigns every
/// remaining entry to the group whose MBR grows the least (honouring the
/// `min_fill` lower bound on group size).  Returns the two groups as index
/// sets into `mbrs`.
fn quadratic_partition(mbrs: &[Mbr], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = mbrs.len();
    debug_assert!(n >= 2, "cannot split fewer than two entries");
    // Seed selection.
    let (mut seed_a, mut seed_b) = (0, 1);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..n {
        for j in (i + 1)..n {
            let mut union = mbrs[i].clone();
            union.expand_mbr(&mbrs[j]);
            let waste = margin(&union) - margin(&mbrs[i]) - margin(&mbrs[j]);
            if waste > worst {
                worst = waste;
                (seed_a, seed_b) = (i, j);
            }
        }
    }
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = mbrs[seed_a].clone();
    let mut mbr_b = mbrs[seed_b].clone();
    let mut rest: Vec<usize> = (0..n).filter(|&x| x != seed_a && x != seed_b).collect();

    while !rest.is_empty() {
        // Min-fill guarantee: hand everything left to a starving group.
        if group_a.len() + rest.len() <= min_fill {
            group_a.append(&mut rest);
            break;
        }
        if group_b.len() + rest.len() <= min_fill {
            group_b.append(&mut rest);
            break;
        }
        // Pick the entry with the strongest preference for one group.
        let mut pick = 0;
        let mut pick_diff = f64::NEG_INFINITY;
        for (pos, &e) in rest.iter().enumerate() {
            let grow = |g: &Mbr| {
                let mut u = g.clone();
                u.expand_mbr(&mbrs[e]);
                margin(&u) - margin(g)
            };
            let diff = (grow(&mbr_a) - grow(&mbr_b)).abs();
            if diff > pick_diff {
                pick_diff = diff;
                pick = pos;
            }
        }
        let e = rest.swap_remove(pick);
        let mut ua = mbr_a.clone();
        ua.expand_mbr(&mbrs[e]);
        let mut ub = mbr_b.clone();
        ub.expand_mbr(&mbrs[e]);
        let da = margin(&ua) - margin(&mbr_a);
        let db = margin(&ub) - margin(&mbr_b);
        let to_a = match da.partial_cmp(&db) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            // Ties: smaller group first, then group A.
            _ => group_a.len() <= group_b.len(),
        };
        if to_a {
            group_a.push(e);
            mbr_a = ua;
        } else {
            group_b.push(e);
            mbr_b = ub;
        }
    }
    (group_a, group_b)
}

/// Sort-Tile-Recursive partitioning of `items` into groups of at most
/// `fanout`, using `key(item, axis)` as the coordinate accessor.
fn str_partition<T: Clone>(
    items: &[T],
    dim: usize,
    fanout: usize,
    key: &dyn Fn(&T, usize) -> f64,
) -> Vec<Vec<T>> {
    let mut slabs: Vec<Vec<T>> = vec![items.to_vec()];
    // Successively slice along each axis; the number of slices per axis is
    // chosen so that the final tiles hold at most `fanout` items.
    for axis in 0..dim {
        let remaining_axes = dim - axis;
        let mut next: Vec<Vec<T>> = Vec::new();
        for slab in slabs {
            let n = slab.len();
            if n <= fanout {
                next.push(slab);
                continue;
            }
            let total_groups = n.div_ceil(fanout);
            // Number of slices for this axis: the (remaining_axes)-th root of
            // the number of groups still needed.
            let slices = (total_groups as f64)
                .powf(1.0 / remaining_axes as f64)
                .ceil() as usize;
            let slices = slices.max(1);
            let per_slice = n.div_ceil(slices);
            let mut sorted = slab;
            sorted.sort_by(|a, b| {
                key(a, axis)
                    .partial_cmp(&key(b, axis))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for chunk in sorted.chunks(per_slice.max(1)) {
                next.push(chunk.to_vec());
            }
        }
        slabs = next;
    }
    // Final pass: every slab must respect the fanout.
    let mut groups = Vec::new();
    for slab in slabs {
        if slab.len() <= fanout {
            groups.push(slab);
        } else {
            for chunk in slab.chunks(fanout) {
                groups.push(chunk.to_vec());
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|id| Record::new(id, (0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect()
    }

    #[test]
    fn bulk_load_counts_and_mbrs_are_consistent() {
        let records = random_records(1_000, 4, 1);
        let tree = AggregateRTree::bulk_load(records.clone(), 16);
        assert_eq!(tree.len(), 1_000);
        assert_eq!(tree.node_no_io(tree.root()).count, 1_000);
        // Every record is inside the root MBR and inside its leaf MBR.
        let root_mbr = &tree.node_no_io(tree.root()).mbr;
        for r in &records {
            assert!(root_mbr.contains(&r.values));
        }
        // Sum of leaf counts equals n, and node counts equal subtree sizes.
        let mut leaf_total = 0;
        for idx in 0..tree.num_nodes() {
            let node = tree.node_no_io(idx);
            match &node.entries {
                NodeEntries::Leaf(ids) => {
                    assert_eq!(node.count, ids.len());
                    leaf_total += ids.len();
                    for &id in ids {
                        assert!(node.mbr.contains(&tree.record(id).values));
                    }
                }
                NodeEntries::Internal(children) => {
                    let child_sum: usize = children.iter().map(|&c| tree.node_no_io(c).count).sum();
                    assert_eq!(node.count, child_sum);
                }
            }
        }
        assert_eq!(leaf_total, 1_000);
    }

    #[test]
    fn fanout_is_respected() {
        let records = random_records(500, 3, 2);
        let tree = AggregateRTree::bulk_load(records, 8);
        for idx in 0..tree.num_nodes() {
            match &tree.node_no_io(idx).entries {
                NodeEntries::Leaf(ids) => assert!(ids.len() <= 8),
                NodeEntries::Internal(children) => assert!(children.len() <= 8 + 1),
            }
        }
        assert!(tree.height() >= 2);
    }

    #[test]
    fn single_record_tree() {
        let tree = AggregateRTree::from_records(vec![Record::new(0, vec![0.5, 0.5])]);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.node_no_io(tree.root()).count, 1);
    }

    #[test]
    fn partition_subtrees_covers_live_records_evenly() {
        let records = random_records(203, 3, 7);
        let mut tree = AggregateRTree::bulk_load(records, 8);
        for groups in [1, 2, 4, 7] {
            let parts = tree.partition_subtrees(groups);
            assert_eq!(parts.len(), groups);
            let mut all: Vec<RecordId> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..203).collect::<Vec<_>>(), "disjoint cover");
            let max = parts.iter().map(Vec::len).max().unwrap();
            let min = parts.iter().map(Vec::len).min().unwrap();
            assert!(max - min <= 1, "groups must be balanced, got {min}..{max}");
        }
        // Tombstoned slots are skipped.
        assert!(tree.delete(5));
        assert!(tree.delete(100));
        let parts = tree.partition_subtrees(3);
        let all: Vec<RecordId> = parts.iter().flatten().copied().collect();
        assert_eq!(all.len(), 201);
        assert!(!all.contains(&5) && !all.contains(&100));
        // More groups than records: trailing groups are empty.
        let small = AggregateRTree::from_records(vec![Record::new(0, vec![0.5, 0.5])]);
        let parts = small.partition_subtrees(4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn io_counter_tracks_node_accesses() {
        let records = random_records(100, 2, 3);
        let tree = AggregateRTree::bulk_load(records, 8);
        tree.io().reset();
        let _ = tree.node(tree.root());
        let _ = tree.node(tree.root());
        assert_eq!(tree.io().reads(), 2);
        let _ = tree.node_no_io(tree.root());
        assert_eq!(tree.io().reads(), 2);
    }

    #[test]
    fn find_not_dominated_respects_pivots_and_exclusions() {
        // Three records; pivot dominates two of them.
        let records = vec![
            Record::new(0, vec![0.9, 0.9]),
            Record::new(1, vec![0.2, 0.3]),
            Record::new(2, vec![0.1, 0.1]),
        ];
        let tree = AggregateRTree::bulk_load(records, 4);
        let pivot = vec![0.5, 0.5];
        let pivots: Vec<&[f64]> = vec![&pivot];
        let found = tree.find_not_dominated(&pivots, &|_| false);
        assert_eq!(found, Some(0));
        // Excluding record 0 leaves only dominated records.
        let found = tree.find_not_dominated(&pivots, &|id| id == 0);
        assert_eq!(found, None);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_input() {
        AggregateRTree::from_records(vec![]);
    }

    /// Walks the tree from the root and checks every structural invariant:
    /// counts aggregate, MBRs are exact, fanout is respected, and the set of
    /// stored ids is exactly the live id set.
    fn check_invariants(tree: &AggregateRTree) {
        fn walk(tree: &AggregateRTree, idx: usize, found: &mut Vec<RecordId>) -> usize {
            let node = tree.node_no_io(idx);
            match &node.entries {
                NodeEntries::Leaf(ids) => {
                    assert_eq!(node.count, ids.len(), "leaf count mismatch at {idx}");
                    for &id in ids {
                        assert!(tree.is_live(id), "leaf stores dead record {id}");
                        assert!(
                            node.mbr.contains(&tree.record(id).values),
                            "record {id} outside its leaf MBR"
                        );
                        found.push(id);
                    }
                    ids.len()
                }
                NodeEntries::Internal(children) => {
                    assert!(!children.is_empty(), "internal node {idx} has no children");
                    let mut total = 0;
                    for &c in children {
                        let child = tree.node_no_io(c);
                        assert!(
                            node.mbr.contains(child.mbr.lower_corner())
                                && node.mbr.contains(child.mbr.upper_corner()),
                            "child MBR escapes parent at {idx}"
                        );
                        total += walk(tree, c, found);
                    }
                    assert_eq!(node.count, total, "aggregate count mismatch at {idx}");
                    total
                }
            }
        }
        let mut found = Vec::new();
        let total = walk(tree, tree.root(), &mut found);
        assert_eq!(total, tree.len());
        found.sort_unstable();
        let live: Vec<RecordId> = tree.live_records().map(|r| r.id).collect();
        assert_eq!(found, live);
        // Fanout bound (the root alone may be under-filled).
        for idx in 0..tree.num_nodes() {
            match &tree.node_no_io(idx).entries {
                NodeEntries::Leaf(ids) => assert!(ids.len() <= tree.fanout()),
                NodeEntries::Internal(ch) => assert!(ch.len() <= tree.fanout()),
            }
        }
    }

    #[test]
    fn insert_grows_the_tree_and_preserves_invariants() {
        let records = random_records(40, 3, 7);
        let mut tree = AggregateRTree::bulk_load(records, 4);
        let mut rng = SmallRng::seed_from_u64(70);
        for _ in 0..200 {
            let values: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            let id = tree.insert(values.clone());
            assert_eq!(&tree.record(id).values, &values);
            assert!(tree.is_live(id));
        }
        assert_eq!(tree.len(), 240);
        assert!(tree.height() >= 3);
        check_invariants(&tree);
    }

    #[test]
    fn delete_tightens_and_condenses() {
        let records = random_records(150, 2, 8);
        let mut tree = AggregateRTree::bulk_load(records, 4);
        let mut rng = SmallRng::seed_from_u64(80);
        let mut live: Vec<RecordId> = (0..150).collect();
        while live.len() > 3 {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            assert!(tree.delete(victim));
            assert!(!tree.delete(victim), "double delete must fail");
            assert!(!tree.is_live(victim));
        }
        assert_eq!(tree.len(), 3);
        assert!(tree.has_tombstones());
        check_invariants(&tree);
        // Deleting everything leaves a valid empty tree ...
        for id in live {
            assert!(tree.delete(id));
        }
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        // ... into which inserts work again.
        let id = tree.insert(vec![0.5, 0.5]);
        assert_eq!(tree.len(), 1);
        assert!(tree.is_live(id));
        check_invariants(&tree);
    }

    #[test]
    fn mixed_updates_match_bulk_loaded_skyline() {
        use crate::skyline::{bbs_skyline, naive_skyline};
        let mut rng = SmallRng::seed_from_u64(90);
        let records = random_records(120, 3, 9);
        let mut tree = AggregateRTree::bulk_load(records, 8);
        for step in 0..300 {
            if step % 3 == 0 && tree.len() > 10 {
                // Delete a random live record.
                let live: Vec<RecordId> = tree.live_records().map(|r| r.id).collect();
                let victim = live[rng.gen_range(0..live.len())];
                assert!(tree.delete(victim));
            } else {
                let values: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
                tree.insert(values);
            }
        }
        check_invariants(&tree);
        // The BBS skyline over the updated tree equals the naive skyline over
        // the live records.
        let live: Vec<Record> = tree.live_records().cloned().collect();
        let mut expected: Vec<RecordId> = naive_skyline(&live);
        let mut got = bbs_skyline(&tree);
        got.sort_unstable();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn count_dominating_matches_naive_scan_under_updates() {
        let mut rng = SmallRng::seed_from_u64(95);
        let records = random_records(160, 3, 10);
        let mut tree = AggregateRTree::bulk_load(records, 6);
        for step in 0..200 {
            if step % 4 == 0 && tree.len() > 8 {
                let live: Vec<RecordId> = tree.live_records().map(|r| r.id).collect();
                let victim = live[rng.gen_range(0..live.len())];
                assert!(tree.delete(victim));
            } else {
                let values: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
                tree.insert(values);
            }
            if step % 10 != 0 {
                continue;
            }
            let probe: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            let expected = tree
                .live_records()
                .filter(|r| crate::dominance::dominates(&r.values, &probe))
                .count();
            assert_eq!(tree.count_dominating(&probe, usize::MAX), expected);
            // Limited probes are exact below the limit and saturate at it.
            for limit in [0usize, 1, 2, expected.max(1)] {
                let got = tree.count_dominating(&probe, limit);
                if expected >= limit {
                    assert!(got >= limit, "limit {limit}: got {got}, want >= {limit}");
                } else {
                    assert_eq!(got, expected, "limit {limit} is not reached");
                }
            }
        }
    }

    #[test]
    fn for_each_dominated_matches_naive_scan_under_updates() {
        let mut rng = SmallRng::seed_from_u64(97);
        let records = random_records(160, 3, 11);
        let mut tree = AggregateRTree::bulk_load(records, 6);
        for step in 0..200 {
            if step % 4 == 0 && tree.len() > 8 {
                let live: Vec<RecordId> = tree.live_records().map(|r| r.id).collect();
                let victim = live[rng.gen_range(0..live.len())];
                assert!(tree.delete(victim));
            } else {
                let values: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
                tree.insert(values);
            }
            if step % 10 != 0 {
                continue;
            }
            // Bias the probe high so the dominated set is regularly nonempty.
            let probe: Vec<f64> = (0..3).map(|_| rng.gen_range(0.3..1.0)).collect();
            let mut expected: Vec<RecordId> = tree
                .live_records()
                .filter(|r| crate::dominance::dominates(&probe, &r.values))
                .map(|r| r.id)
                .collect();
            expected.sort_unstable();
            let mut got = Vec::new();
            tree.for_each_dominated(&probe, |id| got.push(id));
            got.sort_unstable();
            assert_eq!(got, expected, "step {step}");
        }
    }

    #[test]
    fn for_each_dominated_ignores_ties_and_tombstones() {
        let mut tree = AggregateRTree::bulk_load(
            vec![
                Record::new(0, vec![0.5, 0.5]),
                Record::new(1, vec![0.9, 0.9]),
                Record::new(2, vec![0.8, 0.6]),
                Record::new(3, vec![0.1, 0.1]),
            ],
            4,
        );
        let dominated = |tree: &AggregateRTree, probe: &[f64]| {
            let mut ids = Vec::new();
            tree.for_each_dominated(probe, |id| ids.push(id));
            ids.sort_unstable();
            ids
        };
        // An exact tie (record 0) is never dominated.
        assert_eq!(dominated(&tree, &[0.5, 0.5]), vec![3]);
        assert_eq!(dominated(&tree, &[0.9, 0.9]), vec![0, 2, 3]);
        assert!(tree.delete(3));
        assert_eq!(
            dominated(&tree, &[0.5, 0.5]),
            Vec::<RecordId>::new(),
            "tombstoned records are not reported"
        );
        assert_eq!(dominated(&tree, &[0.05, 0.05]), Vec::<RecordId>::new());
    }

    #[test]
    fn count_dominating_ignores_ties_and_tombstones() {
        let mut tree = AggregateRTree::bulk_load(
            vec![
                Record::new(0, vec![0.5, 0.5]),
                Record::new(1, vec![0.9, 0.9]),
                Record::new(2, vec![0.8, 0.6]),
                Record::new(3, vec![0.1, 0.1]),
            ],
            4,
        );
        // An exact tie (record 0) never counts as a dominator.
        assert_eq!(tree.count_dominating(&[0.5, 0.5], usize::MAX), 2);
        assert!(tree.delete(1));
        assert_eq!(
            tree.count_dominating(&[0.5, 0.5], usize::MAX),
            1,
            "tombstoned dominators must not count"
        );
        assert_eq!(tree.tombstone_count(), 1);
        assert_eq!(tree.count_dominating(&[0.95, 0.95], usize::MAX), 0);
    }

    #[test]
    fn tombstone_count_tracks_deletes() {
        let records = random_records(30, 2, 12);
        let mut tree = AggregateRTree::bulk_load(records, 4);
        assert_eq!(tree.tombstone_count(), 0);
        assert!(tree.delete(3));
        assert!(tree.delete(17));
        assert_eq!(tree.tombstone_count(), 2);
        tree.insert(vec![0.5, 0.5]);
        assert_eq!(tree.tombstone_count(), 2, "inserts never resurrect slots");
        assert_eq!(tree.num_slots(), 31);
        assert_eq!(tree.len(), 29);
    }

    #[test]
    fn deleted_ids_are_never_reused() {
        let mut tree = AggregateRTree::bulk_load(
            vec![
                Record::new(0, vec![0.2, 0.2]),
                Record::new(1, vec![0.8, 0.8]),
            ],
            4,
        );
        assert!(tree.delete(0));
        let id = tree.insert(vec![0.4, 0.4]);
        assert_eq!(id, 2, "tombstoned slot 0 must not be recycled");
        assert_eq!(tree.num_slots(), 3);
        assert_eq!(tree.len(), 2);
    }
}
