//! Aggregate R-tree bulk-loaded with Sort-Tile-Recursive (STR).
//!
//! Each node stores its MBR and the number of records in its subtree (the
//! "aggregate" part, §6.2 of the paper).  Records live in leaves; internal
//! nodes reference child nodes by index in a flat arena.  Every node access
//! through [`AggregateRTree::node`] is counted as a simulated page read for
//! the disk-based experiments of Appendix A.

use crate::io::IoStats;
use crate::mbr::Mbr;
use crate::record::{Record, RecordId};

/// Children of a node: either child node indices or record ids.
#[derive(Debug, Clone)]
pub enum NodeEntries {
    /// Indices of child nodes in the tree arena.
    Internal(Vec<usize>),
    /// Ids of the records stored in this leaf.
    Leaf(Vec<RecordId>),
}

/// One R-tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Minimum bounding rectangle of everything below this node.
    pub mbr: Mbr,
    /// Number of records in the subtree (`G.num` in the paper).
    pub count: usize,
    /// Children.
    pub entries: NodeEntries,
}

impl Node {
    /// True iff this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.entries, NodeEntries::Leaf(_))
    }
}

/// An aggregate R-tree over a fixed set of records.
#[derive(Debug, Clone)]
pub struct AggregateRTree {
    dim: usize,
    fanout: usize,
    records: Vec<Record>,
    nodes: Vec<Node>,
    root: usize,
    io: IoStats,
}

impl AggregateRTree {
    /// Default node fanout used by the experiments.
    pub const DEFAULT_FANOUT: usize = 32;

    /// Bulk-loads a tree over `records` with the given `fanout` using STR.
    ///
    /// # Panics
    /// Panics if `records` is empty, if `fanout < 2`, or if the records do
    /// not all share the same arity.
    pub fn bulk_load(records: Vec<Record>, fanout: usize) -> Self {
        assert!(!records.is_empty(), "cannot index an empty dataset");
        assert!(fanout >= 2, "fanout must be at least 2");
        let dim = records[0].dim();
        assert!(
            records.iter().all(|r| r.dim() == dim),
            "all records must have the same arity"
        );
        assert!(
            records.iter().enumerate().all(|(i, r)| r.id == i),
            "record ids must equal their position in the input slice"
        );

        let mut nodes: Vec<Node> = Vec::new();

        // --- Build the leaf level with STR ---------------------------------
        let ids: Vec<RecordId> = (0..records.len()).collect();
        let leaf_groups = str_partition(&ids, dim, fanout, &|id, axis| records[*id].values[axis]);
        let mut current_level: Vec<usize> = Vec::with_capacity(leaf_groups.len());
        for group in leaf_groups {
            let mbr = Mbr::from_points(group.iter().map(|&id| records[id].values.as_slice()));
            let count = group.len();
            nodes.push(Node {
                mbr,
                count,
                entries: NodeEntries::Leaf(group),
            });
            current_level.push(nodes.len() - 1);
        }

        // --- Build internal levels until a single root remains -------------
        while current_level.len() > 1 {
            let groups = str_partition(&current_level, dim, fanout, &|node_idx, axis| {
                let m = &nodes[*node_idx].mbr;
                (m.min[axis] + m.max[axis]) / 2.0
            });
            let mut next_level = Vec::with_capacity(groups.len());
            for group in groups {
                let mut mbr = nodes[group[0]].mbr.clone();
                let mut count = 0;
                for &child in &group {
                    mbr.expand_mbr(&nodes[child].mbr);
                    count += nodes[child].count;
                }
                nodes.push(Node {
                    mbr,
                    count,
                    entries: NodeEntries::Internal(group),
                });
                next_level.push(nodes.len() - 1);
            }
            current_level = next_level;
        }

        let root = current_level[0];
        Self {
            dim,
            fanout,
            records,
            nodes,
            root,
            io: IoStats::new(),
        }
    }

    /// Bulk-loads with the default fanout.
    pub fn from_records(records: Vec<Record>) -> Self {
        Self::bulk_load(records, Self::DEFAULT_FANOUT)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the tree indexes no records (never the case after
    /// construction, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record arity.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Node fanout used at construction time.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Accesses a node, counting one simulated page read.
    pub fn node(&self, idx: usize) -> &Node {
        self.io.record_read();
        &self.nodes[idx]
    }

    /// Accesses a node without I/O accounting (used by tests and internal
    /// bookkeeping that would not be a page read in a disk-resident setting).
    pub fn node_no_io(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// All indexed records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// A record by id.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id]
    }

    /// The I/O counter (shared by all traversals over this tree).
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        loop {
            match &self.nodes[idx].entries {
                NodeEntries::Leaf(_) => return h,
                NodeEntries::Internal(children) => {
                    idx = children[0];
                    h += 1;
                }
            }
        }
    }

    /// Returns `Some(record id)` for a record that is **not** dominated by any
    /// of `pivots` and is not in `excluded`, or `None` if every such record is
    /// dominated.
    ///
    /// This is the look-ahead used by P-CTA to decide whether a promising
    /// cell can already be reported (Lemma 5): a subtree can be skipped when
    /// its MBR's max-corner is dominated by some pivot, because then every
    /// record underneath is dominated too.
    pub fn find_not_dominated(
        &self,
        pivots: &[&[f64]],
        excluded: &dyn Fn(RecordId) -> bool,
    ) -> Option<RecordId> {
        self.find_not_dominated_rec(self.root, pivots, excluded)
    }

    fn find_not_dominated_rec(
        &self,
        idx: usize,
        pivots: &[&[f64]],
        excluded: &dyn Fn(RecordId) -> bool,
    ) -> Option<RecordId> {
        let node = self.node(idx);
        if pivots
            .iter()
            .any(|p| crate::dominance::dominates(p, node.mbr.upper_corner()))
        {
            return None;
        }
        match &node.entries {
            NodeEntries::Leaf(ids) => ids.iter().copied().find(|&id| {
                !excluded(id)
                    && !pivots
                        .iter()
                        .any(|p| crate::dominance::dominates(p, &self.records[id].values))
            }),
            NodeEntries::Internal(children) => children
                .iter()
                .find_map(|&c| self.find_not_dominated_rec(c, pivots, excluded)),
        }
    }
}

/// Sort-Tile-Recursive partitioning of `items` into groups of at most
/// `fanout`, using `key(item, axis)` as the coordinate accessor.
fn str_partition<T: Clone>(
    items: &[T],
    dim: usize,
    fanout: usize,
    key: &dyn Fn(&T, usize) -> f64,
) -> Vec<Vec<T>> {
    let mut slabs: Vec<Vec<T>> = vec![items.to_vec()];
    // Successively slice along each axis; the number of slices per axis is
    // chosen so that the final tiles hold at most `fanout` items.
    for axis in 0..dim {
        let remaining_axes = dim - axis;
        let mut next: Vec<Vec<T>> = Vec::new();
        for slab in slabs {
            let n = slab.len();
            if n <= fanout {
                next.push(slab);
                continue;
            }
            let total_groups = n.div_ceil(fanout);
            // Number of slices for this axis: the (remaining_axes)-th root of
            // the number of groups still needed.
            let slices = (total_groups as f64)
                .powf(1.0 / remaining_axes as f64)
                .ceil() as usize;
            let slices = slices.max(1);
            let per_slice = n.div_ceil(slices);
            let mut sorted = slab;
            sorted.sort_by(|a, b| {
                key(a, axis)
                    .partial_cmp(&key(b, axis))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for chunk in sorted.chunks(per_slice.max(1)) {
                next.push(chunk.to_vec());
            }
        }
        slabs = next;
    }
    // Final pass: every slab must respect the fanout.
    let mut groups = Vec::new();
    for slab in slabs {
        if slab.len() <= fanout {
            groups.push(slab);
        } else {
            for chunk in slab.chunks(fanout) {
                groups.push(chunk.to_vec());
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_records(n: usize, d: usize, seed: u64) -> Vec<Record> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|id| Record::new(id, (0..d).map(|_| rng.gen_range(0.0..1.0)).collect()))
            .collect()
    }

    #[test]
    fn bulk_load_counts_and_mbrs_are_consistent() {
        let records = random_records(1_000, 4, 1);
        let tree = AggregateRTree::bulk_load(records.clone(), 16);
        assert_eq!(tree.len(), 1_000);
        assert_eq!(tree.node_no_io(tree.root()).count, 1_000);
        // Every record is inside the root MBR and inside its leaf MBR.
        let root_mbr = &tree.node_no_io(tree.root()).mbr;
        for r in &records {
            assert!(root_mbr.contains(&r.values));
        }
        // Sum of leaf counts equals n, and node counts equal subtree sizes.
        let mut leaf_total = 0;
        for idx in 0..tree.num_nodes() {
            let node = tree.node_no_io(idx);
            match &node.entries {
                NodeEntries::Leaf(ids) => {
                    assert_eq!(node.count, ids.len());
                    leaf_total += ids.len();
                    for &id in ids {
                        assert!(node.mbr.contains(&tree.record(id).values));
                    }
                }
                NodeEntries::Internal(children) => {
                    let child_sum: usize = children.iter().map(|&c| tree.node_no_io(c).count).sum();
                    assert_eq!(node.count, child_sum);
                }
            }
        }
        assert_eq!(leaf_total, 1_000);
    }

    #[test]
    fn fanout_is_respected() {
        let records = random_records(500, 3, 2);
        let tree = AggregateRTree::bulk_load(records, 8);
        for idx in 0..tree.num_nodes() {
            match &tree.node_no_io(idx).entries {
                NodeEntries::Leaf(ids) => assert!(ids.len() <= 8),
                NodeEntries::Internal(children) => assert!(children.len() <= 8 + 1),
            }
        }
        assert!(tree.height() >= 2);
    }

    #[test]
    fn single_record_tree() {
        let tree = AggregateRTree::from_records(vec![Record::new(0, vec![0.5, 0.5])]);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.node_no_io(tree.root()).count, 1);
    }

    #[test]
    fn io_counter_tracks_node_accesses() {
        let records = random_records(100, 2, 3);
        let tree = AggregateRTree::bulk_load(records, 8);
        tree.io().reset();
        let _ = tree.node(tree.root());
        let _ = tree.node(tree.root());
        assert_eq!(tree.io().reads(), 2);
        let _ = tree.node_no_io(tree.root());
        assert_eq!(tree.io().reads(), 2);
    }

    #[test]
    fn find_not_dominated_respects_pivots_and_exclusions() {
        // Three records; pivot dominates two of them.
        let records = vec![
            Record::new(0, vec![0.9, 0.9]),
            Record::new(1, vec![0.2, 0.3]),
            Record::new(2, vec![0.1, 0.1]),
        ];
        let tree = AggregateRTree::bulk_load(records, 4);
        let pivot = vec![0.5, 0.5];
        let pivots: Vec<&[f64]> = vec![&pivot];
        let found = tree.find_not_dominated(&pivots, &|_| false);
        assert_eq!(found, Some(0));
        // Excluding record 0 leaves only dominated records.
        let found = tree.find_not_dominated(&pivots, &|id| id == 0);
        assert_eq!(found, None);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_input() {
        AggregateRTree::from_records(vec![]);
    }
}
