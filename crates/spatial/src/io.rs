//! Simulated I/O accounting (Appendix A of the paper).
//!
//! The paper's disk-based experiments charge one random page read per R-tree
//! node access (0.2 ms on the authors' SSD).  The reproduction keeps data and
//! index in memory but counts node accesses through [`IoStats`] and converts
//! them to simulated I/O time through [`IoCostModel`].

use std::sync::atomic::{AtomicU64, Ordering};

/// A counter of simulated page reads.
///
/// Interior mutability lets read-only tree traversals account their accesses
/// without threading a mutable reference everywhere.  The counter is atomic
/// so that one index can serve concurrent queries (the batch mode of the
/// `kspr` query engine); relaxed ordering suffices because the value is a
/// statistic, not a synchronization point.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
}

impl IoStats {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one page read.
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of page reads recorded so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }
}

impl Clone for IoStats {
    fn clone(&self) -> Self {
        let c = IoStats::new();
        c.reads.store(self.reads(), Ordering::Relaxed);
        c
    }
}

/// Cost model converting page reads into simulated I/O time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCostModel {
    /// Cost of one random page read, in milliseconds.
    pub page_read_ms: f64,
}

impl Default for IoCostModel {
    /// The paper's measured SSD cost: 0.2 ms per random page read.
    fn default() -> Self {
        Self { page_read_ms: 0.2 }
    }
}

impl IoCostModel {
    /// Simulated I/O time for `reads` page reads, in milliseconds.
    pub fn io_time_ms(&self, reads: u64) -> f64 {
        reads as f64 * self.page_read_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let io = IoStats::new();
        assert_eq!(io.reads(), 0);
        io.record_read();
        io.record_read();
        assert_eq!(io.reads(), 2);
        io.reset();
        assert_eq!(io.reads(), 0);
    }

    #[test]
    fn cost_model_matches_paper_default() {
        let model = IoCostModel::default();
        assert!((model.io_time_ms(1000) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn clone_preserves_count() {
        let io = IoStats::new();
        io.record_read();
        let copy = io.clone();
        assert_eq!(copy.reads(), 1);
    }
}
