//! Spatial substrate for the kSPR reproduction.
//!
//! The paper assumes the dataset is indexed by an (aggregate) R-tree and uses
//! the index for three purposes:
//!
//! 1. Branch-and-bound skyline (BBS) computation to drive the processing
//!    order of P-CTA (Section 5).
//! 2. Group score bounds for the look-ahead techniques of LP-CTA
//!    (Section 6.2): each internal entry carries its MBR and the number of
//!    records below it.
//! 3. Disk-based experiments (Appendix A), where every node access is an I/O.
//!
//! This crate implements those pieces from scratch:
//!
//! * [`record`] — data records and dominance in "larger is better" semantics.
//! * [`mbr`] — minimum bounding rectangles and corner score bounds.
//! * [`rtree`] — an aggregate R-tree bulk-loaded with the Sort-Tile-Recursive
//!   (STR) algorithm, with built-in I/O accounting.
//! * [`skyline`] — BBS skyline, skyline-with-exclusions and the k-skyband.
//! * [`dominance`] — the dominance graph maintained by P-CTA.
//! * [`io`] — the simulated I/O cost model of Appendix A.

pub mod columnar;
pub mod dominance;
pub mod io;
pub mod mbr;
pub mod record;
pub mod rtree;
pub mod skyline;

pub use columnar::{ColumnarBlock, DomClass};
pub use dominance::{dominates, DominanceGraph};
pub use io::{IoCostModel, IoStats};
pub use mbr::Mbr;
pub use record::{decode_row, encode_row, Record, RecordId};
pub use rtree::{AggregateRTree, Node, NodeEntries};
pub use skyline::{
    bbs_skyline, k_skyband, k_skyband_live, k_skyband_restricted, naive_skyline, skyline_excluding,
};
