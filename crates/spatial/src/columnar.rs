//! Columnar (structure-of-arrays) record storage.
//!
//! The two record-sweep hot loops of the workspace — the Section 3.1
//! focal-dominance classification and the Monte-Carlo per-sample scoring of
//! the approximate tier — touch *every* record but only one attribute
//! relationship at a time.  Over `Vec<Record>` each touch chases a pointer to
//! a separately allocated `Vec<f64>`; over a [`ColumnarBlock`] the same sweep
//! reads one contiguous `f64` column per attribute, which the compiler
//! auto-vectorizes and the prefetcher streams.
//!
//! Both kernels are bit-compatible with their row-major counterparts:
//! [`ColumnarBlock::scores_into`] accumulates attribute products in the same
//! ascending-attribute order as [`crate::Record::score`], so every score is
//! the identical floating-point value, and [`ColumnarBlock::classify_into`]
//! evaluates the same exact comparisons as [`crate::dominates`].

/// Relationship of a stored row to a probe record (the focal record of a
/// query), from the *row's* point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomClass {
    /// The row dominates the probe: no attribute worse, at least one better.
    Dominates,
    /// The row is dominated by the probe.
    Dominated,
    /// The row equals the probe in every attribute.
    Tie,
    /// Neither dominates the other.
    Incomparable,
}

/// A block of records in column-major order: one contiguous `f64` vector per
/// attribute, all of equal length.
#[derive(Debug, Clone, Default)]
pub struct ColumnarBlock {
    cols: Vec<Vec<f64>>,
    rows: usize,
}

impl ColumnarBlock {
    /// An empty block with `dim` attribute columns.
    pub fn new(dim: usize) -> Self {
        Self {
            cols: vec![Vec::new(); dim],
            rows: 0,
        }
    }

    /// Builds a block from row slices.
    ///
    /// # Panics
    /// Panics if a row's arity differs from `dim`.
    pub fn from_rows<'a, I>(dim: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut block = Self::new(dim);
        for row in rows {
            block.push_row(row);
        }
        block
    }

    /// Appends one row.  Row index == insertion order, so blocks mirroring a
    /// dataset use the record id as the row index.
    ///
    /// # Panics
    /// Panics if `values` does not match the block arity.
    pub fn push_row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.cols.len(), "row arity mismatch");
        for (col, &v) in self.cols.iter_mut().zip(values) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of attribute columns.
    pub fn dim(&self) -> usize {
        self.cols.len()
    }

    /// The attribute `col` of row `row`.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.cols[col][row]
    }

    /// One attribute column, contiguous over all rows.
    pub fn column(&self, col: usize) -> &[f64] {
        &self.cols[col]
    }

    /// Scores every row under `weight` (`out[i] = row_i · weight`), reusing
    /// `out`'s allocation.
    ///
    /// Products are accumulated in ascending attribute order — the same
    /// floating-point evaluation order as the row-major
    /// [`crate::Record::score`] — so the results are bit-identical, not just
    /// close.
    ///
    /// # Panics
    /// Panics if `weight` does not match the block arity.
    pub fn scores_into(&self, weight: &[f64], out: &mut Vec<f64>) {
        assert_eq!(weight.len(), self.cols.len(), "weight arity mismatch");
        out.clear();
        out.resize(self.rows, 0.0);
        for (col, &w) in self.cols.iter().zip(weight) {
            for (acc, &v) in out.iter_mut().zip(col) {
                *acc += v * w;
            }
        }
    }

    /// Classifies every row against `probe` (the focal record), reusing
    /// `out`'s allocation.  `out[i]` is the relationship of row `i` to the
    /// probe, exactly as [`crate::dominates`] / equality would decide it.
    ///
    /// # Panics
    /// Panics if `probe` does not match the block arity.
    pub fn classify_into(&self, probe: &[f64], out: &mut Vec<DomClass>) {
        assert_eq!(probe.len(), self.cols.len(), "probe arity mismatch");
        // Column sweep over two flag bits per row: "some attribute above the
        // probe" and "some attribute below".  The final class is a pure
        // function of the two bits.
        let mut flags: Vec<u8> = vec![0; self.rows];
        for (col, &p) in self.cols.iter().zip(probe) {
            for (f, &v) in flags.iter_mut().zip(col) {
                *f |= u8::from(v > p) | (u8::from(v < p) << 1);
            }
        }
        out.clear();
        out.extend(flags.iter().map(|f| match f {
            0b00 => DomClass::Tie,
            0b01 => DomClass::Dominates,
            0b10 => DomClass::Dominated,
            _ => DomClass::Incomparable,
        }));
    }

    /// [`ColumnarBlock::classify_into`] with the kernel's wall time
    /// measured, returned in nanoseconds.  The timing lives here — next to
    /// the kernel — so every caller attributes the dominance phase
    /// identically; the classification itself is bit-identical to the
    /// untimed entry point.
    pub fn classify_into_timed(&self, probe: &[f64], out: &mut Vec<DomClass>) -> u64 {
        let started = std::time::Instant::now();
        self.classify_into(probe, out);
        u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dominates, Record};

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![3.0, 8.0, 8.0],
            vec![9.0, 4.0, 4.0],
            vec![5.0, 5.0, 7.0], // tie with the probe below
            vec![4.0, 3.0, 6.0],
            vec![6.0, 6.0, 8.0], // dominates the probe
            vec![5.0, 4.0, 7.0], // dominated by the probe
        ]
    }

    fn block() -> ColumnarBlock {
        ColumnarBlock::from_rows(3, rows().iter().map(Vec::as_slice))
    }

    #[test]
    fn construction_and_access() {
        let b = block();
        assert_eq!(b.len(), 6);
        assert_eq!(b.dim(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.value(1, 0), 9.0);
        assert_eq!(b.column(2), &[8.0, 4.0, 7.0, 6.0, 8.0, 7.0]);
        assert!(ColumnarBlock::new(4).is_empty());
    }

    #[test]
    fn scores_bit_identical_to_row_major() {
        let b = block();
        let weights = [
            vec![0.2, 0.3, 0.5],
            vec![1.0, 0.0, 0.0],
            vec![0.1234, 0.5678, 0.3088],
        ];
        let mut out = Vec::new();
        for w in &weights {
            b.scores_into(w, &mut out);
            for (i, raw) in rows().iter().enumerate() {
                let expected = Record::new(i, raw.clone()).score(w);
                assert!(
                    out[i].to_bits() == expected.to_bits(),
                    "row {i}: {} vs {}",
                    out[i],
                    expected
                );
            }
        }
    }

    #[test]
    fn classification_matches_dominates() {
        let b = block();
        let probe = vec![5.0, 5.0, 7.0];
        let mut classes = Vec::new();
        b.classify_into(&probe, &mut classes);
        assert_eq!(classes.len(), b.len());
        for (i, raw) in rows().iter().enumerate() {
            let expected = if raw == &probe {
                DomClass::Tie
            } else if dominates(raw, &probe) {
                DomClass::Dominates
            } else if dominates(&probe, raw) {
                DomClass::Dominated
            } else {
                DomClass::Incomparable
            };
            assert_eq!(classes[i], expected, "row {i}");
        }
        assert_eq!(classes[2], DomClass::Tie);
        assert_eq!(classes[4], DomClass::Dominates);
        assert_eq!(classes[5], DomClass::Dominated);
    }

    #[test]
    fn timed_classification_matches_untimed() {
        let b = block();
        let probe = vec![5.0, 5.0, 7.0];
        let (mut timed, mut untimed) = (Vec::new(), Vec::new());
        let ns = b.classify_into_timed(&probe, &mut timed);
        b.classify_into(&probe, &mut untimed);
        assert_eq!(timed, untimed, "timing must not change the kernel");
        assert!(ns < u64::MAX);
    }

    #[test]
    fn buffers_are_reused() {
        let b = block();
        let mut scores = Vec::new();
        b.scores_into(&[0.2, 0.3, 0.5], &mut scores);
        let cap = scores.capacity();
        let ptr = scores.as_ptr();
        for _ in 0..10 {
            b.scores_into(&[0.5, 0.25, 0.25], &mut scores);
        }
        assert_eq!(scores.capacity(), cap);
        assert_eq!(scores.as_ptr(), ptr);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_wrong_arity() {
        ColumnarBlock::new(3).push_row(&[1.0, 2.0]);
    }
}
