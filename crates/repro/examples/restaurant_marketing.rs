//! Market-impact analysis for a competitive marketplace.
//!
//! Run with: `cargo run --release --example restaurant_marketing`
//!
//! Scenario from the paper's introduction: a restaurant owner wants to know
//! which customer profiles find her restaurant attractive, how large that
//! audience is, and how the picture changes if she invests in improving one
//! attribute.  We build a synthetic marketplace of competitors, run the kSPR
//! query for the owner's restaurant, and compare the impact before and after
//! an upgrade.

use kspr_repro::datagen;
use kspr_repro::kspr::{Algorithm, Dataset, KsprConfig, QueryEngine};

fn describe(result: &kspr_repro::kspr::KsprResult, label: &str, k: usize) {
    println!("--- {label} ---");
    println!(
        "  regions where the restaurant is in the top-{k}: {}",
        result.num_regions()
    );
    println!(
        "  market impact (uniform preferences): {:.2}%",
        100.0 * result.impact(50_000, 7)
    );
    println!(
        "  records examined: {} of the competitor set, CellTree nodes: {}",
        result.stats.processed_records, result.stats.celltree_nodes
    );
}

fn main() {
    let k = 10;
    // A neighbourhood with 150 competing restaurants rated on value, service
    // and ambiance (independently distributed ratings).  The market size is
    // chosen so the owner's restaurant is actually competitive: in a much
    // denser market a top-10 ambition is hopeless for a mid-table restaurant
    // and the kSPR answer is (correctly) empty for every scenario.
    let competitors = datagen::generate(datagen::Distribution::Independent, 150, 3, 2024);
    let dataset = Dataset::new(competitors.clone());
    let engine = QueryEngine::new(&dataset, KsprConfig::default());

    // The three what-if scenarios are independent queries over the same
    // marketplace, so they run as one parallel batch with shared
    // preprocessing (`QueryEngine::run_batch`).
    let scenarios = vec![
        vec![0.55, 0.60, 0.93], // today: strong ambiance, mediocre value/service
        vec![0.55, 0.80, 0.93], // option A: service training (+0.2 service)
        vec![0.75, 0.60, 0.93], // option B: price cut (+0.2 value)
    ];
    let results = engine.run_batch(Algorithm::LpCta, &scenarios, k);
    let (result_today, result_service, result_value) = (&results[0], &results[1], &results[2]);

    describe(
        result_today,
        "Current ratings (value 0.55, service 0.60, ambiance 0.93)",
        k,
    );
    describe(
        result_service,
        "After service upgrade (service 0.60 -> 0.80)",
        k,
    );
    describe(result_value, "After price cut (value 0.55 -> 0.75)", k);

    println!();
    println!("Summary:");
    let today_impact = result_today.impact(50_000, 7);
    let service_impact = result_service.impact(50_000, 7);
    let value_impact = result_value.impact(50_000, 7);
    println!(
        "  today:            {:.2}% of preference space",
        100.0 * today_impact
    );
    println!(
        "  service upgrade:  {:.2}% ({:+.2} points)",
        100.0 * service_impact,
        100.0 * (service_impact - today_impact)
    );
    println!(
        "  price cut:        {:.2}% ({:+.2} points)",
        100.0 * value_impact,
        100.0 * (value_impact - today_impact)
    );
    let better = if service_impact > value_impact {
        "service training"
    } else {
        "a price cut"
    };
    println!("  -> the larger audience gain comes from {better}.");
}
