//! Comparing kSPR algorithms and validating the market-impact probability.
//!
//! Run with: `cargo run --release --example market_impact`
//!
//! This example runs the same kSPR query with P-CTA, LP-CTA and the brute
//! force Monte-Carlo oracle, showing (i) that all methods agree, (ii) how the
//! exact region volumes compare to a sampling estimate of the market impact,
//! and (iii) the efficiency statistics that differentiate the algorithms.

use kspr_repro::datagen::{generate, Distribution};
use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig, PreferenceSpace, QueryEngine};
use std::time::Instant;

fn main() {
    let n = 3_000;
    let d = 4;
    let k = 10;
    let raw = generate(Distribution::AntiCorrelated, n, d, 99);
    let dataset = Dataset::new(raw.clone());
    let engine = QueryEngine::new(&dataset, KsprConfig::default());

    // Focal record: a strong but beatable option.
    let focal = vec![0.74, 0.70, 0.78, 0.72];
    let space = PreferenceSpace::transformed(d);

    println!("dataset: ANTI, n = {n}, d = {d}, k = {k}");
    println!();

    let mut results = Vec::new();
    for alg in [Algorithm::Pcta, Algorithm::LpCta] {
        let start = Instant::now();
        let result = engine.run(alg, &focal, k);
        let elapsed = start.elapsed();
        println!(
            "{:<8} time {:>8.3}s | regions {:>4} | processed records {:>5} | CellTree nodes {:>6} | LP tests {:>6}",
            alg.label(),
            elapsed.as_secs_f64(),
            result.num_regions(),
            result.stats.processed_records,
            result.stats.celltree_nodes,
            result.stats.feasibility_tests,
        );
        results.push((alg, result));
    }
    println!();

    // Exact (geometry-based) impact versus a Monte-Carlo estimate of the same
    // probability straight from the query definition.
    let (_, lpcta_result) = &results[1];
    let exact = lpcta_result.impact(100_000, 5);
    let sampled = naive::impact_monte_carlo(&raw, &focal, k, &space, 20_000, 6);
    println!(
        "market impact (exact region volumes):   {:.3}%",
        100.0 * exact
    );
    println!(
        "market impact (Monte-Carlo, 20k draws): {:.3}%",
        100.0 * sampled
    );

    // Cross-validate the two algorithms point by point.
    let probes = naive::sample_weights(&space, 2_000, 11);
    let disagreements = probes
        .iter()
        .filter(|w| results[0].1.contains(w) != results[1].1.contains(w))
        .count();
    println!();
    println!(
        "P-CTA and LP-CTA disagree on {disagreements} of {} sampled preferences",
        probes.len()
    );
}
