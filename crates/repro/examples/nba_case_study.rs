//! The NBA case study of Section 7.2 (Figure 9), on surrogate data.
//!
//! Run with: `cargo run --release --example nba_case_study`
//!
//! The paper's case study shows that Dwight Howard is a top-3 player for a
//! broad range of preferences in both the 2014-2015 and 2015-2016 seasons,
//! but *for different reasons*: in 2014-2015 his kSPR regions lie where the
//! weight of points (attack) is high, in 2015-2016 where the weight of
//! rebounds (defense) is high.  The real per-season statistics are not
//! redistributable, so this example uses the surrogate generator whose focal
//! player exhibits the same season-over-season profile shift.

use kspr_repro::datagen::nba_seasons;
use kspr_repro::kspr::{Algorithm, Dataset, KsprConfig, KsprResult, QueryEngine};

/// Centroid of the result regions in the (points-weight, rebounds-weight)
/// plane, weighted by region area — a compact summary of *where* in
/// preference space the player is competitive.
fn preference_centroid(result: &KsprResult) -> Option<(f64, f64)> {
    let mut total_area = 0.0;
    let mut cx = 0.0;
    let mut cy = 0.0;
    for region in &result.regions {
        let poly = region.polytope.as_ref()?;
        let area = poly.volume(0, 0);
        let c = poly.centroid();
        total_area += area;
        cx += area * c[0];
        cy += area * c[1];
    }
    if total_area <= 0.0 {
        return None;
    }
    Some((cx / total_area, cy / total_area))
}

fn analyse(label: &str, season: &[Vec<f64>], focal_idx: usize, k: usize) {
    let focal = season[focal_idx].clone();
    let competitors: Vec<Vec<f64>> = season
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != focal_idx)
        .map(|(_, v)| v.clone())
        .collect();
    let dataset = Dataset::new(competitors);
    let result = QueryEngine::new(&dataset, KsprConfig::default()).run(Algorithm::LpCta, &focal, k);

    println!("=== {label} ===");
    println!(
        "focal player stats (points, rebounds, assists): ({:.2}, {:.2}, {:.2})",
        focal[0], focal[1], focal[2]
    );
    println!("top-{k} regions: {}", result.num_regions());
    println!(
        "share of preference space where the player is top-{k}: {:.1}%",
        100.0 * result.impact(50_000, 1)
    );
    match preference_centroid(&result) {
        Some((w_points, w_rebounds)) => {
            println!(
                "centre of the kSPR regions: points weight {:.2}, rebounds weight {:.2}",
                w_points, w_rebounds
            );
            let pitch = if w_points > w_rebounds {
                "market the player on his scoring (attack) ability"
            } else {
                "market the player on his rebounding (defense) ability"
            };
            println!("marketing advice: {pitch}");
        }
        None => println!("the player is never in the top-{k}"),
    }
    println!();
}

fn main() {
    let k = 3;
    // League size and seed picked so the surrogate reproduces the paper's
    // Figure-9 shape: the focal player is top-3 in both seasons, with the
    // regions moving from the points-heavy corner to the rebounds-heavy one.
    let league = nba_seasons(250, 42);
    analyse(
        "Season 2014-2015 (surrogate)",
        &league.season1,
        league.focal,
        k,
    );
    analyse(
        "Season 2015-2016 (surrogate)",
        &league.season2,
        league.focal,
        k,
    );
    println!(
        "As in Figure 9 of the paper, the same player is competitive in both seasons, \
         but the regions move from the points-heavy corner of the preference space to \
         the rebounds-heavy corner."
    );
}
