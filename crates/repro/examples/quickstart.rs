//! Quickstart: the restaurant example from Figure 1 of the paper.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The dataset contains four competing restaurants rated on value, service
//! and ambiance; the focal record is the restaurant "Kyma".  The kSPR query
//! asks: *for which user preferences is Kyma among the top-3 recommended
//! restaurants?*

use kspr_repro::kspr::{Algorithm, Dataset, KsprConfig, QueryEngine};

fn main() {
    // Ratings on a 1–10 scale: (value, service, ambiance), as in Figure 1(a).
    let restaurants = [
        ("L'Entrecôte", vec![3.0, 8.0, 8.0]),
        ("Beirut Grill", vec![9.0, 4.0, 4.0]),
        ("El Coyote", vec![8.0, 3.0, 4.0]),
        ("La Braceria", vec![4.0, 3.0, 6.0]),
    ];
    let kyma = vec![5.0, 5.0, 7.0];
    let k = 3;

    let dataset = Dataset::new(restaurants.iter().map(|(_, r)| r.clone()).collect());
    let engine = QueryEngine::new(&dataset, KsprConfig::default());
    let result = engine.run(Algorithm::LpCta, &kyma, k);

    println!("kSPR query: in which preference regions is Kyma among the top-{k}?");
    println!("Competitors: {}", restaurants.len());
    println!("Result regions: {}", result.num_regions());
    println!(
        "Market impact (share of all preferences where Kyma is top-{k}): {:.1}%",
        100.0 * result.impact(50_000, 42)
    );
    println!();

    // The regions live in the transformed preference space (w1 = weight of
    // value, w2 = weight of service; the ambiance weight is 1 - w1 - w2).
    for (i, region) in result.regions.iter().enumerate() {
        println!("Region {i} (rank of Kyma inside: {})", region.rank);
        if let Some(poly) = &region.polytope {
            let verts: Vec<String> = poly
                .vertices()
                .iter()
                .map(|v| format!("({:.3}, {:.3})", v[0], v[1]))
                .collect();
            println!("  vertices in (w_value, w_service): {}", verts.join(", "));
        }
    }
    println!();

    // Spot-check a few concrete user profiles.
    let profiles = [
        ("balanced diner", [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
        ("value hunter", [0.8, 0.1, 0.1]),
        ("romantic dinner (ambiance)", [0.1, 0.1, 0.8]),
    ];
    for (name, w) in profiles {
        let inside = result.contains_full_weight(&w);
        println!(
            "{name:<30} weights {w:?} -> Kyma in top-{k}: {}",
            if inside { "yes" } else { "no" }
        );
    }
}
