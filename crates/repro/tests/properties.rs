//! Property-based tests (proptest) on the core data structures and the
//! invariants the kSPR algorithms rely on.

use kspr_repro::geometry::{Hyperplane, Polytope, PreferenceSpace, Sign};
use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig};
use kspr_repro::lp::{interior_point, maximize, LinearConstraint, LpOutcome, Relation};
use kspr_repro::spatial::{dominates, k_skyband, naive_skyline, AggregateRTree, Record};
use proptest::prelude::*;

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// Strategy: a small dataset of `d`-dimensional records.
fn dataset_strategy(d: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(record_strategy(d), 5..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------------- LP solver ----------------

    /// The LP optimum of a maximization over random box constraints is an
    /// upper bound for the objective at any sampled feasible point.
    #[test]
    fn lp_optimum_dominates_feasible_points(
        coeffs in prop::collection::vec(-1.0f64..1.0, 3),
        bounds in prop::collection::vec(0.2f64..1.0, 3),
    ) {
        let constraints: Vec<LinearConstraint> = (0..3)
            .map(|i| {
                let mut e = vec![0.0; 3];
                e[i] = 1.0;
                LinearConstraint::new(e, Relation::LessEq, bounds[i])
            })
            .collect();
        match maximize(&coeffs, &constraints, 3) {
            LpOutcome::Optimal { objective, point } => {
                // The optimum itself must be feasible...
                for c in &constraints {
                    prop_assert!(c.satisfied_by(&point, 1e-7));
                }
                // ... and at least as good as the box corners.
                for mask in 0..8u32 {
                    let corner: Vec<f64> = (0..3)
                        .map(|i| if mask & (1 << i) != 0 { bounds[i] } else { 0.0 })
                        .collect();
                    let v: f64 = corner.iter().zip(&coeffs).map(|(x, c)| x * c).sum();
                    prop_assert!(v <= objective + 1e-7);
                }
            }
            other => prop_assert!(false, "box-constrained LP must have an optimum, got {other:?}"),
        }
    }

    /// `interior_point` returns a witness strictly satisfying every constraint,
    /// and never returns a witness for a contradictory system.
    #[test]
    fn interior_point_witness_is_valid(
        a in prop::collection::vec(-1.0f64..1.0, 2),
        b in -0.5f64..0.5,
    ) {
        let space = PreferenceSpace::transformed(3);
        let mut constraints = space.boundary_constraints();
        constraints.push(LinearConstraint::new(a.clone(), Relation::Less, b));
        if let Some(sol) = interior_point(&constraints, 2) {
            for c in &constraints {
                prop_assert!(c.satisfied_by(&sol.point, 0.0), "witness violates {c:?}");
            }
        }
        // Adding the opposite strict constraint makes the system empty.
        constraints.push(LinearConstraint::new(a, Relation::Greater, b));
        prop_assert!(interior_point(&constraints, 2).is_none());
    }

    // ---------------- geometry ----------------

    /// The separating hyperplane agrees with direct score comparison at
    /// random weight vectors (both spaces).
    #[test]
    fn hyperplane_sides_match_score_comparison(
        r in record_strategy(4),
        p in record_strategy(4),
        w_seed in 0u64..1000,
    ) {
        for space in [PreferenceSpace::transformed(4), PreferenceSpace::original(4)] {
            let h = Hyperplane::separating(&r, &p, &space);
            for w in naive::sample_weights(&space, 8, w_seed) {
                let full = space.to_full_weight(&w);
                let diff: f64 = r.iter().zip(&full).map(|(x, wi)| x * wi).sum::<f64>()
                    - p.iter().zip(&full).map(|(x, wi)| x * wi).sum::<f64>();
                match h.side(&w) {
                    Some(Sign::Positive) => prop_assert!(diff > -1e-7),
                    Some(Sign::Negative) => prop_assert!(diff < 1e-7),
                    None => {}
                }
            }
        }
    }

    /// Lemma 4: if record `a` dominates record `b`, then wherever `b` beats
    /// the focal record, `a` beats it too (h_a^+ covers h_b^+).
    #[test]
    fn dominance_implies_halfspace_containment(
        base in record_strategy(3),
        bump in prop::collection::vec(0.0f64..0.3, 3),
        p in record_strategy(3),
        w_seed in 0u64..1000,
    ) {
        let a: Vec<f64> = base.iter().zip(&bump).map(|(x, d)| (x + d).min(0.999)).collect();
        prop_assume!(dominates(&a, &base));
        let space = PreferenceSpace::transformed(3);
        let ha = Hyperplane::separating(&a, &p, &space);
        let hb = Hyperplane::separating(&base, &p, &space);
        for w in naive::sample_weights(&space, 16, w_seed) {
            if hb.side(&w) == Some(Sign::Positive) {
                prop_assert_ne!(ha.side(&w), Some(Sign::Negative), "Lemma 4 violated at {:?}", w);
            }
        }
    }

    /// Every vertex reported by the polytope enumeration satisfies all of the
    /// defining constraints, and the polytope contains its own centroid.
    #[test]
    fn polytope_vertices_satisfy_constraints(
        cuts in prop::collection::vec((prop::collection::vec(-1.0f64..1.0, 2), -0.5f64..0.5), 1..4),
    ) {
        let space = PreferenceSpace::transformed(3);
        let mut constraints = space.boundary_constraints();
        for (coeffs, rhs) in &cuts {
            constraints.push(LinearConstraint::new(coeffs.clone(), Relation::LessEq, *rhs));
        }
        if let Some(poly) = Polytope::from_constraints(&constraints, 2) {
            for v in poly.vertices() {
                prop_assert!(poly.contains(v, 1e-6));
            }
            if poly.vertices().len() >= 3 {
                prop_assert!(poly.contains(&poly.centroid(), 1e-6));
            }
        }
    }

    // ---------------- spatial substrate ----------------

    /// BBS skyline equals the naive skyline on random datasets.
    #[test]
    fn bbs_skyline_matches_naive(raw in dataset_strategy(3, 60)) {
        let records = Record::from_raw(raw);
        let tree = AggregateRTree::bulk_load(records.clone(), 8);
        let mut bbs = kspr_repro::spatial::bbs_skyline(&tree);
        let mut naive_sl = naive_skyline(&records);
        bbs.sort_unstable();
        naive_sl.sort_unstable();
        prop_assert_eq!(bbs, naive_sl);
    }

    /// The k-skyband is monotone in k and every member has fewer than k
    /// dominators.
    #[test]
    fn k_skyband_is_monotone_and_correct(raw in dataset_strategy(3, 60), k in 1usize..6) {
        let records = Record::from_raw(raw);
        let band_k = k_skyband(&records, k);
        let band_k1 = k_skyband(&records, k + 1);
        prop_assert!(band_k.len() <= band_k1.len());
        for &id in &band_k {
            let dominators = records
                .iter()
                .filter(|o| dominates(&o.values, &records[id].values))
                .count();
            prop_assert!(dominators < k);
        }
    }

    /// Every record is contained in the MBR of the R-tree leaf that stores it,
    /// and subtree counts add up.
    #[test]
    fn rtree_structure_invariants(raw in dataset_strategy(4, 80)) {
        let records = Record::from_raw(raw);
        let n = records.len();
        let tree = AggregateRTree::bulk_load(records, 6);
        prop_assert_eq!(tree.node_no_io(tree.root()).count, n);
        let mut total = 0;
        for idx in 0..tree.num_nodes() {
            let node = tree.node_no_io(idx);
            if let kspr_repro::spatial::NodeEntries::Leaf(ids) = &node.entries {
                total += ids.len();
                for &id in ids {
                    prop_assert!(node.mbr.contains(&tree.record(id).values));
                }
            }
        }
        prop_assert_eq!(total, n);
    }

    // ---------------- end-to-end ----------------

    /// LP-CTA agrees with the brute-force top-k test on random small inputs.
    #[test]
    fn lpcta_matches_oracle_on_random_inputs(
        raw in dataset_strategy(3, 40),
        focal in record_strategy(3),
        k in 1usize..6,
    ) {
        let dataset = Dataset::new(raw.clone());
        let result = kspr_repro::kspr::run(
            Algorithm::LpCta,
            &dataset,
            &focal,
            k,
            &KsprConfig::default(),
        );
        let agreement = naive::classification_agreement(&result, &raw, &focal, k, 60, 99);
        prop_assert!(agreement > 0.97, "agreement {agreement}");
    }

    /// P-CTA and LP-CTA always classify sampled preferences identically.
    #[test]
    fn pcta_and_lpcta_are_equivalent(
        raw in dataset_strategy(3, 40),
        focal in record_strategy(3),
        k in 1usize..6,
    ) {
        let dataset = Dataset::new(raw);
        let config = KsprConfig::default();
        let a = kspr_repro::kspr::run(Algorithm::Pcta, &dataset, &focal, k, &config);
        let b = kspr_repro::kspr::run(Algorithm::LpCta, &dataset, &focal, k, &config);
        for w in naive::sample_weights(&a.space, 40, 123) {
            prop_assert_eq!(a.contains(&w), b.contains(&w));
        }
    }
}
