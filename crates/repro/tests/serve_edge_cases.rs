//! Serving edge cases, end to end through the public `kspr_serve` API:
//! `k = 0` rejection, an empty dataset, a shard deleted down to nothing, and
//! the single-shard configuration matching the plain engine bit for bit.

use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig, QueryEngine};
use kspr_repro::serve::{ServeError, ServeOptions, Server, ShardedEngine};

#[test]
fn zero_k_is_rejected_with_an_error_not_a_panic() {
    let engine = ShardedEngine::new(
        vec![vec![0.2, 0.8], vec![0.8, 0.2]],
        KsprConfig::default().with_shards(2),
    );
    let server = Server::start(engine, ServeOptions::default());
    let handle = server.handle();
    assert_eq!(
        handle.submit(vec![0.5, 0.5], 0).wait().unwrap_err(),
        ServeError::InvalidK
    );
    // The dispatcher survives and keeps serving.
    assert!(handle.submit(vec![0.5, 0.5], 2).wait().is_ok());
    let (_, stats) = server.shutdown();
    assert_eq!((stats.rejected, stats.queries), (1, 1));
}

#[test]
fn empty_dataset_serves_whole_space_until_records_arrive() {
    let server = Server::start(
        ShardedEngine::empty(3, KsprConfig::default().with_shards(4)),
        ServeOptions::default(),
    );
    let handle = server.handle();
    let result = handle.submit(vec![0.4, 0.5, 0.6], 2).wait().unwrap();
    assert_eq!(result.num_regions(), 1, "no competitors: trivially top-k");
    assert!(result.contains_full_weight(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]));

    // Records arriving later are picked up by the very next query.
    handle.insert(vec![0.9, 0.9, 0.9]).wait().unwrap();
    let beaten = handle.submit(vec![0.4, 0.5, 0.6], 1).wait().unwrap();
    assert_eq!(beaten.num_regions(), 0, "the new dominator blocks top-1");
    drop(handle);
    let (engine, _) = server.shutdown();
    assert_eq!(engine.len(), 1);
}

#[test]
fn a_shard_deleted_to_empty_keeps_the_pool_consistent() {
    // Two shards, round-robin: records 0 and 2 land in shard 0, record 1 in
    // shard 1.  Deleting 0 and 2 empties shard 0 entirely.
    let raw = vec![
        vec![0.9, 0.2, 0.3],
        vec![0.3, 0.8, 0.5],
        vec![0.5, 0.5, 0.9],
    ];
    let mut sharded = ShardedEngine::new(raw, KsprConfig::default().with_shards(2));
    assert!(sharded.delete(0));
    assert!(sharded.delete(2));
    assert_eq!(sharded.shard_sizes(), vec![0, 1]);

    let single = QueryEngine::new(
        &Dataset::new(vec![vec![0.3, 0.8, 0.5]]),
        KsprConfig::default(),
    );
    for alg in [Algorithm::Cta, Algorithm::LpCta, Algorithm::KSkyband] {
        for k in 1..=2 {
            let focal = vec![0.5, 0.5, 0.6];
            let got = sharded.run(alg, &focal, k);
            let want = single.run(alg, &focal, k);
            assert_eq!(got.num_regions(), want.num_regions(), "{alg:?} k={k}");
            for w in naive::sample_weights(&got.space, 24, 3) {
                assert_eq!(got.contains(&w), want.contains(&w), "{alg:?} k={k}");
            }
        }
    }

    // Refilling the emptied shard works too (the round-robin cursor still
    // rotates over every shard).
    let id = sharded.insert(vec![0.7, 0.7, 0.7]);
    assert_eq!(id, 3);
    assert_eq!(sharded.len(), 2);
}

#[test]
fn single_shard_config_is_equivalent_to_the_plain_engine() {
    let raw: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            let x = (i as f64 * 0.61803) % 1.0;
            let y = (i as f64 * 0.32471) % 1.0;
            vec![0.05 + 0.9 * x, 0.05 + 0.9 * y, 0.05 + 0.9 * ((x + y) % 1.0)]
        })
        .collect();
    let config = KsprConfig::default(); // shards = 1
    let sharded = ShardedEngine::new(raw.clone(), config.clone());
    assert_eq!(sharded.num_shards(), 1);
    let plain = QueryEngine::new(&Dataset::new(raw.clone()), config);
    let focals = vec![raw[5].clone(), raw[17].clone(), vec![0.95, 0.95, 0.95]];
    for alg in [Algorithm::Cta, Algorithm::Pcta, Algorithm::LpCta] {
        let got = sharded.run_batch(alg, &focals, 3);
        let want = plain.run_batch(alg, &focals, 3);
        for (a, b) in got.iter().zip(&want) {
            // The single-shard path forwards to the inner engine, so even
            // the work counters are identical, not just the results.
            assert_eq!(a.num_regions(), b.num_regions(), "{alg:?}");
            assert_eq!(a.stats.processed_records, b.stats.processed_records);
            assert_eq!(a.stats.celltree_nodes, b.stats.celltree_nodes);
            for w in naive::sample_weights(&a.space, 24, 11) {
                assert_eq!(a.contains(&w), b.contains(&w), "{alg:?}");
            }
        }
    }
}
