//! Standing-query correctness: under random insert/delete interleavings,
//! every monitored query's maintained result — whether classified away as
//! unaffected, patched in place, or re-run — must be indistinguishable from
//! a fresh engine run at the current dataset state, for every CellTree
//! policy, on both the single engine and the sharded serving engine.
//!
//! "Indistinguishable" follows the equality standard of the other
//! consistency suites (`dynamic_consistency`, `shard_consistency`): equal
//! region counts, equal sorted rank signatures, and identical classification
//! of sampled preference vectors.  This is exactly the surface the monitor's
//! classification argument promises to preserve (see the `kspr-monitor`
//! module docs: the skyband witness property pins the result area, and for
//! schedule-invariant policies the decomposition too).
//!
//! On top of the fresh-run oracle, the suite differentially tests the
//! **spatially indexed registry maintained in dispatcher-sized batches**
//! (`Monitor::new()` + `apply_batch`) against the **full-scan registry
//! classifying after every single update** (`Monitor::full_scan()`): the two
//! must stay bit-identical — results, rank signatures, and dominator
//! bookkeeping — while the index never visits more (update, query) pairs
//! than the full scan walks.

use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig, KsprResult, QueryEngine};
use kspr_repro::monitor::{Monitor, MonitoredEngine, QueryId, UpdateKind};
use kspr_repro::serve::{ShardStrategy, ShardedEngine};
use proptest::prelude::*;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Cta,
    Algorithm::Pcta,
    Algorithm::LpCta,
    Algorithm::KSkyband,
];

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// One scripted update: `kind % 2 == 0` inserts `record`, otherwise `pick`
/// selects a live record to delete.
fn op_strategy(d: usize) -> impl Strategy<Value = (u8, Vec<f64>, usize)> {
    (0u8..4, record_strategy(d), 0usize..1 << 16)
}

/// The maintained result must match a fresh run: region count, sorted rank
/// signature, and sampled classification.
fn assert_matches_fresh(maintained: &KsprResult, fresh: &KsprResult, ctx: &str) {
    assert_eq!(maintained.num_regions(), fresh.num_regions(), "{ctx}");
    assert_eq!(maintained.rank_signature(), fresh.rank_signature(), "{ctx}");
    for w in naive::sample_weights(&fresh.space, 24, 7) {
        assert_eq!(
            maintained.contains(&w),
            fresh.contains(&w),
            "{ctx} at {w:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn monitored_engine_matches_fresh_runs(
        raw in prop::collection::vec(record_strategy(3), 6..20),
        ops in prop::collection::vec(op_strategy(3), 1..8),
        focal_a in record_strategy(3),
        focal_b in record_strategy(3),
        k in 1usize..4,
    ) {
        let mut monitored = MonitoredEngine::new(QueryEngine::new(
            &Dataset::new(raw.clone()),
            KsprConfig::default(),
        ));
        // One standing query per CellTree policy and focal record.
        let mut queries: Vec<(QueryId, Algorithm, Vec<f64>)> = Vec::new();
        for alg in ALGORITHMS {
            for focal in [&focal_a, &focal_b] {
                let id = monitored
                    .register(alg, focal.clone(), k)
                    .expect("valid standing query");
                queries.push((id, alg, focal.clone()));
            }
        }

        // Mirror of the store: slot -> live values (None = tombstoned).
        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        for (step, (kind, values, pick)) in ops.into_iter().enumerate() {
            let live_ids: Vec<usize> = mirror
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id))
                .collect();
            if kind % 2 == 0 || live_ids.len() <= 2 {
                let (id, _) = monitored.insert(values.clone());
                prop_assert_eq!(id, mirror.len());
                mirror.push(Some(values));
            } else {
                let id = live_ids[pick % live_ids.len()];
                let (removed, _) = monitored.delete(id);
                prop_assert!(removed);
                mirror[id] = None;
            }

            // Oracle: a fresh engine over the surviving records.
            let live_raw: Vec<Vec<f64>> = mirror.iter().flatten().cloned().collect();
            let fresh = QueryEngine::new(&Dataset::new(live_raw), KsprConfig::default());
            for (id, alg, focal) in &queries {
                let fresh_result = fresh.run(*alg, focal, k);
                assert_matches_fresh(
                    monitored.result(*id).expect("registered"),
                    &fresh_result,
                    &format!("step {step} {alg:?}"),
                );
            }
        }

        // Unregistering everything frees the registry (no leaked state).
        for (id, _, _) in queries {
            prop_assert!(monitored.unregister(id));
        }
        prop_assert!(monitored.monitor().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The indexed + batched registry against the full-scan per-update
    /// registry, on the single engine, for all four CellTree policies —
    /// including LP-CTA's cell-wise patch path (a witnessed update retains
    /// the skyband-restricted result with zero cells re-derived).
    #[test]
    fn indexed_batched_registry_matches_full_scan(
        raw in prop::collection::vec(record_strategy(3), 6..20),
        ops in prop::collection::vec(op_strategy(3), 2..10),
        focal_a in record_strategy(3),
        focal_b in record_strategy(3),
        k in 1usize..4,
        window in 1usize..5,
    ) {
        let mut engine = QueryEngine::new(&Dataset::new(raw.clone()), KsprConfig::default());
        let mut indexed = Monitor::new();
        let mut full = Monitor::full_scan();
        prop_assert!(indexed.is_indexed());
        prop_assert!(!full.is_indexed());
        let mut ids: Vec<QueryId> = Vec::new();
        for alg in ALGORITHMS {
            for focal in [&focal_a, &focal_b] {
                let a = indexed
                    .register(&engine, alg, focal.clone(), k)
                    .expect("valid standing query");
                let b = full
                    .register(&engine, alg, focal.clone(), k)
                    .expect("valid standing query");
                prop_assert_eq!(a, b, "both registries assign the same id sequence");
                ids.push(a);
            }
        }

        let ops_len = ops.len();
        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        for (chunk_no, chunk) in ops.chunks(window).enumerate() {
            // The engine and the per-update full scan move in lockstep; the
            // indexed registry sees the whole chunk as one batch against the
            // post-chunk state — the serving dispatcher's drain-the-queue
            // shape.
            let mut batch: Vec<(UpdateKind, Vec<f64>)> = Vec::new();
            for (kind, values, pick) in chunk {
                let live_ids: Vec<usize> = mirror
                    .iter()
                    .enumerate()
                    .filter_map(|(id, v)| v.as_ref().map(|_| id))
                    .collect();
                if kind % 2 == 0 || live_ids.len() <= 2 {
                    let id = engine.insert(values.clone());
                    prop_assert_eq!(id, mirror.len());
                    full.apply_insert(&engine, values);
                    batch.push((UpdateKind::Insert, values.clone()));
                    mirror.push(Some(values.clone()));
                } else {
                    let id = live_ids[pick % live_ids.len()];
                    prop_assert!(engine.delete(id));
                    let removed = mirror[id].take().expect("live record");
                    full.apply_delete(&engine, &removed);
                    batch.push((UpdateKind::Delete, removed));
                }
            }
            indexed.apply_batch(&engine, &batch);

            // Bit-identical registries, and both equal to a fresh run.
            let live_raw: Vec<Vec<f64>> = mirror.iter().flatten().cloned().collect();
            let fresh = QueryEngine::new(&Dataset::new(live_raw), KsprConfig::default());
            for &id in &ids {
                let iq = indexed.query(id).expect("registered");
                let fq = full.query(id).expect("registered");
                prop_assert_eq!(iq.result().num_regions(), fq.result().num_regions());
                prop_assert_eq!(iq.result().rank_signature(), fq.result().rank_signature());
                prop_assert_eq!(iq.focal_dominators(), fq.focal_dominators());
                let fresh_result = fresh.run(iq.algorithm(), iq.focal(), k);
                assert_matches_fresh(
                    iq.result(),
                    &fresh_result,
                    &format!("chunk {chunk_no} {:?} window={window}", iq.algorithm()),
                );
            }
        }

        // Both sides account every (update, query) pair exactly once, and
        // the index never visits more pairs than the full scan walks.
        let pairs = (ops_len * ids.len()) as u64;
        prop_assert_eq!(indexed.stats().classified(), pairs);
        prop_assert_eq!(full.stats().classified(), pairs);
        prop_assert_eq!(full.stats().visited, pairs);
        prop_assert!(indexed.stats().visited <= full.stats().visited);
        prop_assert_eq!(
            indexed.stats().visited + indexed.stats().index_pruned,
            pairs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_standing_queries_match_fresh_runs(
        raw in prop::collection::vec(record_strategy(3), 8..24),
        ops in prop::collection::vec(op_strategy(3), 1..7),
        focal in record_strategy(3),
        k in 1usize..4,
        shards in 2usize..5,
        spatial in 0u8..2,
        window in 1usize..4,
    ) {
        let config = KsprConfig::default().with_shards(shards);
        let strategy = if spatial == 1 { ShardStrategy::Subtrees } else { ShardStrategy::RoundRobin };
        let mut sharded = ShardedEngine::with_strategy(raw.clone(), config, strategy);
        // Drive the monitors against the sharded engine directly — the same
        // coupling the serve dispatcher uses.  The indexed registry is
        // maintained in dispatcher-sized batches; the full-scan registry
        // classifies after every single update and doubles as the per-step
        // oracle surface.
        let mut monitor = Monitor::new();
        let mut full = Monitor::full_scan();
        let mut queries: Vec<(QueryId, Algorithm)> = Vec::new();
        for alg in ALGORITHMS {
            let id = monitor
                .register(&sharded, alg, focal.clone(), k)
                .expect("valid standing query");
            let fid = full
                .register(&sharded, alg, focal.clone(), k)
                .expect("valid standing query");
            prop_assert_eq!(id, fid, "both registries assign the same id sequence");
            queries.push((id, alg));
        }

        let total_steps = ops.len();
        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        let mut batch: Vec<(UpdateKind, Vec<f64>)> = Vec::new();
        for (step, (kind, values, pick)) in ops.into_iter().enumerate() {
            let live_ids: Vec<usize> = mirror
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id))
                .collect();
            if kind % 2 == 0 || live_ids.len() <= 2 {
                let id = sharded.insert(values.clone());
                prop_assert_eq!(id, mirror.len());
                full.apply_insert(&sharded, &values);
                batch.push((UpdateKind::Insert, values.clone()));
                mirror.push(Some(values));
            } else {
                let id = live_ids[pick % live_ids.len()];
                let removed = sharded.delete_returning(id);
                prop_assert_eq!(removed.as_ref(), mirror[id].as_ref());
                let removed = removed.expect("live record");
                full.apply_delete(&sharded, &removed);
                batch.push((UpdateKind::Delete, removed));
                mirror[id] = None;
            }

            // Oracle: the sharded engine's own fresh answer at this state
            // (which shard_consistency.rs in turn ties to a single engine).
            for (id, alg) in &queries {
                let fresh_result = sharded.run(*alg, &focal, k);
                assert_matches_fresh(
                    full.result(*id).expect("registered"),
                    &fresh_result,
                    &format!("step {step} {alg:?} shards={shards}"),
                );
            }

            // Flush the dispatcher-style batch, then the two registries must
            // be bit-identical.
            if batch.len() >= window || step + 1 == total_steps {
                monitor.apply_batch(&sharded, &std::mem::take(&mut batch));
                for (id, _) in &queries {
                    let m = monitor.query(*id).expect("registered");
                    let f = full.query(*id).expect("registered");
                    prop_assert_eq!(m.result().num_regions(), f.result().num_regions());
                    prop_assert_eq!(m.result().rank_signature(), f.result().rank_signature());
                    prop_assert_eq!(m.focal_dominators(), f.focal_dominators());
                }
            }
            prop_assert_eq!(sharded.len(), mirror.iter().flatten().count());
        }
        // Every update classified every standing query exactly once, on both
        // sides, and the index never visits more pairs than the full scan.
        prop_assert_eq!(
            monitor.stats().classified() % monitor.len() as u64,
            0
        );
        prop_assert_eq!(monitor.stats().classified(), full.stats().classified());
        prop_assert_eq!(full.stats().visited, full.stats().classified());
        prop_assert!(monitor.stats().visited <= full.stats().visited);
    }
}
