//! Standing-query correctness: under random insert/delete interleavings,
//! every monitored query's maintained result — whether classified away as
//! unaffected, patched in place, or re-run — must be indistinguishable from
//! a fresh engine run at the current dataset state, for every CellTree
//! policy, on both the single engine and the sharded serving engine.
//!
//! "Indistinguishable" follows the equality standard of the other
//! consistency suites (`dynamic_consistency`, `shard_consistency`): equal
//! region counts, equal sorted rank signatures, and identical classification
//! of sampled preference vectors.  This is exactly the surface the monitor's
//! classification argument promises to preserve (see the `kspr-monitor`
//! module docs: the skyband witness property pins the result area, and for
//! schedule-invariant policies the decomposition too).

use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig, KsprResult, QueryEngine};
use kspr_repro::monitor::{Monitor, MonitoredEngine, QueryId};
use kspr_repro::serve::{ShardStrategy, ShardedEngine};
use proptest::prelude::*;

const ALGORITHMS: [Algorithm; 4] = [
    Algorithm::Cta,
    Algorithm::Pcta,
    Algorithm::LpCta,
    Algorithm::KSkyband,
];

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// One scripted update: `kind % 2 == 0` inserts `record`, otherwise `pick`
/// selects a live record to delete.
fn op_strategy(d: usize) -> impl Strategy<Value = (u8, Vec<f64>, usize)> {
    (0u8..4, record_strategy(d), 0usize..1 << 16)
}

/// The maintained result must match a fresh run: region count, sorted rank
/// signature, and sampled classification.
fn assert_matches_fresh(maintained: &KsprResult, fresh: &KsprResult, ctx: &str) {
    assert_eq!(maintained.num_regions(), fresh.num_regions(), "{ctx}");
    assert_eq!(maintained.rank_signature(), fresh.rank_signature(), "{ctx}");
    for w in naive::sample_weights(&fresh.space, 24, 7) {
        assert_eq!(
            maintained.contains(&w),
            fresh.contains(&w),
            "{ctx} at {w:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn monitored_engine_matches_fresh_runs(
        raw in prop::collection::vec(record_strategy(3), 6..20),
        ops in prop::collection::vec(op_strategy(3), 1..8),
        focal_a in record_strategy(3),
        focal_b in record_strategy(3),
        k in 1usize..4,
    ) {
        let mut monitored = MonitoredEngine::new(QueryEngine::new(
            &Dataset::new(raw.clone()),
            KsprConfig::default(),
        ));
        // One standing query per CellTree policy and focal record.
        let mut queries: Vec<(QueryId, Algorithm, Vec<f64>)> = Vec::new();
        for alg in ALGORITHMS {
            for focal in [&focal_a, &focal_b] {
                let id = monitored
                    .register(alg, focal.clone(), k)
                    .expect("valid standing query");
                queries.push((id, alg, focal.clone()));
            }
        }

        // Mirror of the store: slot -> live values (None = tombstoned).
        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        for (step, (kind, values, pick)) in ops.into_iter().enumerate() {
            let live_ids: Vec<usize> = mirror
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id))
                .collect();
            if kind % 2 == 0 || live_ids.len() <= 2 {
                let (id, _) = monitored.insert(values.clone());
                prop_assert_eq!(id, mirror.len());
                mirror.push(Some(values));
            } else {
                let id = live_ids[pick % live_ids.len()];
                let (removed, _) = monitored.delete(id);
                prop_assert!(removed);
                mirror[id] = None;
            }

            // Oracle: a fresh engine over the surviving records.
            let live_raw: Vec<Vec<f64>> = mirror.iter().flatten().cloned().collect();
            let fresh = QueryEngine::new(&Dataset::new(live_raw), KsprConfig::default());
            for (id, alg, focal) in &queries {
                let fresh_result = fresh.run(*alg, focal, k);
                assert_matches_fresh(
                    monitored.result(*id).expect("registered"),
                    &fresh_result,
                    &format!("step {step} {alg:?}"),
                );
            }
        }

        // Unregistering everything frees the registry (no leaked state).
        for (id, _, _) in queries {
            prop_assert!(monitored.unregister(id));
        }
        prop_assert!(monitored.monitor().is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_standing_queries_match_fresh_runs(
        raw in prop::collection::vec(record_strategy(3), 8..24),
        ops in prop::collection::vec(op_strategy(3), 1..7),
        focal in record_strategy(3),
        k in 1usize..4,
        shards in 2usize..5,
        spatial in 0u8..2,
    ) {
        let config = KsprConfig::default().with_shards(shards);
        let strategy = if spatial == 1 { ShardStrategy::Subtrees } else { ShardStrategy::RoundRobin };
        let mut sharded = ShardedEngine::with_strategy(raw.clone(), config, strategy);
        // Drive the monitor against the sharded engine directly — the same
        // coupling the serve dispatcher uses.
        let mut monitor = Monitor::new();
        let mut queries: Vec<(QueryId, Algorithm)> = Vec::new();
        for alg in ALGORITHMS {
            let id = monitor
                .register(&sharded, alg, focal.clone(), k)
                .expect("valid standing query");
            queries.push((id, alg));
        }

        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        for (step, (kind, values, pick)) in ops.into_iter().enumerate() {
            let live_ids: Vec<usize> = mirror
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id))
                .collect();
            if kind % 2 == 0 || live_ids.len() <= 2 {
                let id = sharded.insert(values.clone());
                prop_assert_eq!(id, mirror.len());
                monitor.apply_insert(&sharded, &values);
                mirror.push(Some(values));
            } else {
                let id = live_ids[pick % live_ids.len()];
                let removed = sharded.delete_returning(id);
                prop_assert_eq!(removed.as_ref(), mirror[id].as_ref());
                monitor.apply_delete(&sharded, &removed.expect("live record"));
                mirror[id] = None;
            }

            // Oracle: the sharded engine's own fresh answer at this state
            // (which shard_consistency.rs in turn ties to a single engine).
            for (id, alg) in &queries {
                let fresh_result = sharded.run(*alg, &focal, k);
                assert_matches_fresh(
                    monitor.result(*id).expect("registered"),
                    &fresh_result,
                    &format!("step {step} {alg:?} shards={shards}"),
                );
            }
            prop_assert_eq!(sharded.len(), mirror.iter().flatten().count());
        }
        // Every update classified every standing query exactly once.
        prop_assert_eq!(
            monitor.stats().classified() % monitor.len() as u64,
            0
        );
    }
}
