//! Dynamic correctness: random interleavings of insert / delete / query on a
//! long-lived engine must return results identical to an engine rebuilt from
//! scratch over the surviving records at every step.
//!
//! This exercises the whole incremental stack at once — R-tree insert/delete,
//! tombstone-aware preprocessing, and the cached, update-patched `SharedPrep`
//! (the queries go through `run_batch`, which is the path that consults the
//! cache).

use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig, QueryEngine};
use proptest::prelude::*;

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// One scripted update: `kind % 2 == 0` inserts `record`, otherwise `pick`
/// selects a live record to delete.
fn op_strategy(d: usize) -> impl Strategy<Value = (u8, Vec<f64>, usize)> {
    (0u8..4, record_strategy(d), 0usize..1 << 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn interleaved_updates_match_rebuild_from_scratch(
        raw in prop::collection::vec(record_strategy(3), 6..20),
        ops in prop::collection::vec(op_strategy(3), 1..8),
        focal in record_strategy(3),
        k in 1usize..4,
    ) {
        let config = KsprConfig::default();
        let mut engine = QueryEngine::new(&Dataset::new(raw.clone()), config.clone());
        // Mirror of the store: slot -> live values (None = tombstoned).
        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        let focals = vec![focal];

        // Prime the shared-prep cache so every update exercises the
        // incremental patch path rather than a fresh computation.
        engine.run_batch(Algorithm::LpCta, &focals, k);
        let primed = engine.shared_prep_computes();

        for (kind, values, pick) in ops {
            let live_ids: Vec<usize> = mirror
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id))
                .collect();
            if kind % 2 == 0 || live_ids.len() <= 2 {
                let id = engine.insert(values.clone());
                prop_assert_eq!(id, mirror.len(), "ids are dense and never reused");
                mirror.push(Some(values));
            } else {
                let id = live_ids[pick % live_ids.len()];
                prop_assert!(engine.delete(id));
                prop_assert!(!engine.delete(id), "double delete must fail");
                mirror[id] = None;
            }

            // Rebuild an engine from scratch over the surviving records and
            // compare: region count, per-query work, and the classification
            // of sampled preference vectors must all agree.
            let live_raw: Vec<Vec<f64>> = mirror.iter().flatten().cloned().collect();
            let fresh = QueryEngine::new(&Dataset::new(live_raw), config.clone());
            for alg in [Algorithm::LpCta, Algorithm::KSkyband] {
                let incremental = engine.run_batch(alg, &focals, k);
                let rebuilt = fresh.run_batch(alg, &focals, k);
                let (a, b) = (&incremental[0], &rebuilt[0]);
                prop_assert_eq!(a.num_regions(), b.num_regions(), "{:?}", alg);
                prop_assert_eq!(
                    a.stats.processed_records,
                    b.stats.processed_records,
                    "{:?}",
                    alg
                );
                for w in naive::sample_weights(&a.space, 24, 7) {
                    prop_assert_eq!(a.contains(&w), b.contains(&w), "{:?} at {:?}", alg, w);
                }
            }
        }
        // The long-lived engine served the whole interleaving from its
        // patched cache: zero shared-prep recomputations after priming.
        prop_assert_eq!(engine.shared_prep_computes(), primed);
    }
}
