//! Approximate-tier consistency: the Hoeffding interval reported by the
//! sampling tier must contain the exact engine's true impact at (at least)
//! the configured confidence, on static datasets **and** across random
//! insert/delete interleavings — through both the plain sampler
//! (`kspr-approx`) and the sharded serving fan-out (`kspr-serve`).
//!
//! The true impact is computed from the exact engine's region geometry: the
//! datasets are 3-dimensional, so the working space has 2 dimensions and
//! every finalized region volume is an exact polygon area (no Monte-Carlo
//! reference noise).  Coverage is then counted over repeated estimator
//! seeds: with a two-sided confidence of 90% the interval may legitimately
//! miss in some trials, so the assertion is on the coverage *rate*, not on
//! every draw.  (The vendored proptest draws deterministic inputs per test
//! name, so these rates are stable across runs.)
//!
//! The file also pins the acceptance-criterion regression: with `shards = 1`
//! and `QueryTier::Exact`, the tiered dispatch is a bit-for-bit passthrough
//! of the plain engine.

use kspr_repro::approx::{run_tiered_batch, ApproxEngine, TieredResult};
use kspr_repro::kspr::{
    naive, Algorithm, Dataset, ErrorBudget, KsprConfig, QueryEngine, QueryTier,
};
use kspr_repro::serve::ShardedEngine;
use proptest::prelude::*;

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// One scripted update: `kind % 2 == 0` inserts `record`, otherwise `pick`
/// selects a live record to delete.
fn op_strategy(d: usize) -> impl Strategy<Value = (u8, Vec<f64>, usize)> {
    (0u8..4, record_strategy(d), 0usize..1 << 16)
}

/// The exact impact of `focal` at rank threshold `k`: total region area of
/// the exact result over the space area (exact in 2 working dimensions).
fn exact_impact(engine: &QueryEngine, focal: &[f64], k: usize) -> f64 {
    let result = engine.run(Algorithm::LpCta, focal, k);
    result.total_volume(0, 0) / result.space.volume()
}

/// Counts how many of `trials` independent estimator seeds produce an
/// interval covering `truth`, and asserts every estimate's half-width meets
/// the budget.
fn coverage<F>(estimate: F, truth: f64, budget: &ErrorBudget, trials: u64) -> usize
where
    F: Fn(u64) -> kspr_repro::kspr::ApproxImpact,
{
    let mut covered = 0;
    for trial in 0..trials {
        let est = estimate(0xC0FF_EE00u64.wrapping_add(trial.wrapping_mul(0x9E37)));
        assert!(est.half_width <= budget.epsilon + 1e-12);
        assert_eq!(est.samples, budget.samples());
        if truth >= est.lower() - 1e-9 && truth <= est.upper() + 1e-9 {
            covered += 1;
        }
    }
    covered
}

const TRIALS: u64 = 12;

/// Minimum covering trials: `ceil(confidence · TRIALS)` — "at least the
/// configured confidence" over the seeded trials.
fn required(budget: &ErrorBudget) -> usize {
    (budget.confidence * TRIALS as f64).ceil() as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn approx_interval_covers_the_exact_impact(
        raw in prop::collection::vec(record_strategy(3), 10..32),
        ops in prop::collection::vec(op_strategy(3), 2..8),
        focal in record_strategy(3),
        k in 1usize..6,
        shards in 2usize..4,
    ) {
        let budget = ErrorBudget::new(0.1, 0.9);
        let need = required(&budget);

        // --- static dataset -------------------------------------------------
        let mut engine = QueryEngine::new(&Dataset::new(raw.clone()), KsprConfig::default());
        let truth = exact_impact(&engine, &focal, k);
        let covered = coverage(
            |seed| ApproxEngine::from_engine(&engine, k).estimate(&focal, &budget, seed),
            truth,
            &budget,
            TRIALS,
        );
        prop_assert!(
            covered >= need,
            "static: {covered}/{TRIALS} trials covered the exact impact {truth} \
             (need >= {need} at {}% confidence)",
            100.0 * budget.confidence
        );

        // --- randomly updated dataset --------------------------------------
        // The same interleaving drives the plain engine and the sharded
        // serving engine; after every update the interval must keep covering
        // the *current* exact impact on both paths.
        let mut sharded =
            ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(shards));
        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        for (kind, values, pick) in ops {
            let live_ids: Vec<usize> = mirror
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id))
                .collect();
            if kind % 2 == 0 || live_ids.len() <= 2 {
                engine.insert(values.clone());
                sharded.insert(values.clone());
                mirror.push(Some(values));
            } else {
                let id = live_ids[pick % live_ids.len()];
                prop_assert!(engine.delete(id));
                prop_assert!(sharded.delete(id));
                mirror[id] = None;
            }
        }
        let truth = exact_impact(&engine, &focal, k);
        let covered = coverage(
            |seed| ApproxEngine::from_engine(&engine, k).estimate(&focal, &budget, seed),
            truth,
            &budget,
            TRIALS,
        );
        prop_assert!(
            covered >= need,
            "updated: {covered}/{TRIALS} trials covered the exact impact {truth}"
        );
        let focals = vec![focal.clone()];
        let covered = coverage(
            |seed| {
                sharded
                    .run_approx_batch(&focals, k, &budget, seed)
                    .pop()
                    .expect("one estimate")
            },
            truth,
            &budget,
            TRIALS,
        );
        prop_assert!(
            covered >= need,
            "sharded: {covered}/{TRIALS} trials covered the exact impact {truth} \
             at {shards} shards"
        );
    }

    #[test]
    fn exact_tier_at_one_shard_is_a_bit_for_bit_passthrough(
        raw in prop::collection::vec(record_strategy(3), 8..24),
        focal in record_strategy(3),
        k in 1usize..5,
    ) {
        // The acceptance-criterion regression: `shards = 1` +
        // `QueryTier::Exact` must execute exactly what the plain engine
        // executes — identical regions, identical work counters.
        let plain = QueryEngine::new(&Dataset::new(raw.clone()), KsprConfig::default());
        let focals = vec![focal];

        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default());
        let via_sharded =
            sharded.run_tiered_batch(Algorithm::LpCta, &focals, k, QueryTier::Exact, 1);
        let via_engine = run_tiered_batch(&plain, Algorithm::LpCta, &focals, k, 1);
        let want = plain.run(Algorithm::LpCta, &focals[0], k);
        for (label, tiered) in [("sharded", &via_sharded[0]), ("engine", &via_engine[0])] {
            let got = match tiered {
                TieredResult::Exact(result) => result,
                TieredResult::Approximate(_) => panic!("Exact tier must never sample"),
            };
            prop_assert_eq!(got.num_regions(), want.num_regions(), "{}", label);
            prop_assert_eq!(
                got.stats.processed_records,
                want.stats.processed_records,
                "{}", label
            );
            prop_assert_eq!(got.stats.celltree_nodes, want.stats.celltree_nodes, "{}", label);
            prop_assert_eq!(got.rank_signature(), want.rank_signature(), "{}", label);
            for w in naive::sample_weights(&want.space, 24, 11) {
                prop_assert_eq!(got.contains(&w), want.contains(&w), "{} at {:?}", label, &w);
            }
        }
    }
}
