//! Cross-crate integration tests: every kSPR algorithm must agree with the
//! brute-force definition of the query and with every other algorithm.

use kspr_repro::datagen::{generate, Distribution};
use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig};

/// Picks a focal record with a non-trivial result: values around the 70-80th
/// percentile, so it is beaten by some records but not by all.
fn focal_for(d: usize) -> Vec<f64> {
    (0..d).map(|i| 0.72 + 0.03 * (i as f64 % 3.0)).collect()
}

fn check_agreement(
    alg: Algorithm,
    dist: Distribution,
    n: usize,
    d: usize,
    k: usize,
    config: &KsprConfig,
    seed: u64,
) {
    let raw = generate(dist, n, d, seed);
    let dataset = Dataset::new(raw.clone());
    let focal = focal_for(d);
    let result = kspr_repro::kspr::run(alg, &dataset, &focal, k, config);
    let agreement = naive::classification_agreement(&result, &raw, &focal, k, 300, seed ^ 0xABCD);
    assert!(
        agreement > 0.99,
        "{alg:?} on {dist:?} n={n} d={d} k={k}: agreement {agreement}"
    );
}

#[test]
fn celltree_algorithms_match_oracle_across_distributions() {
    let config = KsprConfig::default();
    for dist in Distribution::all() {
        for alg in [
            Algorithm::Cta,
            Algorithm::Pcta,
            Algorithm::LpCta,
            Algorithm::KSkyband,
        ] {
            check_agreement(alg, dist, 120, 3, 5, &config, 42);
        }
    }
}

#[test]
fn algorithms_match_oracle_in_four_dimensions() {
    let config = KsprConfig::default();
    for alg in [Algorithm::Pcta, Algorithm::LpCta] {
        check_agreement(alg, Distribution::Independent, 150, 4, 8, &config, 7);
        check_agreement(alg, Distribution::AntiCorrelated, 100, 4, 5, &config, 8);
    }
}

#[test]
fn rtopk_matches_oracle_on_two_dimensions() {
    let config = KsprConfig::default();
    for k in [1, 4, 8] {
        check_agreement(
            Algorithm::Rtopk,
            Distribution::Independent,
            200,
            2,
            k,
            &config,
            3,
        );
    }
}

#[test]
fn imaxrank_matches_oracle_on_small_instances() {
    let config = KsprConfig::default();
    check_agreement(
        Algorithm::IMaxRank,
        Distribution::Independent,
        40,
        3,
        3,
        &config,
        5,
    );
}

#[test]
fn original_space_variants_match_transformed_space() {
    let raw = generate(Distribution::Independent, 120, 3, 11);
    let dataset = Dataset::new(raw.clone());
    let focal = focal_for(3);
    let k = 5;
    let transformed = kspr_repro::kspr::run(
        Algorithm::LpCta,
        &dataset,
        &focal,
        k,
        &KsprConfig::default(),
    );
    let original = kspr_repro::kspr::run(
        Algorithm::LpCta,
        &dataset,
        &focal,
        k,
        &KsprConfig::original_space(),
    );
    // The two results live in different working spaces; compare them through
    // full (normalized) weight vectors.
    let space = transformed.space;
    for w in naive::sample_weights(&space, 300, 13) {
        let full = space.to_full_weight(&w);
        assert_eq!(
            transformed.contains_full_weight(&full),
            original.contains_full_weight(&full),
            "disagreement at {full:?}"
        );
    }
}

#[test]
fn all_bound_modes_produce_the_same_result() {
    use kspr_repro::kspr::BoundMode;
    let raw = generate(Distribution::Independent, 150, 3, 17);
    let dataset = Dataset::new(raw.clone());
    let focal = focal_for(3);
    let k = 6;
    let results: Vec<_> = [BoundMode::Record, BoundMode::Group, BoundMode::Fast]
        .into_iter()
        .map(|mode| {
            kspr_repro::kspr::run(
                Algorithm::LpCta,
                &dataset,
                &focal,
                k,
                &KsprConfig::with_bound_mode(mode),
            )
        })
        .collect();
    let space = results[0].space;
    for w in naive::sample_weights(&space, 300, 19) {
        let memberships: Vec<bool> = results.iter().map(|r| r.contains(&w)).collect();
        assert!(
            memberships.iter().all(|&m| m == memberships[0]),
            "bound modes disagree at {w:?}: {memberships:?}"
        );
    }
}

#[test]
fn lemma2_and_witness_ablations_produce_the_same_result() {
    let raw = generate(Distribution::Independent, 120, 3, 23);
    let dataset = Dataset::new(raw.clone());
    let focal = focal_for(3);
    let k = 5;
    let configs = [
        KsprConfig::default(),
        KsprConfig {
            use_lemma2: false,
            ..KsprConfig::default()
        },
        KsprConfig {
            use_witness: false,
            ..KsprConfig::default()
        },
    ];
    let results: Vec<_> = configs
        .iter()
        .map(|c| kspr_repro::kspr::run(Algorithm::Pcta, &dataset, &focal, k, c))
        .collect();
    let space = results[0].space;
    for w in naive::sample_weights(&space, 300, 29) {
        let memberships: Vec<bool> = results.iter().map(|r| r.contains(&w)).collect();
        assert!(
            memberships.iter().all(|&m| m == memberships[0]),
            "ablations disagree at {w:?}"
        );
    }
}

#[test]
fn exact_impact_matches_monte_carlo_estimate() {
    let raw = generate(Distribution::AntiCorrelated, 200, 3, 31);
    let dataset = Dataset::new(raw.clone());
    let focal = focal_for(3);
    let k = 10;
    let result = kspr_repro::kspr::run(
        Algorithm::LpCta,
        &dataset,
        &focal,
        k,
        &KsprConfig::default(),
    );
    let exact = result.impact(50_000, 3);
    let sampled = naive::impact_monte_carlo(&raw, &focal, k, &result.space, 10_000, 4);
    assert!(
        (exact - sampled).abs() < 0.03,
        "exact {exact} vs sampled {sampled}"
    );
}

#[test]
fn progressive_methods_do_more_with_less_work_than_cta() {
    let raw = generate(Distribution::Independent, 250, 3, 37);
    let dataset = Dataset::new(raw);
    let focal = focal_for(3);
    let k = 6;
    let config = KsprConfig::default();
    let cta = kspr_repro::kspr::run(Algorithm::Cta, &dataset, &focal, k, &config);
    let pcta = kspr_repro::kspr::run(Algorithm::Pcta, &dataset, &focal, k, &config);
    let lpcta = kspr_repro::kspr::run(Algorithm::LpCta, &dataset, &focal, k, &config);
    assert!(pcta.stats.processed_records <= cta.stats.processed_records);
    assert!(lpcta.stats.processed_records <= cta.stats.processed_records);
    assert!(pcta.stats.celltree_nodes <= cta.stats.celltree_nodes);
}

#[test]
fn disk_mode_reports_io_statistics() {
    use kspr_repro::spatial::IoCostModel;
    let raw = generate(Distribution::Independent, 200, 3, 41);
    let dataset = Dataset::new(raw);
    let focal = focal_for(3);
    let config = KsprConfig {
        io_model: Some(IoCostModel::default()),
        ..KsprConfig::default()
    };
    let result = kspr_repro::kspr::run(Algorithm::LpCta, &dataset, &focal, 5, &config);
    assert!(
        result.stats.io_reads > 0,
        "LP-CTA must touch the data index"
    );
    assert!(result.stats.io_time_ms > 0.0);
}
