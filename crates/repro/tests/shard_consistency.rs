//! Shard consistency: under random datasets and random interleavings of
//! insert / delete / query, the sharded serving engine must return results
//! identical to a single `QueryEngine` over the same live records — same
//! region counts, and the same classification of sampled preference vectors.
//!
//! This exercises the whole serving stack at once: update routing to the
//! owning shard, the per-shard incremental `SharedPrep` maintenance, the
//! epoch-checked merged-candidate cache, and the result-preserving merge
//! itself (union of per-shard k-skybands; the correctness argument lives in
//! the `kspr_serve::sharded` module docs).

use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig, QueryEngine};
use kspr_repro::serve::{ShardStrategy, ShardedEngine};
use proptest::prelude::*;

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// One scripted update: `kind % 2 == 0` inserts `record`, otherwise `pick`
/// selects a live record to delete.
fn op_strategy(d: usize) -> impl Strategy<Value = (u8, Vec<f64>, usize)> {
    (0u8..4, record_strategy(d), 0usize..1 << 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_serving_matches_a_single_engine(
        raw in prop::collection::vec(record_strategy(3), 8..24),
        ops in prop::collection::vec(op_strategy(3), 1..7),
        focal in record_strategy(3),
        k in 1usize..4,
        shards in 2usize..5,
        spatial in 0u8..2,
    ) {
        let config = KsprConfig::default().with_shards(shards);
        let strategy = if spatial == 1 { ShardStrategy::Subtrees } else { ShardStrategy::RoundRobin };
        let mut sharded = ShardedEngine::with_strategy(raw.clone(), config, strategy);
        // Mirror of the store: slot -> live values (None = tombstoned).  The
        // sharded engine hands out the same dense global ids.
        let mut mirror: Vec<Option<Vec<f64>>> = raw.into_iter().map(Some).collect();
        let focals = vec![focal];

        for (kind, values, pick) in ops {
            let live_ids: Vec<usize> = mirror
                .iter()
                .enumerate()
                .filter_map(|(id, v)| v.as_ref().map(|_| id))
                .collect();
            if kind % 2 == 0 || live_ids.len() <= 2 {
                let id = sharded.insert(values.clone());
                prop_assert_eq!(id, mirror.len(), "global ids are dense and never reused");
                mirror.push(Some(values));
            } else {
                let id = live_ids[pick % live_ids.len()];
                prop_assert!(sharded.delete(id));
                prop_assert!(!sharded.delete(id), "double delete must fail");
                mirror[id] = None;
            }

            // A single engine rebuilt over the surviving records is the
            // oracle: the sharded front-end must be indistinguishable.
            let live_raw: Vec<Vec<f64>> = mirror.iter().flatten().cloned().collect();
            let single = QueryEngine::new(&Dataset::new(live_raw), KsprConfig::default());
            for alg in [Algorithm::LpCta, Algorithm::KSkyband] {
                let got = sharded.run_batch(alg, &focals, k);
                let want = single.run_batch(alg, &focals, k);
                let (a, b) = (&got[0], &want[0]);
                prop_assert_eq!(a.num_regions(), b.num_regions(), "{:?}", alg);
                for w in naive::sample_weights(&a.space, 24, 7) {
                    prop_assert_eq!(a.contains(&w), b.contains(&w), "{:?} at {:?}", alg, w);
                }
            }
        }
        prop_assert_eq!(
            sharded.len(),
            mirror.iter().flatten().count(),
            "live counts must track the interleaving"
        );
    }
}
