//! `QueryEngine::run_batch` must be a pure optimization: identical results
//! to per-query `run`, faster wall-clock when cores are available.

use kspr_repro::datagen::{generate, Distribution};
use kspr_repro::kspr::{algorithms, naive, Algorithm, Dataset, KsprConfig, QueryEngine};
use proptest::prelude::*;
use std::time::Instant;

/// Asserts that two results describe the same kSPR answer: same region
/// count, same work statistics, and the same classification of sampled
/// preference vectors.
fn assert_same_result(
    batch: &kspr_repro::kspr::KsprResult,
    alone: &kspr_repro::kspr::KsprResult,
    context: &str,
) {
    assert_eq!(
        batch.num_regions(),
        alone.num_regions(),
        "{context}: region count"
    );
    assert_eq!(
        batch.stats.processed_records, alone.stats.processed_records,
        "{context}: processed records"
    );
    assert_eq!(
        batch.stats.celltree_nodes, alone.stats.celltree_nodes,
        "{context}: CellTree nodes"
    );
    assert_eq!(
        batch.stats.feasibility_tests, alone.stats.feasibility_tests,
        "{context}: feasibility tests"
    );
    for w in naive::sample_weights(&alone.space, 50, 77) {
        assert_eq!(
            batch.contains(&w),
            alone.contains(&w),
            "{context}: classification at {w:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline acceptance property: for random datasets, focal sets and
    /// k, `run_batch` equals a sequential loop of `algorithms::run` for every
    /// CellTree-based algorithm.
    #[test]
    fn run_batch_equals_sequential_run(
        raw in prop::collection::vec(prop::collection::vec(0.05f64..0.95, 3), 20..60),
        focals in prop::collection::vec(prop::collection::vec(0.05f64..0.95, 3), 1..5),
        k in 1usize..5,
    ) {
        let dataset = Dataset::new(raw);
        let config = KsprConfig::default();
        let engine = QueryEngine::new(&dataset, config.clone());
        for alg in [Algorithm::Cta, Algorithm::Pcta, Algorithm::LpCta, Algorithm::KSkyband] {
            let batch = engine.run_batch(alg, &focals, k);
            prop_assert_eq!(batch.len(), focals.len());
            for (focal, from_batch) in focals.iter().zip(&batch) {
                let alone = algorithms::run(alg, &dataset, focal, k, &config);
                assert_same_result(from_batch, &alone, &format!("{alg:?} k={k}"));
            }
        }
    }
}

#[test]
fn run_batch_matches_on_structured_workload() {
    // A larger, deterministic workload where preprocessing paths differ per
    // focal record (dominated, dominating, competitive, tie).
    let raw = generate(Distribution::AntiCorrelated, 400, 3, 7);
    let dataset = Dataset::new(raw.clone());
    let config = KsprConfig::default();
    let engine = QueryEngine::new(&dataset, config.clone());
    let mut focals: Vec<Vec<f64>> = vec![
        vec![0.99, 0.99, 0.99], // dominates everything
        vec![0.01, 0.01, 0.01], // dominated by everything
        raw[0].clone(),         // exact tie with a dataset record
    ];
    for i in 0..6 {
        focals.push((0..3).map(|j| 0.55 + 0.05 * ((i + j) % 4) as f64).collect());
    }
    let k = 8;
    for alg in [Algorithm::Pcta, Algorithm::LpCta, Algorithm::KSkyband] {
        let batch = engine.run_batch(alg, &focals, k);
        for (focal, from_batch) in focals.iter().zip(&batch) {
            let alone = engine.run(alg, focal, k);
            assert_same_result(from_batch, &alone, &format!("{alg:?}"));
        }
    }
}

/// Acceptance criterion: on a machine with at least 4 cores, batch mode must
/// beat the sequential loop by more than 1.5x on a CPU-bound workload.
/// Skipped (with a note) on smaller machines, where the parallel speedup
/// cannot exist; the result-equality properties above run everywhere.
#[test]
fn run_batch_speedup_on_multicore() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
        return;
    }

    let raw = generate(Distribution::Independent, 2_000, 4, 21);
    let dataset = Dataset::new(raw);
    let config = KsprConfig::default();
    let engine = QueryEngine::new(&dataset, config.clone());
    // Competitive focal records so every query does real CellTree work.
    let focals: Vec<Vec<f64>> = (0..16)
        .map(|i| (0..4).map(|j| 0.62 + 0.04 * ((i + j) % 5) as f64).collect())
        .collect();
    let k = 10;

    // Warm-up (page faults, allocator) outside the timed sections.
    let _ = engine.run(Algorithm::LpCta, &focals[0], k);

    // Shared CI runners are noisy; take the best of three rounds so a single
    // scheduling hiccup cannot fail the build.  With 16 queries on >= 4 cores
    // the ideal speedup is ~4x, so the 1.5x bar leaves ample margin.
    let mut best_speedup = 0.0f64;
    for round in 0..3 {
        let start = Instant::now();
        let sequential: Vec<_> = focals
            .iter()
            .map(|f| engine.run(Algorithm::LpCta, f, k))
            .collect();
        let sequential_time = start.elapsed();

        let start = Instant::now();
        let batch = engine.run_batch(Algorithm::LpCta, &focals, k);
        let batch_time = start.elapsed();

        for (from_batch, alone) in batch.iter().zip(&sequential) {
            assert_same_result(from_batch, alone, "speedup workload");
        }

        let speedup = sequential_time.as_secs_f64() / batch_time.as_secs_f64().max(1e-9);
        eprintln!(
            "round {round}: batch speedup on {cores} cores: {speedup:.2}x \
             (sequential {sequential_time:?}, batch {batch_time:?})"
        );
        best_speedup = best_speedup.max(speedup);
        if best_speedup > 1.5 {
            break;
        }
    }
    assert!(
        best_speedup > 1.5,
        "expected > 1.5x speedup on {cores} cores, got {best_speedup:.2}x (best of 3)"
    );
}
