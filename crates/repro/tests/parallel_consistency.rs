//! Intra-query parallelism correctness: work-stealing CellTree expansion is
//! specified to be **bit-for-bit identical** to sequential expansion — the
//! worker pool only reorders the read-only classify phase of each insertion,
//! while the apply phase replays the recorded decisions in the sequential
//! DFS order.  These tests drive that claim end to end: engines configured
//! with 1, 2 and 4 intra-query workers receive identical random datasets and
//! random insert/delete interleavings, and after every update every CTA and
//! P-CTA query must agree on region counts, rank signatures, the sampled
//! region geometry and the stats-visible work (everything except the
//! `parallel_inserts` scheduling counter, which exists to differ).
//!
//! LP-CTA is the deliberate exception: its look-ahead bound reports depend
//! on the expansion schedule, so the engine always routes it sequentially —
//! asserted below by its scheduling counter staying at zero even on an
//! engine granted 4 workers.

use kspr_repro::kspr::{naive, Algorithm, Dataset, KsprConfig, KsprResult, QueryEngine};
use proptest::prelude::*;

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// One scripted update: `kind % 2 == 0` inserts `record`, otherwise `pick`
/// selects a live record to delete.
fn op_strategy(d: usize) -> impl Strategy<Value = (u8, Vec<f64>, usize)> {
    (0u8..4, record_strategy(d), 0usize..1 << 16)
}

/// Bit-identity check: regions, ranks, sampled geometry and all stats except
/// the `parallel_inserts` scheduling counter.
fn assert_bit_identical(got: &KsprResult, want: &KsprResult, ctx: &str) {
    assert_eq!(got.num_regions(), want.num_regions(), "regions: {ctx}");
    assert_eq!(got.rank_signature(), want.rank_signature(), "ranks: {ctx}");
    let mut a = got.stats.clone();
    let mut b = want.stats.clone();
    a.parallel_inserts = 0;
    b.parallel_inserts = 0;
    a.wall_time_ns = 0;
    b.wall_time_ns = 0;
    assert_eq!(a, b, "stats-visible work: {ctx}");
    for w in naive::sample_weights(&got.space, 24, 0xB17) {
        assert_eq!(got.contains(&w), want.contains(&w), "{ctx} at {w:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn parallel_expansion_is_bit_identical_under_updates(
        raw in prop::collection::vec(record_strategy(3), 8..24),
        ops in prop::collection::vec(op_strategy(3), 1..6),
        focal in record_strategy(3),
        k in 1usize..5,
    ) {
        // One engine per worker count; index 0 (1 worker) is the oracle.
        let mut engines: Vec<(usize, QueryEngine)> = [1usize, 2, 4]
            .iter()
            .map(|&workers| {
                (
                    workers,
                    QueryEngine::new(
                        &Dataset::new(raw.clone()),
                        KsprConfig::default().with_intra_query_threads(workers),
                    ),
                )
            })
            .collect();
        let mut live: Vec<usize> = (0..raw.len()).collect();
        let mut next_id = raw.len();

        let compare = |engines: &[(usize, QueryEngine)], focal: &[f64], ctx: &str| {
            for alg in [Algorithm::Cta, Algorithm::Pcta] {
                let want = engines[0].1.run(alg, focal, k);
                for (workers, engine) in &engines[1..] {
                    let got = engine.run(alg, focal, k);
                    assert_bit_identical(
                        &got,
                        &want,
                        &format!("{alg:?} k={k} workers={workers} {ctx}"),
                    );
                }
            }
        };

        compare(&engines, &focal, "before updates");
        for (step, (kind, values, pick)) in ops.into_iter().enumerate() {
            if kind % 2 == 0 || live.len() <= 2 {
                for (_, engine) in &mut engines {
                    let id = engine.insert(values.clone());
                    prop_assert_eq!(id, next_id, "id sequences must stay in lockstep");
                }
                live.push(next_id);
                next_id += 1;
            } else {
                let slot = pick % live.len();
                let id = live.swap_remove(slot);
                for (_, engine) in &mut engines {
                    prop_assert!(engine.delete(id));
                }
            }
            compare(&engines, &focal, &format!("after update {step}"));
        }
    }
}

/// LP-CTA's look-ahead bound reports are expansion-order-sensitive, so the
/// engine must route it sequentially no matter how many intra-query workers
/// the config grants — while a parallel-eligible policy on the *same engine*
/// does engage the pool (proving the grant itself was live).
#[test]
fn lp_cta_always_routes_sequentially() {
    let raw =
        kspr_repro::datagen::generate(kspr_repro::datagen::Distribution::Independent, 1_500, 4, 66);
    let k = 10;
    // A competitive focal record (a handful of dominators): its CellTree is
    // large enough to cross the engine's parallel-insertion threshold.
    let focal = raw
        .iter()
        .find(|r| {
            let dominators = raw
                .iter()
                .filter(|o| kspr_repro::spatial::dominates(o, r))
                .count();
            (1..=k / 2).contains(&dominators)
        })
        .expect("the workload contains a competitive record")
        .clone();
    let engine = QueryEngine::new(
        &Dataset::new(raw),
        KsprConfig::default().with_intra_query_threads(4),
    );

    let pcta = engine.run(Algorithm::Pcta, &focal, k);
    assert!(
        pcta.stats.parallel_inserts > 0,
        "P-CTA on the 4-worker engine must engage the parallel insertion path"
    );
    let lpcta = engine.run(Algorithm::LpCta, &focal, k);
    assert_eq!(
        lpcta.stats.parallel_inserts, 0,
        "LP-CTA must never take the parallel insertion path"
    );
}
