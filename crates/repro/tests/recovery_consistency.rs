//! Crash-recovery consistency: a durable directory whose WAL is cut at an
//! arbitrary record boundary (optionally followed by a torn garbage tail)
//! must recover to exactly the state of a server that never crashed and
//! only ever saw the committed prefix of the history.
//!
//! The proptest plays the dispatcher's role by hand: it applies a random
//! interleaving of inserts, deletes, standing-query registrations, and
//! unregistrations to a scratch engine while logging each operation as one
//! committed WAL record (recording the file offset after every commit —
//! the record boundaries a real crash can land on).  It then truncates the
//! WAL to a random boundary and asks [`Server::recover`] to rebuild.  The
//! recovered server must match a **twin** built by replaying only the
//! surviving prefix of operations onto a fresh engine: identical slot
//! tables, epochs, and routing cursor (compared through the snapshot
//! encoding — the bit-identical guarantee), identical query answers,
//! identical standing-query registries, and the same next registration id.

use kspr_repro::durable::{DurableStore, SnapshotState, WalRecord};
use kspr_repro::kspr::{Algorithm, KsprConfig};
use kspr_repro::monitor::Monitor;
use kspr_repro::serve::{ServeOptions, Server, ShardedEngine};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Strategy: a record with `d` attributes in (0, 1).
fn record_strategy(d: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..0.99, d)
}

/// One scripted operation: `kind` selects insert / delete / subscribe /
/// unsubscribe, `values` doubles as the inserted record or the standing
/// focal point, `pick` selects the delete / unsubscribe victim.
fn op_strategy(d: usize) -> impl Strategy<Value = (u8, Vec<f64>, usize)> {
    (0u8..6, record_strategy(d), 0usize..1 << 16)
}

/// What one generated operation resolved to (so the prefix twin can replay
/// exactly the same decisions).
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<f64>),
    Delete(usize),
    Subscribe(Vec<f64>, usize),
    Unsubscribe(u64),
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "kspr-recovery-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The engine's durable identity with the registry erased: compared between
/// the recovered engine and the never-crashed twin.
fn engine_snapshot(engine: &ShardedEngine) -> SnapshotState {
    SnapshotState {
        dim: engine.dim(),
        num_shards: engine.num_shards(),
        next_shard: engine.routing_cursor(),
        shard_epochs: engine.export_epochs(),
        slots: engine.export_slots(),
        monitor_next_id: 0,
        registrations: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn recovery_from_a_cut_wal_equals_the_never_crashed_twin(
        raw in prop::collection::vec(record_strategy(2), 4..12),
        ops in prop::collection::vec(op_strategy(2), 1..10),
        cut_raw in 0usize..1 << 16,
        garbage in 0u8..2,
        shards in 2usize..4,
        focal in record_strategy(2),
        k in 1usize..3,
    ) {
        let config = KsprConfig::default().with_shards(shards);
        let dir = unique_dir("prop");
        let store = DurableStore::open(&dir).unwrap();

        // ---- Generate a logged history, playing the dispatcher's role ----
        let mut full = ShardedEngine::new(raw.clone(), config.clone());
        let mut full_monitor = Monitor::new();
        store.install_snapshot(&engine_snapshot(&full)).unwrap();
        let mut writer = store.wal_writer(false).unwrap();
        let mut live: Vec<usize> = (0..raw.len()).collect();
        let mut standing: BTreeSet<u64> = BTreeSet::new();
        let mut script: Vec<Op> = Vec::new();
        // `boundaries[i]` = WAL length after the first `i` records: the
        // offsets a crash mid-append can leave behind (modulo a torn tail,
        // which `garbage` simulates separately).
        let mut boundaries: Vec<u64> = vec![0];
        for (kind, values, pick) in ops {
            let op = match kind {
                0 | 1 => Op::Insert(values),
                2 if live.len() > 2 => Op::Delete(live[pick % live.len()]),
                2 => Op::Insert(values),
                5 if !standing.is_empty() => {
                    let ids: Vec<u64> = standing.iter().copied().collect();
                    Op::Unsubscribe(ids[pick % ids.len()])
                }
                _ => Op::Subscribe(values, pick % 3 + 1),
            };
            match &op {
                Op::Insert(values) => {
                    let id = full.insert(values.clone());
                    live.push(id);
                    writer.append(&WalRecord::Insert { id, values: values.clone() });
                }
                Op::Delete(id) => {
                    prop_assert!(full.delete(*id));
                    live.retain(|l| l != id);
                    writer.append(&WalRecord::Delete { id: *id });
                }
                Op::Subscribe(focal, k) => {
                    let id = full_monitor
                        .register(&full, Algorithm::LpCta, focal.clone(), *k)
                        .unwrap();
                    standing.insert(id);
                    writer.append(&WalRecord::Subscribe {
                        id,
                        algorithm: Algorithm::LpCta,
                        focal: focal.clone(),
                        k: *k,
                    });
                }
                Op::Unsubscribe(id) => {
                    prop_assert!(full_monitor.unregister(*id));
                    standing.remove(id);
                    writer.append(&WalRecord::Unsubscribe { id: *id });
                }
            }
            writer.commit().unwrap();
            boundaries.push(std::fs::metadata(store.wal_path()).unwrap().len());
            script.push(op);
        }
        drop(writer);

        // ---- Crash: cut the WAL at a random record boundary ----
        let cut = cut_raw % boundaries.len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(store.wal_path())
            .unwrap();
        file.set_len(boundaries[cut]).unwrap();
        file.sync_all().unwrap();
        drop(file);
        if garbage == 1 {
            // A torn tail: a frame header whose payload never made it.
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .append(true)
                .open(store.wal_path())
                .unwrap();
            file.write_all(&[16, 0, 0, 0, 0xAA, 0xBB]).unwrap();
            file.sync_all().unwrap();
        }

        // ---- The never-crashed twin: only the surviving prefix happened ----
        let mut twin = ShardedEngine::new(raw, config.clone());
        let mut twin_monitor = Monitor::new();
        for op in &script[..cut] {
            match op {
                Op::Insert(values) => {
                    twin.insert(values.clone());
                }
                Op::Delete(id) => prop_assert!(twin.delete(*id)),
                Op::Subscribe(focal, k) => {
                    twin_monitor
                        .register(&twin, Algorithm::LpCta, focal.clone(), *k)
                        .unwrap();
                }
                Op::Unsubscribe(id) => prop_assert!(twin_monitor.unregister(*id)),
            }
        }

        // ---- Recover and compare ----
        let server = Server::recover(&dir, config, ServeOptions::default())
            .expect("a boundary-cut WAL must recover");
        let handle = server.handle();

        // Registry: same standing queries, and the id counter resumes where
        // the surviving history left it.
        prop_assert_eq!(handle.subscriptions().wait(), Ok(twin_monitor.len()));
        let fresh = handle
            .subscribe(focal.clone(), k)
            .wait()
            .expect("a fresh standing query registers on the recovered server");
        let twin_fresh = twin_monitor
            .register(&twin, Algorithm::LpCta, focal.clone(), k)
            .unwrap();
        prop_assert_eq!(fresh.id(), twin_fresh, "next registration id survives recovery");
        prop_assert_eq!(
            fresh.initial().rank_signature(),
            twin_monitor.result(twin_fresh).unwrap().rank_signature(),
            "the recovered dataset answers standing registrations identically"
        );
        drop(fresh);

        // Queries: the recovered server answers like the twin engine.
        let served = handle.submit(focal.clone(), k).wait().expect("recovered query");
        let direct = twin.run_batch(Algorithm::LpCta, &[focal], k);
        prop_assert_eq!(served.num_regions(), direct[0].num_regions());
        prop_assert_eq!(served.rank_signature(), direct[0].rank_signature());

        // Engine state: bit-identical through the snapshot encoding.
        let (engine, _) = server.shutdown();
        prop_assert_eq!(
            engine_snapshot(&engine).encode(),
            engine_snapshot(&twin).encode(),
            "slots, epochs, and routing cursor must match the twin exactly"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// End-to-end durability through the real dispatcher: a durable server's
/// acknowledged history recovers across a clean shutdown *and* across a
/// simulated crash that discards the final snapshot.
#[test]
fn a_durable_server_round_trips_across_shutdown() {
    let dir = unique_dir("roundtrip");
    let config = KsprConfig::default().with_shards(2);
    let server = Server::start_durable(
        ShardedEngine::empty(2, config.clone()),
        ServeOptions::default(),
        &dir,
    )
    .expect("open durable server");
    let handle = server.handle();
    let a = handle.insert(vec![0.3, 0.8]).wait().unwrap();
    let b = handle.insert(vec![0.8, 0.3]).wait().unwrap();
    handle.insert(vec![0.6, 0.6]).wait().unwrap();
    assert_eq!(handle.delete(b).wait(), Ok(true));
    let sub = handle.subscribe(vec![0.5, 0.5], 1).wait().unwrap();
    std::mem::forget(sub); // keep it registered across the shutdown
    let (engine, stats) = server.shutdown();
    assert_eq!(engine.len(), 2);
    assert!(stats.wal_commits >= 4, "every applied update batch commits");
    assert!(stats.snapshots >= 1, "clean shutdown installs a snapshot");

    let recovered = Server::recover(&dir, config.clone(), ServeOptions::default())
        .expect("recover after clean shutdown");
    let handle = recovered.handle();
    assert_eq!(handle.subscriptions().wait(), Ok(1));
    assert_eq!(handle.delete(a).wait(), Ok(true), "recovered ids stay live");
    assert_eq!(handle.delete(b).wait(), Ok(false), "deleted ids stay dead");
    let (engine, _) = recovered.shutdown();
    assert_eq!(engine.len(), 1);

    // Crash simulation: throw the snapshot's WAL truncation away by
    // deleting the snapshot -> recovery must refuse (the WAL alone cannot
    // rebuild), not serve a wrong state.
    std::fs::remove_file(dir.join("state.snap")).unwrap();
    assert!(
        Server::recover(&dir, config, ServeOptions::default()).is_err(),
        "recovery without a snapshot must be refused, not improvised"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
