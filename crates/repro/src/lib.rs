//! Umbrella crate for the kSPR reproduction workspace.
//!
//! This crate re-exports the public API of the member crates so that the
//! examples under `examples/` and the integration tests under `tests/` can use
//! a single dependency. Library users should normally depend on the
//! individual crates (`kspr`, `kspr-spatial`, `kspr-datagen`, ...) directly.

pub use kspr;
pub use kspr_approx as approx;
pub use kspr_datagen as datagen;
pub use kspr_durable as durable;
pub use kspr_geometry as geometry;
pub use kspr_lp as lp;
pub use kspr_monitor as monitor;
pub use kspr_serve as serve;
pub use kspr_spatial as spatial;
