//! The tracing acceptance run: a client-supplied trace id rides a real TCP
//! loopback into a durable [`NetServer`], is echoed in the response, and
//! yields a retrievable span tree covering the whole pipeline — the wire
//! decode, every dispatcher stage, and the engine's phase breakdown — which
//! the `/trace` HTTP endpoint then serves as well-formed Chrome Trace
//! Event Format JSON.

use kspr::{Algorithm, KsprConfig};
use kspr_serve::{NetServer, ServeOptions, Server, ShardedEngine, TraceId, TraceRecord};
use kspr_telemetry::parse_json;
use kspr_wire::{
    read_frame, write_frame, WireClient, WireRequest, WireResponse, LEGACY_WIRE_VERSION,
};
use std::io::{Read, Write};
use std::net::TcpStream;

fn demo_engine() -> ShardedEngine {
    ShardedEngine::new(
        vec![
            vec![0.3, 0.8, 0.8],
            vec![0.9, 0.4, 0.4],
            vec![0.8, 0.3, 0.4],
            vec![0.4, 0.3, 0.6],
        ],
        KsprConfig::default().with_shards(2),
    )
}

/// Asserts `child` exists in `record` and sits under the span named
/// `parent`, returning it for further nesting checks.
fn assert_child<'a>(
    record: &'a TraceRecord,
    parent: &str,
    child: &str,
) -> &'a kspr_telemetry::Span {
    let parent_span = record
        .find(parent)
        .unwrap_or_else(|| panic!("span tree must contain `{parent}`"));
    let child_span = record
        .find(child)
        .unwrap_or_else(|| panic!("span tree must contain `{child}`"));
    assert_eq!(
        child_span.parent,
        Some(parent_span.id),
        "`{child}` must be a child of `{parent}`"
    );
    child_span
}

#[test]
fn client_trace_ids_round_trip_into_retrievable_span_trees() {
    let dir = std::env::temp_dir().join(format!("kspr-trace-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Durable, so the update path exercises the WAL-commit span; no slow
    // threshold, so only the *pinned* (client-traced) requests are retained.
    let server = Server::start_durable(demo_engine(), ServeOptions::default(), &dir)
        .expect("durable server");
    let handle = server.handle();
    let net = NetServer::bind(server.handle(), "127.0.0.1:0").expect("bind loopback");
    let stream = TcpStream::connect(net.local_addr()).expect("loopback connect");
    let mut client = WireClient::new(stream);

    // --- a traced query ---------------------------------------------------
    let query = WireRequest::Query {
        algorithm: Algorithm::LpCta,
        focal: vec![0.5, 0.5, 0.7],
        k: 2,
    };
    let (response, echo) = client
        .call_traced(&query, Some(0xFEED))
        .expect("traced call");
    assert!(matches!(response, WireResponse::Result(_)));
    assert_eq!(echo, Some(0xFEED), "the trace id must be echoed back");

    let record = handle
        .trace(TraceId(0xFEED))
        .expect("a pinned trace must be retained by the flight recorder");
    assert!(
        record.is_well_formed(),
        "span ids/parents/windows must nest"
    );
    assert_eq!(record.root().name, "request");

    // The pipeline stages, each a child of the root request span.
    for stage in ["wire", "queue", "admission", "batch", "engine", "ack"] {
        assert_child(&record, "request", stage);
    }
    // The engine's phase breakdown: prep (with its dominance classification)
    // then CellTree expansion (with its LP solves).
    assert_child(&record, "engine", "prep");
    assert_child(&record, "prep", "dominance");
    assert_child(&record, "engine", "expansion");
    assert_child(&record, "expansion", "lp");

    // --- a traced durable update ------------------------------------------
    let insert = WireRequest::Insert {
        values: vec![0.7, 0.7, 0.7],
    };
    let (response, echo) = client
        .call_traced(&insert, Some(0xBEEF))
        .expect("traced insert");
    assert!(matches!(response, WireResponse::Inserted { .. }));
    assert_eq!(echo, Some(0xBEEF));
    let update = handle.trace(TraceId(0xBEEF)).expect("pinned update trace");
    assert!(update.is_well_formed());
    for stage in ["wire", "queue", "engine", "wal_commit", "ack"] {
        assert_child(&update, "request", stage);
    }

    // --- untraced requests stay untraced ----------------------------------
    let (response, echo) = client.call_traced(&query, None).expect("untraced call");
    assert!(matches!(response, WireResponse::Result(_)));
    assert_eq!(echo, None, "no client id means nothing to echo");
    assert_eq!(
        handle.traces().len(),
        2,
        "without a slow threshold only the two pinned traces are retained"
    );

    // --- a legacy (v1) client gets a legacy response ----------------------
    let mut legacy = TcpStream::connect(net.local_addr()).expect("legacy connect");
    write_frame(&mut legacy, &query.encode_legacy()).expect("send legacy frame");
    let payload = read_frame(&mut legacy).expect("legacy response frame");
    assert_eq!(
        payload.first(),
        Some(&LEGACY_WIRE_VERSION),
        "a v1 request must be answered with a v1 frame"
    );
    assert!(matches!(
        WireResponse::decode(&payload),
        Some(WireResponse::Result(_))
    ));
    drop(legacy);

    // --- the /trace endpoint on the scrape port ---------------------------
    let mut scrape = TcpStream::connect(net.local_addr()).expect("trace connect");
    scrape
        .write_all(b"GET /trace HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send trace request");
    let mut text = String::new();
    scrape.read_to_string(&mut text).expect("read trace");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
    assert!(text.contains("Content-Type: application/json"));
    let body = text
        .split("\r\n\r\n")
        .nth(1)
        .expect("an HTTP body after the headers");
    let json = parse_json(body).expect("/trace must serve valid JSON");
    assert_eq!(
        json.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );
    let events = json
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("a traceEvents array");
    assert!(!events.is_empty(), "both pinned traces must be exported");
    let named = |name: &str| {
        events.iter().any(|event| {
            event.get("name").and_then(|v| v.as_str()) == Some(name)
                && event.get("ph").and_then(|v| v.as_str()) == Some("X")
        })
    };
    for name in ["request", "wire", "engine", "prep", "lp", "wal_commit"] {
        assert!(named(name), "/trace must export an `{name}` slice");
    }

    // The Prometheus exposition still answers on every other path.
    let mut metrics = TcpStream::connect(net.local_addr()).expect("metrics connect");
    metrics
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send metrics request");
    let mut text = String::new();
    metrics.read_to_string(&mut text).expect("read metrics");
    assert!(text.contains("Content-Type: text/plain"));
    assert!(text.contains("kspr_phase_prep_ns_count"));
    assert!(text.contains("# HELP kspr_queries"));

    net.stop();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
