//! Loopback round-trips through the full layered stack: a real TCP
//! connection speaking the `kspr-wire` protocol against a [`NetServer`]
//! front-end, exercising queries, updates, standing queries, stats, and
//! protocol errors end to end.

use kspr::{Algorithm, KsprConfig};
use kspr_serve::{NetServer, ServeOptions, Server, ShardedEngine};
use kspr_wire::{read_frame, write_frame, ErrorCode, TierSpec, WireRequest, WireResponse};
use std::io::BufReader;
use std::net::TcpStream;

fn demo_engine() -> ShardedEngine {
    ShardedEngine::new(
        vec![
            vec![0.3, 0.8, 0.8],
            vec![0.9, 0.4, 0.4],
            vec![0.8, 0.3, 0.4],
            vec![0.4, 0.3, 0.6],
        ],
        KsprConfig::default().with_shards(2),
    )
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &NetServer) -> Self {
        let writer = TcpStream::connect(server.local_addr()).expect("loopback connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Self { reader, writer }
    }

    fn call(&mut self, request: WireRequest) -> WireResponse {
        write_frame(&mut self.writer, &request.encode()).expect("send frame");
        let payload = read_frame(&mut self.reader).expect("receive frame");
        WireResponse::decode(&payload).expect("decode response")
    }
}

#[test]
fn a_connection_round_trips_the_whole_protocol() {
    let server = Server::start(demo_engine(), ServeOptions::default());
    let net = NetServer::bind(server.handle(), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(&net);

    assert_eq!(client.call(WireRequest::Ping), WireResponse::Pong);

    // An exact query over the wire equals a direct engine call.
    let focal = vec![0.5, 0.5, 0.7];
    let direct = demo_engine().run_batch(Algorithm::LpCta, std::slice::from_ref(&focal), 2);
    let response = client.call(WireRequest::Query {
        algorithm: Algorithm::LpCta,
        focal: focal.clone(),
        k: 2,
    });
    let WireResponse::Result(summary) = response else {
        panic!("expected a result summary, got {response:?}");
    };
    assert_eq!(summary.num_regions as usize, direct[0].num_regions());
    assert_eq!(
        summary.rank_signature,
        direct[0]
            .rank_signature()
            .into_iter()
            .map(|r| r as u64)
            .collect::<Vec<u64>>()
    );

    // Updates apply and serialize with the requests around them.
    let response = client.call(WireRequest::Insert {
        values: vec![0.7, 0.7, 0.7],
    });
    let WireResponse::Inserted { id } = response else {
        panic!("expected an insert ack, got {response:?}");
    };
    assert_eq!(id, 4, "global ids are dense");
    assert_eq!(
        client.call(WireRequest::Delete { id }),
        WireResponse::Deleted { removed: true }
    );
    assert_eq!(
        client.call(WireRequest::Delete { id }),
        WireResponse::Deleted { removed: false },
        "double delete reports the record as gone"
    );

    // Standing queries: subscribe, see an update's delta, unsubscribe.
    let response = client.call(WireRequest::Subscribe {
        algorithm: Algorithm::LpCta,
        focal: vec![0.5, 0.5, 0.7],
        k: 1,
    });
    let WireResponse::Subscribed { token, initial } = response else {
        panic!("expected a subscription, got {response:?}");
    };
    let response = client.call(WireRequest::Insert {
        values: vec![0.95, 0.95, 0.95],
    });
    assert!(matches!(response, WireResponse::Inserted { .. }));
    // Serialize behind the update's maintenance pass before polling: a
    // request answered by the dispatcher guarantees every notification for
    // the acknowledged insert has been pushed.
    assert_eq!(
        client.call(WireRequest::Subscriptions),
        WireResponse::Count { value: 1 }
    );
    let response = client.call(WireRequest::PollDeltas { token });
    let WireResponse::Deltas { summaries, closed } = response else {
        panic!("expected deltas, got {response:?}");
    };
    assert!(!closed);
    assert_eq!(summaries.len(), 1, "the dominator insert must notify");
    assert!(
        summaries[0].num_regions < initial.num_regions,
        "a dominator shrinks the standing top-1 result"
    );
    assert_eq!(
        client.call(WireRequest::Unsubscribe { token }),
        WireResponse::Unsubscribed { removed: true }
    );
    assert_eq!(
        client.call(WireRequest::Subscriptions),
        WireResponse::Count { value: 0 }
    );
    let response = client.call(WireRequest::Unsubscribe { token });
    let WireResponse::Error { code, .. } = response else {
        panic!("expected an unknown-token error, got {response:?}");
    };
    assert_eq!(code, ErrorCode::UnknownToken);

    // The approximate tier crosses the wire as an estimate summary.
    let response = client.call(WireRequest::Tiered {
        algorithm: Algorithm::LpCta,
        focal: vec![0.5, 0.5, 0.7],
        k: 2,
        tier: TierSpec::Approximate {
            epsilon: 0.1,
            confidence: 0.9,
        },
    });
    let WireResponse::Approx(estimate) = response else {
        panic!("expected an approximate summary, got {response:?}");
    };
    assert!(estimate.half_width <= 0.1 + 1e-12);
    assert!((0.0..=1.0).contains(&estimate.impact));

    // Invalid requests come back as typed errors, not closed connections.
    let response = client.call(WireRequest::Query {
        algorithm: Algorithm::LpCta,
        focal: vec![0.5, 0.5, 0.7],
        k: 0,
    });
    let WireResponse::Error { code, .. } = response else {
        panic!("expected an invalid-request error, got {response:?}");
    };
    assert_eq!(code, ErrorCode::Invalid);
    assert_eq!(client.call(WireRequest::Ping), WireResponse::Pong);

    // The serving counters are visible over the wire.
    let response = client.call(WireRequest::Stats);
    let WireResponse::Stats { fields } = response else {
        panic!("expected stats, got {response:?}");
    };
    let get = |name: &str| {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing stats field {name}"))
            .1
    };
    assert_eq!(
        get("queries"),
        2,
        "the exact and the tiered query; the k=0 reject never ran"
    );
    assert_eq!(get("updates"), 4, "three applied + one no-op delete");
    assert_eq!(get("subscriptions"), 1);
    assert_eq!(get("rejected"), 1);

    drop(client);
    net.stop();
    let (engine, _) = server.shutdown();
    assert_eq!(engine.len(), 5);
}

#[test]
fn a_malformed_payload_is_reported_then_the_connection_closes() {
    let server = Server::start(demo_engine(), ServeOptions::default());
    let net = NetServer::bind(server.handle(), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(&net);

    // A well-framed but undecodable payload: the server answers with a
    // protocol error (the stream is still frame-aligned, but the server
    // cannot trust the peer).
    write_frame(&mut client.writer, &[0xFF, 0xFF, 0xFF]).expect("send junk");
    let payload = read_frame(&mut client.reader).expect("receive error frame");
    let response = WireResponse::decode(&payload).expect("decode error response");
    let WireResponse::Error { code, .. } = response else {
        panic!("expected a malformed-payload error, got {response:?}");
    };
    assert_eq!(code, ErrorCode::Malformed);

    drop(client);
    net.stop();
    server.shutdown();
}

#[test]
fn dropping_a_connection_unregisters_its_standing_queries() {
    let server = Server::start(demo_engine(), ServeOptions::default());
    let handle = server.handle();
    let net = NetServer::bind(server.handle(), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(&net);
    let response = client.call(WireRequest::Subscribe {
        algorithm: Algorithm::LpCta,
        focal: vec![0.5, 0.5, 0.7],
        k: 2,
    });
    assert!(matches!(response, WireResponse::Subscribed { .. }));
    assert_eq!(handle.subscriptions().wait(), Ok(1));

    drop(client); // hang up without unsubscribing
                  // The connection thread notices EOF and drops its subscription map;
                  // the drop glue unregisters asynchronously.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if handle.subscriptions().wait() == Ok(0) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "the dropped connection's standing query was never unregistered"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    net.stop();
    server.shutdown();
}
