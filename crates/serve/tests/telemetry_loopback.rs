//! The observability acceptance run: a real TCP loopback against a durable
//! [`NetServer`], a mixed workload (exact / tiered / auto queries, updates,
//! a standing query, a rejection), then the full telemetry read-back —
//! the `Metrics` opcode, the Prometheus text scrape, the non-blocking
//! stats mirror, and the slow-query log — with every pipeline-stage
//! histogram asserted live and consistent with the delivered answers.

use kspr::{Algorithm, KsprConfig};
use kspr_serve::{NetServer, ServeOptions, Server, ShardedEngine, Stage};
use kspr_wire::{read_frame, write_frame, MetricsReport, TierSpec, WireRequest, WireResponse};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn demo_engine() -> ShardedEngine {
    ShardedEngine::new(
        vec![
            vec![0.3, 0.8, 0.8],
            vec![0.9, 0.4, 0.4],
            vec![0.8, 0.3, 0.4],
            vec![0.4, 0.3, 0.6],
        ],
        KsprConfig::default().with_shards(2),
    )
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &NetServer) -> Self {
        let writer = TcpStream::connect(server.local_addr()).expect("loopback connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Self { reader, writer }
    }

    fn call(&mut self, request: WireRequest) -> WireResponse {
        write_frame(&mut self.writer, &request.encode()).expect("send frame");
        let payload = read_frame(&mut self.reader).expect("receive frame");
        WireResponse::decode(&payload).expect("decode response")
    }
}

/// One histogram summary out of a wire report, by registry name.
fn summary<'a>(report: &'a MetricsReport, name: &str) -> &'a kspr_wire::HistogramSummary {
    report
        .histograms
        .iter()
        .find(|h| h.name == name)
        .unwrap_or_else(|| panic!("missing histogram {name}"))
}

fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing counter {name}"))
        .1
}

#[test]
fn every_pipeline_stage_is_measured_and_served_live() {
    let dir = std::env::temp_dir().join(format!("kspr-telemetry-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = ServeOptions {
        // Threshold zero: every answered query lands in the slow-query log.
        slow_query_threshold: Some(Duration::ZERO),
        ..ServeOptions::default()
    };
    // Durable, so the WAL-commit stage is actually on the request path.
    let server = Server::start_durable(demo_engine(), options, &dir).expect("durable server");
    let handle = server.handle();
    let net = NetServer::bind(server.handle(), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(&net);

    // --- the mixed workload ------------------------------------------------
    // A standing query, so update maintenance has real work to notify.
    let response = client.call(WireRequest::Subscribe {
        algorithm: Algorithm::LpCta,
        focal: vec![0.5, 0.5, 0.7],
        k: 1,
    });
    assert!(matches!(response, WireResponse::Subscribed { .. }));

    // Updates: two inserts (the dominator changes the standing result) and
    // one delete, each WAL-committed before its ack.
    let WireResponse::Inserted { id } = client.call(WireRequest::Insert {
        values: vec![0.95, 0.95, 0.95],
    }) else {
        panic!("expected an insert ack");
    };
    assert!(matches!(
        client.call(WireRequest::Insert {
            values: vec![0.2, 0.6, 0.5],
        }),
        WireResponse::Inserted { .. }
    ));
    assert_eq!(
        client.call(WireRequest::Delete { id }),
        WireResponse::Deleted { removed: true }
    );

    // Queries across all three tier classes.
    assert!(matches!(
        client.call(WireRequest::Query {
            algorithm: Algorithm::LpCta,
            focal: vec![0.5, 0.5, 0.7],
            k: 2,
        }),
        WireResponse::Result(_)
    ));
    assert!(matches!(
        client.call(WireRequest::Tiered {
            algorithm: Algorithm::LpCta,
            focal: vec![0.5, 0.5, 0.7],
            k: 2,
            tier: TierSpec::Approximate {
                epsilon: 0.1,
                confidence: 0.9,
            },
        }),
        WireResponse::Approx(_)
    ));
    assert!(matches!(
        client.call(WireRequest::Tiered {
            algorithm: Algorithm::LpCta,
            focal: vec![0.5, 0.5, 0.7],
            k: 2,
            tier: TierSpec::Auto {
                epsilon: 0.1,
                confidence: 0.9,
                // Every finite cost estimate routes exact below this.
                cost_threshold: 1e18,
            },
        }),
        WireResponse::Result(_)
    ));
    // One rejection, so the per-variant counters are live too.
    assert!(matches!(
        client.call(WireRequest::Query {
            algorithm: Algorithm::LpCta,
            focal: vec![0.5, 0.5, 0.7],
            k: 0,
        }),
        WireResponse::Error { .. }
    ));

    // Serialize behind the dispatcher: once this count comes back, every
    // maintenance pass for the acknowledged updates has finished, so the
    // Notify stage has been timed.
    assert_eq!(
        client.call(WireRequest::Subscriptions),
        WireResponse::Count { value: 1 }
    );

    // --- the Metrics opcode ------------------------------------------------
    let WireResponse::Metrics(report) = client.call(WireRequest::Metrics) else {
        panic!("expected a metrics report");
    };

    let delivered = counter(&report, "kspr_queries");
    assert_eq!(delivered, 3, "exact + tiered approx + auto");
    assert_eq!(counter(&report, "kspr_updates"), 3);
    assert_eq!(counter(&report, "kspr_rejected"), 1);
    assert_eq!(counter(&report, "kspr_rejected_invalid_k"), 1);
    assert!(
        counter(&report, "kspr_wal_commits") >= 4,
        "3 updates + subscribe"
    );
    assert!(counter(&report, "kspr_wal_fsyncs") >= 1);

    // Every pipeline stage recorded at least one observation...
    for stage in Stage::ALL {
        let name = format!("kspr_stage_{}_ns", stage.name());
        let h = summary(&report, &name);
        assert!(h.count >= 1, "stage histogram {name} must be live");
        assert!(h.max >= h.p50, "{name}: quantiles must be ordered");
    }
    // ...and the query-path stages saw at least every delivered query.
    for stage in [
        Stage::Queue,
        Stage::Admission,
        Stage::Batch,
        Stage::Engine,
        Stage::Ack,
    ] {
        let name = format!("kspr_stage_{}_ns", stage.name());
        assert!(
            summary(&report, &name).count >= delivered,
            "{name} must cover all {delivered} delivered queries"
        );
    }
    // Per-tier and per-algorithm latency, bucketed by the submitted tier.
    assert_eq!(summary(&report, "kspr_tier_exact_ns").count, 1);
    assert_eq!(summary(&report, "kspr_tier_approximate_ns").count, 1);
    assert_eq!(summary(&report, "kspr_tier_auto_ns").count, 1);
    assert_eq!(
        summary(&report, "kspr_algorithm_lp_cta_ns").count,
        delivered
    );
    // The exact engine reported its own wall time for the exact answers.
    assert_eq!(summary(&report, "kspr_engine_wall_ns").count, 2);
    assert!(summary(&report, "kspr_wal_commit_ns").count >= 4);

    // The WAL gauges reflect the committed (not yet snapshotted) tail.
    assert!(
        report
            .gauges
            .iter()
            .any(|(n, v)| n == "kspr_wal_bytes" && *v > 0),
        "committed updates must show up in the WAL size gauge"
    );
    assert!(report
        .gauges
        .iter()
        .any(|(n, _)| n == "kspr_snapshot_epoch"));

    // --- the Prometheus text scrape on the same port -----------------------
    let mut scrape = TcpStream::connect(net.local_addr()).expect("scrape connect");
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send scrape");
    let mut text = String::new();
    scrape.read_to_string(&mut text).expect("read scrape");
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "got: {text}");
    assert!(text.contains("Content-Type: text/plain"));
    for series in [
        "kspr_queries 3",
        "kspr_updates 3",
        "kspr_stage_engine_ns_count",
        "kspr_stage_wal_commit_ns_count",
        "kspr_stage_notify_ns_count",
        "# TYPE kspr_stage_queue_ns summary",
    ] {
        assert!(
            text.contains(series),
            "scrape must expose {series}:\n{text}"
        );
    }

    // --- the non-blocking mirror and the slow-query log --------------------
    let stats = handle.stats_now();
    assert_eq!(stats.queries, 3);
    assert_eq!(stats.updates, 3);
    assert_eq!(stats.rejections.total(), stats.rejected);

    let slow = handle.slow_queries();
    assert_eq!(
        slow.len(),
        delivered as usize,
        "threshold zero retains every answered query"
    );
    for entry in &slow {
        assert_eq!(entry.algorithm, Algorithm::LpCta);
        assert_eq!(entry.k, 2);
        assert!(entry.total_ns > 0);
        assert!(
            entry.stages.iter().any(|(_, nanos)| nanos > 0),
            "a retained query must carry stage timings"
        );
    }
    assert!(
        slow.iter().any(|entry| entry.stats.is_some()),
        "exact answers retain their engine QueryStats"
    );

    drop(client);
    net.stop();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
