//! Serving-side telemetry: the lock-free mirror behind the non-blocking
//! stats snapshot, the metric registry every pipeline stage records into,
//! and the slow-query log.
//!
//! The dispatcher used to own [`ServeStats`] as plain `u64`s, so reading
//! the counters meant a round-trip through the request queue (blocking
//! behind whatever the dispatcher was busy with).  [`LiveStats`] replaces
//! that with relaxed atomics the dispatcher increments *before* it sends
//! each answer: the mpsc channel's release/acquire edge then orders the
//! increment before the client's receive, so a snapshot taken after a
//! ticket resolved always includes that request — the counters stay exactly
//! as consistent as the old serialized read, without the round-trip.  (The
//! only lag is bookkeeping no answer waits on: notification counts and the
//! monitor's classification stats update after the acknowledging sends; a
//! serialized request, e.g. `subscriptions()`, acts as a barrier.)
//!
//! [`ServeMetrics`] holds the pre-resolved [`kspr_telemetry`] handles the
//! hot path records into — per-[`Stage`] latency histograms, per-tier and
//! per-algorithm totals, WAL commit latency, engine wall time — plus the
//! WAL gauges and the bounded ring buffer of [`SlowQuery`] entries.

use crate::error::ServeError;
use crate::stats::{RejectionStats, ServeStats, REJECTION_VARIANTS};
use kspr::{Algorithm, QueryStats, QueryTier};
use kspr_monitor::MonitorStats;
use kspr_telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, RequestTrace,
    Stage, StageTimings, TraceId, TraceRecord,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

fn unpoisoned<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// A monotone high-water mark (`fetch_max` under the hood).
#[derive(Debug, Default)]
pub(crate) struct Peak(AtomicU64);

impl Peak {
    /// Raises the mark to `value` if it is higher.
    pub(crate) fn record(&self, value: usize) {
        self.0.fetch_max(value as u64, Ordering::Relaxed);
    }

    fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed) as usize
    }
}

/// The live (atomic) mirror of every [`ServeStats`] counter.
///
/// The dispatcher thread is the only writer; [`LiveStats::snapshot`] can be
/// read from any thread at any time.  Field-for-field with [`ServeStats`]
/// (the snapshot is an exhaustive struct literal, so the two cannot drift
/// without a compile error).
#[derive(Debug, Default)]
pub(crate) struct LiveStats {
    pub(crate) queries: Counter,
    pub(crate) exact_queries: Counter,
    pub(crate) approx_queries: Counter,
    pub(crate) auto_routed_exact: Counter,
    pub(crate) auto_routed_approx: Counter,
    pub(crate) degraded_to_approx: Counter,
    rejected: Counter,
    rejections: [Counter; REJECTION_VARIANTS],
    pub(crate) batches: Counter,
    pub(crate) largest_batch: Peak,
    pub(crate) largest_intra_grant: Peak,
    pub(crate) parallel_batches: Counter,
    pub(crate) updates: Counter,
    pub(crate) update_batches: Counter,
    pub(crate) largest_update_batch: Peak,
    pub(crate) wal_commits: Counter,
    pub(crate) snapshots: Counter,
    pub(crate) compactions: Counter,
    pub(crate) subscriptions: Counter,
    pub(crate) notifications: Counter,
    pub(crate) deltas_coalesced: Counter,
    pub(crate) approx_subscriptions: Counter,
    pub(crate) approx_notifications: Counter,
    pub(crate) approx_watch_unaffected: Counter,
    pub(crate) maintenance_failures: Counter,
    /// The monitor's classification stats, refreshed after every
    /// maintenance pass (the monitor itself lives on the dispatcher
    /// thread).
    monitor: Mutex<MonitorStats>,
}

impl LiveStats {
    /// Counts one rejection (total + per-variant).
    pub(crate) fn reject(&self, err: &ServeError) {
        self.rejected.inc();
        self.rejections[RejectionStats::index_of(err)].inc();
    }

    /// Publishes the monitor's classification stats.
    pub(crate) fn set_monitor(&self, stats: MonitorStats) {
        *unpoisoned(&self.monitor) = stats;
    }

    /// A plain-value copy of every counter.
    pub(crate) fn snapshot(&self) -> ServeStats {
        let mut counts = [0u64; REJECTION_VARIANTS];
        for (slot, counter) in counts.iter_mut().zip(&self.rejections) {
            *slot = counter.get();
        }
        ServeStats {
            queries: self.queries.get(),
            exact_queries: self.exact_queries.get(),
            approx_queries: self.approx_queries.get(),
            auto_routed_exact: self.auto_routed_exact.get(),
            auto_routed_approx: self.auto_routed_approx.get(),
            degraded_to_approx: self.degraded_to_approx.get(),
            rejected: self.rejected.get(),
            rejections: RejectionStats::from_counts(counts),
            batches: self.batches.get(),
            largest_batch: self.largest_batch.get(),
            largest_intra_grant: self.largest_intra_grant.get(),
            parallel_batches: self.parallel_batches.get(),
            updates: self.updates.get(),
            update_batches: self.update_batches.get(),
            largest_update_batch: self.largest_update_batch.get(),
            wal_commits: self.wal_commits.get(),
            snapshots: self.snapshots.get(),
            compactions: self.compactions.get(),
            subscriptions: self.subscriptions.get(),
            notifications: self.notifications.get(),
            deltas_coalesced: self.deltas_coalesced.get(),
            approx_subscriptions: self.approx_subscriptions.get(),
            approx_notifications: self.approx_notifications.get(),
            approx_watch_unaffected: self.approx_watch_unaffected.get(),
            maintenance_failures: self.maintenance_failures.get(),
            monitor: *unpoisoned(&self.monitor),
        }
    }
}

/// The tier classes queries are bucketed under (by the tier they were
/// *submitted* with — an admission-degraded query still counts under the
/// class its client asked for).
pub(crate) const TIER_NAMES: [&str; 3] = ["exact", "approximate", "auto"];

/// Index into [`TIER_NAMES`] for a submitted tier.
pub(crate) fn tier_index(tier: &QueryTier) -> usize {
    match tier {
        QueryTier::Exact => 0,
        QueryTier::Approximate { .. } => 1,
        QueryTier::Auto { .. } => 2,
    }
}

/// Metric-name component per algorithm (indexed by `Algorithm as usize`).
const ALGORITHM_NAMES: [&str; 6] = ["cta", "pcta", "lp_cta", "k_skyband", "rtopk", "i_max_rank"];

/// How many [`SlowQuery`] entries the ring buffer retains by default: old
/// entries are evicted oldest-first once the log is full.  Configurable per
/// server via `ServeOptions::slow_log_capacity`.
pub const SLOW_LOG_CAPACITY: usize = 32;

/// How many complete span trees the flight recorder retains by default.
/// Configurable per server via `ServeOptions::flight_recorder_capacity`.
pub const FLIGHT_RECORDER_CAPACITY: usize = 64;

/// Phase-histogram name components, in [`kspr::PhaseNanos::iter`] order.
const PHASE_NAMES: [&str; 4] = ["prep", "expansion", "lp", "dominance"];

/// Trace ids the server assigns to requests that arrive without one.  They
/// start far above any plausible client-side counter so the two id spaces
/// don't collide in the flight recorder.
pub(crate) fn next_server_trace_id() -> TraceId {
    static NEXT: AtomicU64 = AtomicU64::new(1 << 48);
    TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
}

/// One retained slow query: what ran, how long each pipeline stage took,
/// and the engine's per-query side metrics when the exact engine produced
/// them.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The algorithm the query ran (for approximate answers: the algorithm
    /// it was submitted with — the sampler is algorithm-agnostic).
    pub algorithm: Algorithm,
    /// The query's `k`.
    pub k: usize,
    /// The tier class it was submitted under (see metric names
    /// `kspr_tier_*_ns`): `"exact"`, `"approximate"`, or `"auto"`.
    pub tier: &'static str,
    /// End-to-end latency, enqueue to acknowledgement, in nanoseconds.
    pub total_ns: u64,
    /// Per-stage breakdown of that latency.
    pub stages: StageTimings,
    /// The engine's side metrics (exact answers only; the approximate tier
    /// reports no `QueryStats`).
    pub stats: Option<QueryStats>,
    /// The id of this query's span tree in the flight recorder, when one
    /// was retained — look it up with `ServeHandle::trace`.
    pub trace_id: Option<TraceId>,
}

/// Everything the serving stack records besides the [`ServeStats`]
/// counters: the registry of latency histograms and WAL gauges, the
/// slow-query threshold, and the slow-query ring buffer.
pub(crate) struct ServeMetrics {
    registry: MetricsRegistry,
    /// Per-pipeline-stage latency histograms, indexed by [`Stage::index`]
    /// (`kspr_stage_<stage>_ns`).
    stages: [Arc<Histogram>; Stage::COUNT],
    /// End-to-end latency by submitted tier class (`kspr_tier_<tier>_ns`).
    tiers: [Arc<Histogram>; TIER_NAMES.len()],
    /// End-to-end latency by algorithm (`kspr_algorithm_<name>_ns`).
    algorithms: [Arc<Histogram>; ALGORITHM_NAMES.len()],
    /// The exact engine's own wall time per query (`kspr_engine_wall_ns`,
    /// from [`QueryStats`] — excludes queueing and batching).
    engine_wall: Arc<Histogram>,
    /// Per-engine-phase wall time (`kspr_phase_<phase>_ns`, indexed in
    /// [`PHASE_NAMES`] order).
    phases: [Arc<Histogram>; PHASE_NAMES.len()],
    /// Simplex pivots per exact query (`kspr_lp_pivots` — work, not time).
    lp_pivots: Arc<Histogram>,
    /// WAL commit (write + fsync) latency (`kspr_wal_commit_ns`).
    wal_commit: Arc<Histogram>,
    /// Fsyncs issued by the WAL writer (`kspr_wal_fsyncs`).
    wal_fsyncs: Arc<Counter>,
    /// Cumulative standing-query maintenance time (`kspr_maintenance_ns`).
    maintenance_ns: Arc<Counter>,
    /// Bytes in the WAL since the last snapshot (`kspr_wal_bytes`).
    wal_bytes: Arc<Gauge>,
    /// Snapshots installed since the store opened (`kspr_snapshot_epoch`).
    snapshot_epoch: Arc<Gauge>,
    /// Pending request-queue depth at snapshot time (`kspr_queue_depth`).
    queue_depth: Arc<Gauge>,
    /// Queries at least this slow (enqueue to ack) enter the slow-query
    /// log; `None` disables the log.
    slow_threshold_ns: Option<u64>,
    slow: Mutex<VecDeque<SlowQuery>>,
    /// [`SlowQuery`] entries retained before oldest-first eviction.
    slow_log_capacity: usize,
    /// The bounded ring of retained span trees (client-pinned traces plus
    /// every trace that crossed the slow-query threshold).
    recorder: FlightRecorder,
    /// WAL size past which a warning is logged (once per epoch).
    wal_warn_bytes: u64,
    wal_warned: AtomicBool,
}

impl ServeMetrics {
    pub(crate) fn new(
        slow_query_threshold: Option<Duration>,
        wal_warn_bytes: u64,
        slow_log_capacity: usize,
        flight_recorder_capacity: usize,
    ) -> Self {
        let registry = MetricsRegistry::new();
        let stages = Stage::ALL.map(|stage| {
            let name = format!("kspr_stage_{}_ns", stage.name());
            registry.describe(
                &name,
                &format!(
                    "Latency of the {} pipeline stage, in nanoseconds",
                    stage.name()
                ),
            );
            registry.histogram(&name)
        });
        let tiers = TIER_NAMES.map(|tier| {
            let name = format!("kspr_tier_{tier}_ns");
            registry.describe(
                &name,
                &format!(
                    "End-to-end latency of queries submitted under the {tier} tier, in nanoseconds"
                ),
            );
            registry.histogram(&name)
        });
        let algorithms = ALGORITHM_NAMES.map(|algorithm| {
            let name = format!("kspr_algorithm_{algorithm}_ns");
            registry.describe(
                &name,
                &format!("End-to-end latency of {algorithm} queries, in nanoseconds"),
            );
            registry.histogram(&name)
        });
        let phases = PHASE_NAMES.map(|phase| {
            let name = format!("kspr_phase_{phase}_ns");
            registry.describe(
                &name,
                &format!(
                    "Engine wall time spent in the {phase} phase per exact query, in nanoseconds"
                ),
            );
            registry.histogram(&name)
        });
        for (name, help) in [
            (
                "kspr_engine_wall_ns",
                "Exact engine wall time per query, excluding queueing and batching, in nanoseconds",
            ),
            (
                "kspr_lp_pivots",
                "Simplex pivots across the LP feasibility tests of one exact query",
            ),
            (
                "kspr_wal_commit_ns",
                "WAL commit (write + fsync) latency per update batch, in nanoseconds",
            ),
            ("kspr_wal_fsyncs", "Fsyncs issued by the WAL writer"),
            (
                "kspr_maintenance_ns",
                "Cumulative standing-query maintenance time, in nanoseconds",
            ),
            ("kspr_wal_bytes", "Bytes in the WAL since the last snapshot"),
            (
                "kspr_snapshot_epoch",
                "Snapshots installed since the store opened",
            ),
            (
                "kspr_queue_depth",
                "Pending request-queue depth at scrape time",
            ),
        ] {
            registry.describe(name, help);
        }
        let engine_wall = registry.histogram("kspr_engine_wall_ns");
        let lp_pivots = registry.histogram("kspr_lp_pivots");
        let wal_commit = registry.histogram("kspr_wal_commit_ns");
        let wal_fsyncs = registry.counter("kspr_wal_fsyncs");
        let maintenance_ns = registry.counter("kspr_maintenance_ns");
        let wal_bytes = registry.gauge("kspr_wal_bytes");
        let snapshot_epoch = registry.gauge("kspr_snapshot_epoch");
        let queue_depth = registry.gauge("kspr_queue_depth");
        Self {
            registry,
            stages,
            tiers,
            algorithms,
            engine_wall,
            phases,
            lp_pivots,
            wal_commit,
            wal_fsyncs,
            maintenance_ns,
            wal_bytes,
            snapshot_epoch,
            queue_depth,
            slow_threshold_ns: slow_query_threshold
                .map(|t| u64::try_from(t.as_nanos()).unwrap_or(u64::MAX)),
            slow: Mutex::new(VecDeque::with_capacity(slow_log_capacity)),
            slow_log_capacity: slow_log_capacity.max(1),
            recorder: FlightRecorder::new(flight_recorder_capacity),
            wal_warn_bytes,
            wal_warned: AtomicBool::new(false),
        }
    }

    /// Records the listed stages of one finished request into the per-stage
    /// histograms.  Callers list exactly the stages their path stamped, so
    /// no histogram collects structural zeros from stages a path never
    /// visits (updates have no admission stage, queries no WAL stage).
    pub(crate) fn record_stages(&self, timings: &StageTimings, stages: &[Stage]) {
        for &stage in stages {
            self.stages[stage.index()].record(timings.stage_nanos(stage));
        }
    }

    /// Records one answered query's end-to-end latency under its tier class
    /// and algorithm, and retains it in the slow-query log when it crossed
    /// the threshold.
    pub(crate) fn record_query(&self, slow: SlowQuery) {
        self.tiers[TIER_NAMES
            .iter()
            .position(|&t| t == slow.tier)
            .expect("tier labels come from TIER_NAMES")]
        .record(slow.total_ns);
        self.algorithms[slow.algorithm as usize].record(slow.total_ns);
        if let Some(stats) = &slow.stats {
            self.engine_wall.record(stats.wall_time_ns);
        }
        if self.slow_threshold_ns.is_some_and(|t| slow.total_ns >= t) {
            let mut log = unpoisoned(&self.slow);
            while log.len() >= self.slow_log_capacity {
                log.pop_front();
            }
            log.push_back(slow);
        }
    }

    /// Records one exact answer's per-phase engine breakdown and its LP
    /// pivot count.
    pub(crate) fn record_phases(&self, stats: &QueryStats) {
        for (histogram, (_, nanos)) in self.phases.iter().zip(stats.phases.iter()) {
            histogram.record(nanos);
        }
        self.lp_pivots.record(stats.lp_pivots as u64);
    }

    /// Closes a finished request's span tree and retains it in the flight
    /// recorder when it is worth keeping: the client pinned it (sent a
    /// trace id on the wire) or the request crossed the slow-query
    /// threshold.  Returns the trace id iff the tree was retained.
    pub(crate) fn finish_trace(&self, trace: RequestTrace, total_ns: u64) -> Option<TraceId> {
        let keep = trace.pinned() || self.slow_threshold_ns.is_some_and(|t| total_ns >= t);
        if !keep {
            return None;
        }
        let record = trace.finish()?;
        let trace_id = record.trace_id;
        self.recorder.record(record);
        Some(trace_id)
    }

    /// The flight recorder's retained span trees, oldest first.
    pub(crate) fn traces(&self) -> Vec<Arc<TraceRecord>> {
        self.recorder.snapshot()
    }

    /// The retained span tree of `trace_id`, if the recorder still holds it.
    pub(crate) fn trace(&self, trace_id: TraceId) -> Option<Arc<TraceRecord>> {
        self.recorder.find(trace_id)
    }

    /// The retained slow queries, oldest first.
    pub(crate) fn slow_queries(&self) -> Vec<SlowQuery> {
        unpoisoned(&self.slow).iter().cloned().collect()
    }

    /// Times one standing-query maintenance pass into the `Notify` stage
    /// histogram and the cumulative maintenance counter.
    pub(crate) fn record_maintenance(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.stages[Stage::Notify.index()].record(nanos);
        self.maintenance_ns.add(nanos);
    }

    /// Publishes the WAL's state after one committed batch: commit latency,
    /// fsync count, size gauge — and a (once-per-epoch) warning when the
    /// log outgrows the watermark without a compaction truncating it.
    pub(crate) fn wal_committed(&self, bytes: u64, commit_nanos: u64, synced: bool) {
        self.wal_commit.record(commit_nanos);
        self.wal_bytes.set(bytes);
        if synced {
            self.wal_fsyncs.inc();
        }
        if bytes > self.wal_warn_bytes && !self.wal_warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "kspr-serve: WAL has grown to {bytes} bytes (watermark \
                 {}); recovery replay is getting long — consider a lower \
                 compaction threshold or a manual snapshot",
                self.wal_warn_bytes
            );
        }
    }

    /// Publishes the WAL's state after a snapshot install truncated it.
    pub(crate) fn snapshot_installed(&self, wal_bytes: u64, epoch: u64) {
        self.wal_bytes.set(wal_bytes);
        self.snapshot_epoch.set(epoch);
        self.wal_warned.store(false, Ordering::Relaxed);
    }

    /// A [`MetricsSnapshot`] of every registered metric, folding in the
    /// [`ServeStats`] counters (prefixed `kspr_`) and the current queue
    /// depth so one export carries the whole serving picture.
    pub(crate) fn snapshot(&self, queue_depth: u64, serve: &ServeStats) -> MetricsSnapshot {
        self.queue_depth.set(queue_depth);
        let mut snap = self.registry.snapshot();
        for (name, value) in serve_counter_fields(serve) {
            snap.counters.push((format!("kspr_{name}"), value));
        }
        snap.counters.sort();
        snap.gauges
            .push(("kspr_largest_batch".into(), serve.largest_batch as u64));
        snap.gauges.push((
            "kspr_largest_intra_grant".into(),
            serve.largest_intra_grant as u64,
        ));
        snap.gauges.push((
            "kspr_largest_update_batch".into(),
            serve.largest_update_batch as u64,
        ));
        snap.gauges.sort();
        snap
    }
}

/// Every monotone [`ServeStats`] counter as `(name, value)` — the high-water
/// marks export as gauges instead, and the monitor's classification stats
/// stay on the struct.
fn serve_counter_fields(stats: &ServeStats) -> Vec<(String, u64)> {
    let mut fields: Vec<(String, u64)> = [
        ("queries", stats.queries),
        ("exact_queries", stats.exact_queries),
        ("approx_queries", stats.approx_queries),
        ("auto_routed_exact", stats.auto_routed_exact),
        ("auto_routed_approx", stats.auto_routed_approx),
        ("degraded_to_approx", stats.degraded_to_approx),
        ("rejected", stats.rejected),
        ("batches", stats.batches),
        ("parallel_batches", stats.parallel_batches),
        ("updates", stats.updates),
        ("update_batches", stats.update_batches),
        ("wal_commits", stats.wal_commits),
        ("snapshots", stats.snapshots),
        ("compactions", stats.compactions),
        ("subscriptions", stats.subscriptions),
        ("notifications", stats.notifications),
        ("deltas_coalesced", stats.deltas_coalesced),
        ("approx_subscriptions", stats.approx_subscriptions),
        ("approx_notifications", stats.approx_notifications),
        ("approx_watch_unaffected", stats.approx_watch_unaffected),
        ("maintenance_failures", stats.maintenance_failures),
    ]
    .into_iter()
    .map(|(name, value)| (name.to_owned(), value))
    .collect();
    for (variant, count) in stats.rejections.variants() {
        fields.push((format!("rejected_{variant}"), count));
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_stats_snapshot_mirrors_every_counter() {
        let live = LiveStats::default();
        live.queries.add(4);
        live.exact_queries.add(3);
        live.approx_queries.inc();
        live.reject(&ServeError::InvalidK);
        live.reject(&ServeError::Overloaded);
        live.reject(&ServeError::Overloaded);
        live.largest_batch.record(5);
        live.largest_batch.record(3); // high-water mark, not last-write
        live.updates.add(7);

        let snap = live.snapshot();
        assert_eq!(snap.queries, 4);
        assert_eq!(snap.exact_queries, 3);
        assert_eq!(snap.approx_queries, 1);
        assert_eq!(snap.rejected, 3);
        assert_eq!(snap.rejections.invalid_k, 1);
        assert_eq!(snap.rejections.overloaded, 2);
        assert_eq!(snap.rejections.total(), snap.rejected);
        assert_eq!(snap.largest_batch, 5);
        assert_eq!(snap.updates, 7);
    }

    #[test]
    fn slow_query_log_applies_threshold_and_capacity() {
        let metrics = ServeMetrics::new(
            Some(Duration::from_nanos(1_000)),
            u64::MAX,
            SLOW_LOG_CAPACITY,
            FLIGHT_RECORDER_CAPACITY,
        );
        let query = |total_ns| SlowQuery {
            algorithm: Algorithm::LpCta,
            k: 2,
            tier: TIER_NAMES[0],
            total_ns,
            stages: StageTimings::default(),
            stats: None,
            trace_id: None,
        };
        metrics.record_query(query(999)); // below threshold: not retained
        for i in 0..SLOW_LOG_CAPACITY + 3 {
            metrics.record_query(query(1_000 + i as u64));
        }
        let log = metrics.slow_queries();
        assert_eq!(log.len(), SLOW_LOG_CAPACITY, "the ring buffer is bounded");
        assert_eq!(
            log.first().unwrap().total_ns,
            1_003,
            "eviction is oldest-first"
        );
        // Every recorded query lands in its tier histogram regardless of
        // the slow log.
        let snap = metrics.snapshot(0, &ServeStats::default());
        assert_eq!(
            snap.histogram("kspr_tier_exact_ns").unwrap().count(),
            SLOW_LOG_CAPACITY as u64 + 4
        );
    }

    #[test]
    fn disabled_threshold_retains_nothing() {
        let metrics = ServeMetrics::new(None, u64::MAX, SLOW_LOG_CAPACITY, 4);
        metrics.record_query(SlowQuery {
            algorithm: Algorithm::Cta,
            k: 1,
            tier: TIER_NAMES[2],
            total_ns: u64::MAX,
            stages: StageTimings::default(),
            stats: None,
            trace_id: None,
        });
        assert!(metrics.slow_queries().is_empty());
    }

    #[test]
    fn snapshot_folds_serve_counters_and_peak_gauges_in() {
        let metrics = ServeMetrics::new(None, u64::MAX, SLOW_LOG_CAPACITY, 4);
        let serve = ServeStats {
            queries: 9,
            largest_batch: 4,
            rejections: RejectionStats {
                quota_exceeded: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let snap = metrics.snapshot(3, &serve);
        assert_eq!(snap.counter("kspr_queries"), Some(9));
        assert_eq!(snap.counter("kspr_rejected_quota_exceeded"), Some(2));
        assert_eq!(snap.gauge("kspr_largest_batch"), Some(4));
        assert_eq!(snap.gauge("kspr_queue_depth"), Some(3));
        // Folded counters keep the sorted-export invariant.
        let names: Vec<&String> = snap.counters.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn slow_log_capacity_is_configurable() {
        let metrics = ServeMetrics::new(Some(Duration::from_nanos(1)), u64::MAX, 2, 4);
        for i in 0..5u64 {
            metrics.record_query(SlowQuery {
                algorithm: Algorithm::LpCta,
                k: 1,
                tier: TIER_NAMES[0],
                total_ns: 100 + i,
                stages: StageTimings::default(),
                stats: None,
                trace_id: None,
            });
        }
        let log = metrics.slow_queries();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].total_ns, 103);
        assert_eq!(log[1].total_ns, 104);
    }

    #[test]
    fn flight_recorder_keeps_pinned_and_slow_traces() {
        let metrics = ServeMetrics::new(Some(Duration::from_nanos(1_000)), u64::MAX, 4, 4);
        // A client-pinned trace is kept regardless of latency.
        let pinned = RequestTrace::traced(TraceId(7), true);
        assert_eq!(metrics.finish_trace(pinned, 0), Some(TraceId(7)));
        // An unpinned fast trace is dropped ...
        let fast = RequestTrace::traced(TraceId(8), false);
        assert_eq!(metrics.finish_trace(fast, 0), None);
        // ... an unpinned slow one is kept ...
        let slow = RequestTrace::traced(TraceId(9), false);
        assert_eq!(metrics.finish_trace(slow, 5_000), Some(TraceId(9)));
        // ... and an untraced request never enters the recorder.
        assert_eq!(metrics.finish_trace(RequestTrace::start(), 5_000), None);
        assert!(metrics.trace(TraceId(7)).is_some());
        assert!(metrics.trace(TraceId(8)).is_none());
        assert_eq!(metrics.traces().len(), 2);
    }

    #[test]
    fn phase_histograms_record_engine_breakdowns() {
        let metrics = ServeMetrics::new(None, u64::MAX, SLOW_LOG_CAPACITY, 4);
        let mut stats = QueryStats::new();
        stats.phases.prep_ns = 100;
        stats.phases.expansion_ns = 400;
        stats.phases.lp_ns = 250;
        stats.phases.dominance_ns = 30;
        stats.lp_pivots = 17;
        metrics.record_phases(&stats);
        let snap = metrics.snapshot(0, &ServeStats::default());
        for phase in PHASE_NAMES {
            let histogram = snap.histogram(&format!("kspr_phase_{phase}_ns")).unwrap();
            assert_eq!(histogram.count(), 1, "{phase}");
        }
        assert_eq!(snap.histogram("kspr_lp_pivots").unwrap().sum(), 17);
    }

    #[test]
    fn server_trace_ids_are_unique_and_high() {
        let a = next_server_trace_id();
        let b = next_server_trace_id();
        assert_ne!(a, b);
        assert!(a.0 >= 1 << 48);
    }

    #[test]
    fn wal_watermark_warns_once_per_epoch() {
        let metrics = ServeMetrics::new(None, 100, SLOW_LOG_CAPACITY, 4);
        metrics.wal_committed(50, 10, true);
        assert!(!metrics.wal_warned.load(Ordering::Relaxed));
        metrics.wal_committed(150, 10, true);
        assert!(metrics.wal_warned.load(Ordering::Relaxed));
        metrics.snapshot_installed(0, 1);
        assert!(
            !metrics.wal_warned.load(Ordering::Relaxed),
            "a snapshot truncates the WAL and re-arms the warning"
        );
        let snap = metrics.snapshot(0, &ServeStats::default());
        assert_eq!(snap.counter("kspr_wal_fsyncs"), Some(2));
        assert_eq!(snap.gauge("kspr_wal_bytes"), Some(0));
        assert_eq!(snap.gauge("kspr_snapshot_epoch"), Some(1));
        assert_eq!(snap.histogram("kspr_wal_commit_ns").unwrap().count(), 2);
    }
}
