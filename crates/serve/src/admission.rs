//! The admission layer: the gate between *enqueue* and *dispatch*.
//!
//! Every query is stamped at enqueue time with the pending-queue depth and
//! its client's in-flight count ([`Stamp`]); when the dispatcher dequeues
//! the query it judges those stamped values against [`AdmissionOptions`]:
//!
//! * past [`AdmissionOptions::hard_limit`] pending queries the request is
//!   rejected with [`ServeError::Overloaded`];
//! * past [`AdmissionOptions::client_quota`] in-flight queries *from the
//!   same client* it is rejected with [`ServeError::QuotaExceeded`];
//! * past [`AdmissionOptions::degrade_watermark`] pending queries a
//!   tier-dispatched query ([`crate::ServeHandle::submit_tiered`]) is
//!   **degraded**: its exact-capable tier is replaced with
//!   `Approximate { degrade_budget }`, trading a guaranteed-error estimate
//!   for a bounded, dataset-size-independent cost.  Fixed-type submissions
//!   ([`crate::ServeHandle::submit`] / `submit_approx`) cannot change their
//!   answer type and pass through undegraded.
//!
//! Judging the *stamped* values — not the live counters at dispatch time —
//! keeps the policy deterministic: the verdict depends only on the state
//! the queue was in when the client submitted, never on how fast the
//! dispatcher drained behind it.  All three limits default to "off"
//! (`usize::MAX`); every verdict is counted in [`crate::ServeStats`].

use crate::error::ServeError;
use kspr::ErrorBudget;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Admission-control thresholds (all default to "off").
#[derive(Debug, Clone, Copy)]
pub struct AdmissionOptions {
    /// Pending-queue depth beyond which tier-dispatched queries are
    /// downgraded to `Approximate { degrade_budget }`.
    pub degrade_watermark: usize,
    /// The error budget degraded queries are answered under.
    pub degrade_budget: ErrorBudget,
    /// Pending-queue depth beyond which queries are rejected with
    /// [`ServeError::Overloaded`].
    pub hard_limit: usize,
    /// Per-client in-flight query cap; beyond it the client's queries are
    /// rejected with [`ServeError::QuotaExceeded`].  A client is one
    /// [`crate::Server::handle`] call and its clones
    /// ([`crate::ServeHandle::fork_client`] starts a new one).
    pub client_quota: usize,
}

impl Default for AdmissionOptions {
    fn default() -> Self {
        Self {
            degrade_watermark: usize::MAX,
            degrade_budget: ErrorBudget::default(),
            hard_limit: usize::MAX,
            client_quota: usize::MAX,
        }
    }
}

/// The dispatcher's verdict on one stamped query.
pub(crate) enum Verdict {
    /// Serve as requested.
    Accept,
    /// Serve, but downgrade an exact-capable tier to the degrade budget.
    Degrade,
    /// Turn the query away.
    Reject(ServeError),
}

impl AdmissionOptions {
    /// Judges one query by the queue state stamped at its enqueue.
    /// Ordered strictest first: a query past the hard limit is `Overloaded`
    /// even if its client is also over quota.
    pub(crate) fn admit(&self, stamp: &Stamp) -> Verdict {
        if stamp.depth > self.hard_limit {
            return Verdict::Reject(ServeError::Overloaded);
        }
        if stamp.inflight > self.client_quota {
            return Verdict::Reject(ServeError::QuotaExceeded);
        }
        if stamp.depth > self.degrade_watermark {
            return Verdict::Degrade;
        }
        Verdict::Accept
    }
}

/// The admission stamp a query carries from enqueue to dispatch: the
/// pending-queue depth and the client's in-flight count, both *including*
/// this query, as they were the moment it was submitted.
///
/// The stamp owns its slot in both counters and releases it on drop, so
/// the accounting stays exact on every exit path — answered, rejected,
/// degraded, or drained at shutdown.
pub(crate) struct Stamp {
    depth: usize,
    inflight: usize,
    queue: Arc<AtomicUsize>,
    client: Arc<AtomicUsize>,
}

impl Stamp {
    /// Claims a slot in the shared queue-depth counter and the client's
    /// in-flight counter, recording both post-increment values.
    pub(crate) fn acquire(queue: &Arc<AtomicUsize>, client: &Arc<AtomicUsize>) -> Self {
        Self {
            depth: queue.fetch_add(1, Ordering::AcqRel) + 1,
            inflight: client.fetch_add(1, Ordering::AcqRel) + 1,
            queue: Arc::clone(queue),
            client: Arc::clone(client),
        }
    }
}

impl Drop for Stamp {
    fn drop(&mut self) {
        self.queue.fetch_sub(1, Ordering::AcqRel);
        self.client.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> (Arc<AtomicUsize>, Arc<AtomicUsize>) {
        (Arc::new(AtomicUsize::new(0)), Arc::new(AtomicUsize::new(0)))
    }

    #[test]
    fn stamps_record_depth_including_themselves_and_release_on_drop() {
        let (queue, client) = counters();
        let a = Stamp::acquire(&queue, &client);
        let b = Stamp::acquire(&queue, &client);
        assert_eq!((a.depth, a.inflight), (1, 1));
        assert_eq!((b.depth, b.inflight), (2, 2));
        drop(a);
        drop(b);
        assert_eq!(queue.load(Ordering::Acquire), 0);
        assert_eq!(client.load(Ordering::Acquire), 0);
    }

    #[test]
    fn verdict_order_is_hard_limit_then_quota_then_watermark() {
        let (queue, client) = counters();
        let stamp = Stamp::acquire(&queue, &client); // depth = inflight = 1
        let defaults = AdmissionOptions::default();
        assert!(matches!(defaults.admit(&stamp), Verdict::Accept));

        let overloaded = AdmissionOptions {
            hard_limit: 0,
            client_quota: 0,
            degrade_watermark: 0,
            ..defaults
        };
        assert!(matches!(
            overloaded.admit(&stamp),
            Verdict::Reject(ServeError::Overloaded)
        ));

        let quota = AdmissionOptions {
            client_quota: 0,
            degrade_watermark: 0,
            ..defaults
        };
        assert!(matches!(
            quota.admit(&stamp),
            Verdict::Reject(ServeError::QuotaExceeded)
        ));

        let watermark = AdmissionOptions {
            degrade_watermark: 0,
            ..defaults
        };
        assert!(matches!(watermark.admit(&stamp), Verdict::Degrade));
    }
}
