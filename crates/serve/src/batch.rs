//! Query validation and batched execution: the layer that turns a drained
//! run of [`QueryJob`]s into grouped engine calls.
//!
//! Admission verdicts are applied here, at dispatch time, against each
//! job's enqueue-time [`Stamp`] (see the `admission` module); surviving
//! jobs are validated, tier-resolved, and answered — **exact jobs**
//! grouped by `(algorithm, k)` through one
//! [`ShardedEngine::run_batch`] call each, **approximate jobs** grouped by
//! `(k, budget)` through one shared sampling sweep each.

use crate::admission::{AdmissionOptions, Stamp, Verdict};
use crate::error::{ingest_error, ServeError};
use crate::telemetry::{tier_index, LiveStats, ServeMetrics, SlowQuery, TIER_NAMES};
use crate::ShardedEngine;
use kspr::{Algorithm, ApproxImpact, ErrorBudget, KsprResult, QueryStats, QueryTier};
use kspr_approx::TieredResult;
use kspr_telemetry::{RequestTrace, SpanId, Stage};
use std::sync::mpsc;

/// Where a query's answer goes: the three client-facing ticket flavors.
/// Constructed so a sink can always carry the tier's answer — `Exact` sinks
/// only pair with [`QueryTier::Exact`], `Approx` sinks only with
/// [`QueryTier::Approximate`], and `Tiered` sinks carry either (which is
/// why only tier-dispatched queries are eligible for admission-control
/// degradation).
pub(crate) enum Sink {
    Exact(mpsc::Sender<Result<KsprResult, ServeError>>),
    Approx(mpsc::Sender<Result<ApproxImpact, ServeError>>),
    Tiered(mpsc::Sender<Result<TieredResult, ServeError>>),
}

impl Sink {
    /// Delivers a rejection.
    pub(crate) fn reject(&self, err: ServeError) {
        match self {
            Sink::Exact(tx) => drop(tx.send(Err(err))),
            Sink::Approx(tx) => drop(tx.send(Err(err))),
            Sink::Tiered(tx) => drop(tx.send(Err(err))),
        }
    }

    /// Delivers an exact result (never routed to an `Approx` sink).
    fn send_exact(self, result: KsprResult) {
        match self {
            Sink::Exact(tx) => drop(tx.send(Ok(result))),
            Sink::Tiered(tx) => drop(tx.send(Ok(TieredResult::Exact(result)))),
            Sink::Approx(_) => unreachable!("approximate jobs never run exactly"),
        }
    }

    /// Delivers an estimate (never routed to an `Exact` sink).
    fn send_approx(self, estimate: ApproxImpact) {
        match self {
            Sink::Approx(tx) => drop(tx.send(Ok(estimate))),
            Sink::Tiered(tx) => drop(tx.send(Ok(TieredResult::Approximate(estimate)))),
            Sink::Exact(_) => unreachable!("exact jobs never run approximately"),
        }
    }
}

/// One enqueued query, carrying its admission stamp from enqueue to
/// dispatch.
pub(crate) struct QueryJob {
    pub(crate) algorithm: Algorithm,
    pub(crate) focal: Vec<f64>,
    pub(crate) k: usize,
    pub(crate) tier: QueryTier,
    pub(crate) stamp: Stamp,
    pub(crate) sink: Sink,
    /// Stage clock started at enqueue (see `kspr_telemetry`).
    pub(crate) trace: RequestTrace,
}

/// Validates a query against the engine's arity rules (the focal record must
/// satisfy the same shape rules as ingested records).  The RTOPK
/// dimensionality rule only applies when the exact engine can run — a
/// purely approximate job never consults the algorithm.
fn validate_query(engine: &ShardedEngine, job: &QueryJob) -> Result<(), ServeError> {
    if job.k == 0 {
        return Err(ServeError::InvalidK);
    }
    let may_run_exact = !matches!(job.tier, QueryTier::Approximate { .. });
    if may_run_exact && job.algorithm == Algorithm::Rtopk && engine.dim() != 2 {
        return Err(ServeError::UnsupportedAlgorithm);
    }
    match job.tier {
        QueryTier::Exact => {}
        QueryTier::Approximate { budget } | QueryTier::Auto { budget, .. } => {
            validate_budget(&budget)?;
        }
    }
    kspr::check_record(&job.focal, Some(engine.dim())).map_err(ingest_error)
}

/// Largest Hoeffding sample count the server accepts per estimate.  The
/// budget is client-supplied and its sample count grows as `1/epsilon²`:
/// without a cap, one `submit_approx` with a pathological epsilon would
/// materialize gigabytes of sample points on the serialized dispatcher
/// thread (an allocation failure is not a catchable panic — it would take
/// the whole server down, defeating the reject-don't-crash ingest rules).
/// `2^20` samples (~1 M, epsilon ≈ 0.0013 at 95% confidence) is far below
/// any memory hazard and far finer than region-volume noise justifies.
pub const MAX_APPROX_SAMPLES: usize = 1 << 20;

/// Validates a client-supplied error budget: the fields must be genuine
/// probabilities (the `ErrorBudget` fields are public, so `new()`'s checks
/// can be bypassed) and the implied sample count must stay serveable.
pub(crate) fn validate_budget(budget: &ErrorBudget) -> Result<(), ServeError> {
    let in_unit = |v: f64| v.is_finite() && v > 0.0 && v < 1.0;
    if !in_unit(budget.epsilon) || !in_unit(budget.confidence) {
        return Err(ServeError::InvalidBudget);
    }
    if budget.samples() > MAX_APPROX_SAMPLES {
        return Err(ServeError::InvalidBudget);
    }
    Ok(())
}

/// Validates an insert payload.
pub(crate) fn validate_insert(engine: &ShardedEngine, values: &[f64]) -> Result<(), ServeError> {
    kspr::check_record(values, Some(engine.dim())).map_err(ingest_error)
}

/// Grouping key of an approximate batch: `k` plus the bit patterns of the
/// budget (estimates only share a sweep when they ask the same question to
/// the same accuracy).
type ApproxKey = (usize, u64, u64);

fn approx_key(k: usize, budget: &ErrorBudget) -> ApproxKey {
    (k, budget.epsilon.to_bits(), budget.confidence.to_bits())
}

/// The stages every answered query passes through, in pipeline order
/// (queries never touch the WAL, and notification work belongs to updates).
const QUERY_STAGES: [Stage; 5] = [
    Stage::Queue,
    Stage::Admission,
    Stage::Batch,
    Stage::Engine,
    Stage::Ack,
];

/// Lays the engine's per-phase breakdown under a traced query's `engine`
/// span as child spans: `prep` (with the `dominance` kernel nested inside)
/// followed by `expansion` (with the `lp` solves nested inside).  The
/// windows come from [`kspr::PhaseNanos`], anchored at the engine span's
/// start — prep runs first, expansion directly after; `child_span` clamps
/// each window into its parent, so a phase can never overhang the engine
/// span it decomposes.
fn add_engine_phase_spans(trace: &mut RequestTrace, engine: SpanId, stats: &QueryStats) {
    let Some((start, _)) = trace.span_bounds(engine) else {
        return;
    };
    let phases = &stats.phases;
    let prep_end = start.saturating_add(phases.prep_ns);
    if let Some(prep) = trace.child_span(engine, "prep", start, prep_end) {
        trace.child_span(
            prep,
            "dominance",
            start,
            start.saturating_add(phases.dominance_ns),
        );
    }
    if let Some(expansion) = trace.child_span(
        engine,
        "expansion",
        prep_end,
        prep_end.saturating_add(phases.expansion_ns),
    ) {
        trace.child_span(
            expansion,
            "lp",
            prep_end,
            prep_end.saturating_add(phases.lp_ns),
        );
    }
}

/// Executes a batch of dequeued queries: applies each job's admission
/// verdict (reject / degrade / accept — see the `admission` module),
/// rejects invalid jobs, resolves each survivor's tier (`Auto` routes by
/// the dispatcher's cost estimate, counted in [`crate::ServeStats`]), then
/// answers **exact jobs** grouped by `(algorithm, k)` through one
/// `run_batch` call each and **approximate jobs** — batched separately —
/// grouped by `(k, budget)` through one shared sampling sweep each.
/// Every answered query's stage timings are recorded into `metrics`
/// *before* its answer is sent, so a client that has its answer can always
/// see its own query in the histograms.
pub(crate) fn run_jobs(
    engine: &ShardedEngine,
    jobs: Vec<QueryJob>,
    admission: &AdmissionOptions,
    live: &LiveStats,
    metrics: &ServeMetrics,
    approx_seed: &mut u64,
) {
    /// One validated, tier-resolved job.  `auto` marks jobs the `Auto` tier
    /// routed, so the routing counters can be committed only when the job is
    /// actually answered (a failed batch must not leave `auto_routed_*`
    /// claiming more routed queries than `exact_/approx_queries` served).
    struct Routed {
        focal: Vec<f64>,
        sink: Sink,
        auto: bool,
        trace: RequestTrace,
        /// The tier class the query was *submitted* with (degradation does
        /// not move a query between latency buckets).
        tier: &'static str,
        algorithm: Algorithm,
    }

    let mut exact_groups: Vec<((Algorithm, usize), Vec<Routed>)> = Vec::new();
    let mut approx_groups: Vec<((ApproxKey, ErrorBudget), Vec<Routed>)> = Vec::new();
    for mut job in jobs {
        // The job just left the dispatcher's queue: everything since
        // enqueue was queueing.  The submitted tier class is captured
        // before admission may degrade it.
        job.trace.stamp(Stage::Queue);
        let tier = TIER_NAMES[tier_index(&job.tier)];
        // Admission first: an overloaded server turns queries away before
        // spending anything on them.  The verdict reads the queue state
        // stamped at enqueue, so it is independent of drain timing.
        match admission.admit(&job.stamp) {
            Verdict::Accept => {}
            Verdict::Degrade => {
                // Only a tier-dispatched query can change its answer type;
                // an already-approximate tier has nothing to degrade to.
                if matches!(job.sink, Sink::Tiered(_))
                    && !matches!(job.tier, QueryTier::Approximate { .. })
                {
                    job.tier = QueryTier::Approximate {
                        budget: admission.degrade_budget,
                    };
                    live.degraded_to_approx.inc();
                }
            }
            Verdict::Reject(err) => {
                live.reject(&err);
                job.sink.reject(err);
                continue;
            }
        }
        if let Err(err) = validate_query(engine, &job) {
            live.reject(&err);
            job.sink.reject(err);
            continue;
        }
        // Resolve the tier.  The Auto decision depends only on dataset
        // statistics and k, so it is made once per job at dispatch time and
        // the job then batches with its resolved tier.  The cost probe runs
        // the same engine machinery as a query (merged-engine build, shared
        // prep), so it gets the same panic guard.
        let auto = matches!(job.tier, QueryTier::Auto { .. });
        let budget = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.tier.resolve(|| engine.estimated_cost(job.k))
        })) {
            Ok(budget) => budget,
            Err(_) => {
                live.reject(&ServeError::QueryFailed);
                job.sink.reject(ServeError::QueryFailed);
                continue;
            }
        };
        job.trace.stamp(Stage::Admission);
        let routed = Routed {
            focal: job.focal,
            sink: job.sink,
            auto,
            trace: job.trace,
            tier,
            algorithm: job.algorithm,
        };
        match budget {
            None => {
                let key = (job.algorithm, job.k);
                match exact_groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, group)) => group.push(routed),
                    None => exact_groups.push((key, vec![routed])),
                }
            }
            Some(budget) => {
                let key = approx_key(job.k, &budget);
                match approx_groups.iter_mut().find(|((k, _), _)| *k == key) {
                    Some((_, group)) => group.push(routed),
                    None => approx_groups.push(((key, budget), vec![routed])),
                }
            }
        }
    }

    for ((algorithm, k), group) in exact_groups {
        let auto_routed = group.iter().filter(|j| j.auto).count() as u64;
        // Between the Admission and Batch stamps the job waited for its
        // group to assemble (and for earlier groups to run).
        let mut focals = Vec::with_capacity(group.len());
        let mut rest = Vec::with_capacity(group.len());
        for mut job in group {
            job.trace.stamp(Stage::Batch);
            focals.push(job.focal);
            rest.push((job.sink, job.trace, job.tier));
        }
        // The dispatcher grants each query in the batch its intra-query
        // worker share: the engines resolve the same grant internally
        // (`KsprConfig::resolve_intra_workers` over the batch width), this
        // mirrors it into the serving stats.  LP-CTA is always granted one
        // worker — its look-ahead bound reports depend on expansion order,
        // so the engine routes it through the sequential path.
        let intra_grant = if algorithm == Algorithm::LpCta {
            1
        } else {
            engine.config().resolve_intra_workers(focals.len())
        };
        // Defense in depth: a panic inside the engine must not take the
        // dispatcher thread (and with it every pending ticket) down.  The
        // engine's caches recover from lock poisoning by rebuilding, so
        // serving continues after a failed batch.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_batch(algorithm, &focals, k)
        }));
        match outcome {
            Ok(results) => {
                // One Engine stamp per job as the group's run returns, so
                // the per-job ack work below lands in the Ack stage.  The
                // returned span ids anchor the per-phase child spans.
                let engine_spans: Vec<Option<SpanId>> = rest
                    .iter_mut()
                    .map(|(_, trace, _)| trace.stamp(Stage::Engine))
                    .collect();
                live.batches.inc();
                live.queries.add(focals.len() as u64);
                live.exact_queries.add(focals.len() as u64);
                live.auto_routed_exact.add(auto_routed);
                live.largest_batch.record(focals.len());
                live.largest_intra_grant.record(intra_grant);
                if intra_grant > 1 {
                    live.parallel_batches.inc();
                }
                for (((sink, mut trace, tier), result), engine_span) in
                    rest.into_iter().zip(results).zip(engine_spans)
                {
                    trace.stamp(Stage::Ack);
                    if let Some(engine_span) = engine_span {
                        add_engine_phase_spans(&mut trace, engine_span, &result.stats);
                    }
                    let stages = trace.timings();
                    metrics.record_stages(&stages, &QUERY_STAGES);
                    metrics.record_phases(&result.stats);
                    let total_ns = trace.total_nanos();
                    let trace_id = metrics.finish_trace(trace, total_ns);
                    metrics.record_query(SlowQuery {
                        algorithm,
                        k,
                        tier,
                        total_ns,
                        stages,
                        stats: Some(result.stats.clone()),
                        trace_id,
                    });
                    sink.send_exact(result);
                }
            }
            Err(_) => {
                for (sink, _, _) in rest {
                    live.reject(&ServeError::QueryFailed);
                    sink.reject(ServeError::QueryFailed);
                }
            }
        }
    }

    for (((k, _, _), budget), group) in approx_groups {
        let auto_routed = group.iter().filter(|j| j.auto).count() as u64;
        let mut focals = Vec::with_capacity(group.len());
        let mut rest = Vec::with_capacity(group.len());
        for mut job in group {
            job.trace.stamp(Stage::Batch);
            focals.push(job.focal);
            rest.push((job.sink, job.trace, job.tier, job.algorithm));
        }
        let seed = *approx_seed;
        *approx_seed = approx_seed.wrapping_add(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_approx_batch(&focals, k, &budget, seed)
        }));
        match outcome {
            Ok(estimates) => {
                for (_, trace, _, _) in &mut rest {
                    trace.stamp(Stage::Engine);
                }
                live.batches.inc();
                live.queries.add(focals.len() as u64);
                live.approx_queries.add(focals.len() as u64);
                live.auto_routed_approx.add(auto_routed);
                live.largest_batch.record(focals.len());
                for ((sink, mut trace, tier, algorithm), estimate) in
                    rest.into_iter().zip(estimates)
                {
                    trace.stamp(Stage::Ack);
                    let stages = trace.timings();
                    metrics.record_stages(&stages, &QUERY_STAGES);
                    let total_ns = trace.total_nanos();
                    let trace_id = metrics.finish_trace(trace, total_ns);
                    metrics.record_query(SlowQuery {
                        algorithm,
                        k,
                        tier,
                        total_ns,
                        stages,
                        // The sampler reports no QueryStats: the estimate
                        // *is* its whole answer.
                        stats: None,
                        trace_id,
                    });
                    sink.send_approx(estimate);
                }
            }
            Err(_) => {
                for (sink, _, _, _) in rest {
                    live.reject(&ServeError::QueryFailed);
                    sink.reject(ServeError::QueryFailed);
                }
            }
        }
    }
}
