//! Serving-side counters: per-variant rejection counts and the aggregate
//! [`ServeStats`] every layer of the stack reports into.

use crate::error::ServeError;
use kspr_monitor::MonitorStats;

/// Per-[`ServeError`]-variant rejection counters (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionStats {
    /// Requests with `k == 0`.
    pub invalid_k: u64,
    /// Requests whose arity does not match the dataset.
    pub arity_mismatch: u64,
    /// Requests containing NaN / infinite values.
    pub non_finite: u64,
    /// Requests whose error budget is malformed or too fine to sample for.
    pub invalid_budget: u64,
    /// Requests for an algorithm the dataset (or the monitor) cannot serve.
    pub unsupported_algorithm: u64,
    /// Queries lost to an engine panic (the server kept serving).
    pub query_failed: u64,
    /// Updates lost to an engine panic or a failed WAL commit (the server
    /// stopped).
    pub update_failed: u64,
    /// Queries admission control turned away: the pending queue was past
    /// its hard depth limit (see [`crate::AdmissionOptions::hard_limit`]).
    pub overloaded: u64,
    /// Queries admission control turned away: the submitting client was
    /// past its in-flight quota (see
    /// [`crate::AdmissionOptions::client_quota`]).
    pub quota_exceeded: u64,
    /// Requests still pending when the server shut down, drained and
    /// resolved with [`ServeError::Shutdown`] instead of left to observe a
    /// dead channel.
    pub shutdown: u64,
    /// Requests that raced the shutdown (normally unreachable: the
    /// dispatcher never *answers* with this variant, clients synthesize it
    /// when the channel is gone).
    pub server_closed: u64,
}

/// Number of [`ServeError`] variants (= entries of
/// [`RejectionStats::variants`]).
pub const REJECTION_VARIANTS: usize = 11;

impl RejectionStats {
    /// Every per-variant counter as `(name, count)`, in declaration order.
    ///
    /// The exhaustive destructure is the point: adding a `ServeError`
    /// variant without listing its counter here fails to compile, so
    /// [`RejectionStats::total`] (a sum over this listing) can never
    /// silently under-count.
    pub fn variants(&self) -> [(&'static str, u64); REJECTION_VARIANTS] {
        let Self {
            invalid_k,
            arity_mismatch,
            non_finite,
            invalid_budget,
            unsupported_algorithm,
            query_failed,
            update_failed,
            overloaded,
            quota_exceeded,
            shutdown,
            server_closed,
        } = *self;
        [
            ("invalid_k", invalid_k),
            ("arity_mismatch", arity_mismatch),
            ("non_finite", non_finite),
            ("invalid_budget", invalid_budget),
            ("unsupported_algorithm", unsupported_algorithm),
            ("query_failed", query_failed),
            ("update_failed", update_failed),
            ("overloaded", overloaded),
            ("quota_exceeded", quota_exceeded),
            ("shutdown", shutdown),
            ("server_closed", server_closed),
        ]
    }

    /// Total rejections across all variants.
    pub fn total(&self) -> u64 {
        self.variants().iter().map(|&(_, count)| count).sum()
    }

    /// Index of `err`'s counter in [`RejectionStats::variants`] order (the
    /// live atomic mirror of the dispatcher counts through this).
    pub(crate) fn index_of(err: &ServeError) -> usize {
        match err {
            ServeError::InvalidK => 0,
            ServeError::ArityMismatch { .. } => 1,
            ServeError::NonFinite => 2,
            ServeError::InvalidBudget => 3,
            ServeError::UnsupportedAlgorithm => 4,
            ServeError::QueryFailed => 5,
            ServeError::UpdateFailed => 6,
            ServeError::Overloaded => 7,
            ServeError::QuotaExceeded => 8,
            ServeError::Shutdown => 9,
            ServeError::ServerClosed => 10,
        }
    }

    /// Rebuilds the per-variant counters from values listed in
    /// [`RejectionStats::variants`] order.
    pub(crate) fn from_counts(counts: [u64; REJECTION_VARIANTS]) -> Self {
        let [invalid_k, arity_mismatch, non_finite, invalid_budget, unsupported_algorithm, query_failed, update_failed, overloaded, quota_exceeded, shutdown, server_closed] =
            counts;
        Self {
            invalid_k,
            arity_mismatch,
            non_finite,
            invalid_budget,
            unsupported_algorithm,
            query_failed,
            update_failed,
            overloaded,
            quota_exceeded,
            shutdown,
            server_closed,
        }
    }
}

/// Serving-side counters, returned by [`crate::Server::shutdown`] and
/// readable live through [`crate::ServeHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries answered by the exact engine (always:
    /// `exact_queries + approx_queries == queries`).
    pub exact_queries: u64,
    /// Queries answered by the approximate tier.
    pub approx_queries: u64,
    /// `Auto`-tier queries the cost estimate routed to the exact engine
    /// (a subset of `exact_queries`).
    pub auto_routed_exact: u64,
    /// `Auto`-tier queries the cost estimate routed to sampling (a subset
    /// of `approx_queries`).
    pub auto_routed_approx: u64,
    /// Tier-dispatched queries admission control downgraded from an
    /// exact-capable tier to `Approximate` because the pending queue was
    /// past the degradation watermark (a subset of `approx_queries`; see
    /// [`crate::AdmissionOptions::degrade_watermark`]).
    pub degraded_to_approx: u64,
    /// Requests rejected with a [`ServeError`] (total; always equals
    /// [`RejectionStats::total`] of `rejections`).
    pub rejected: u64,
    /// Rejections broken down by error variant.
    pub rejections: RejectionStats,
    /// `run_batch` invocations (every batch answers >= 1 query).
    pub batches: u64,
    /// Largest query batch executed at once.
    pub largest_batch: usize,
    /// Largest per-query intra-query worker grant the dispatcher made to an
    /// exact batch.  The grant is [`kspr::KsprConfig::resolve_intra_workers`]
    /// over the batch width — explicit `intra_query_threads` wins, `0`
    /// divides the machine's cores across the batch — except for LP-CTA
    /// batches, which are always granted 1 worker per query (the look-ahead
    /// bound reports are expansion-order-sensitive, so LP-CTA expands its
    /// cell tree sequentially; see `kspr::engine`).
    pub largest_intra_grant: usize,
    /// Exact batches answered with an intra-query worker grant above 1
    /// (a subset of `batches`).
    pub parallel_batches: u64,
    /// Updates (inserts + deletes) applied — and, on a durable server,
    /// committed to the WAL before their tickets were acknowledged.
    pub updates: u64,
    /// Update-maintenance batches the dispatcher drained (each covers >= 1
    /// applied update; bounded by
    /// [`kspr::KsprConfig::monitor_batch_window`]).
    pub update_batches: u64,
    /// Largest number of updates drained into one maintenance batch.
    pub largest_update_batch: usize,
    /// WAL commits (group fsyncs) issued — at most one per update batch,
    /// plus one per subscribe/unsubscribe registry change; zero on a
    /// non-durable server.
    pub wal_commits: u64,
    /// Epoch snapshots installed while serving (after compactions and at
    /// clean shutdown; zero on a non-durable server).
    pub snapshots: u64,
    /// Tombstone compactions the dispatcher triggered (dead record slots
    /// exceeded half the id space after an update batch; see
    /// [`crate::ShardedEngine::compact`]).
    pub compactions: u64,
    /// Standing queries registered over the server's lifetime.
    pub subscriptions: u64,
    /// [`kspr_monitor::ResultDelta`] notifications delivered to subscribers.
    pub notifications: u64,
    /// Notifications merged into an already-pending delta because a slow
    /// subscriber let its queue reach [`crate::MAX_PENDING_DELTAS`] (a
    /// subset of `notifications`).
    pub deltas_coalesced: u64,
    /// Approximate standing queries registered over the server's lifetime.
    pub approx_subscriptions: u64,
    /// [`crate::ApproxDelta`] notifications (re-drawn estimates) delivered.
    pub approx_notifications: u64,
    /// (update, approximate standing query) pairs whose estimate stayed
    /// valid because the update provably preserved the true impact (the
    /// witness classifier of `kspr-monitor`).
    pub approx_watch_unaffected: u64,
    /// Standing-query maintenance passes that panicked after a committed
    /// update.  Each one invalidated the registry (subscribers must
    /// re-subscribe); the update itself succeeded, so these are *not*
    /// rejections.
    pub maintenance_failures: u64,
    /// Standing-query classification counters (see `kspr-monitor`).
    pub monitor: MonitorStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_the_sum_over_variants() {
        // Distinct primes per field, so a swapped or dropped counter in
        // `variants()` cannot cancel out.
        let counts: [u64; REJECTION_VARIANTS] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31];
        let stats = RejectionStats::from_counts(counts);
        let variants = stats.variants();
        assert_eq!(
            stats.total(),
            variants.iter().map(|&(_, count)| count).sum::<u64>()
        );
        assert_eq!(stats.total(), counts.iter().sum::<u64>());
        // The listing preserves declaration order and hits every field.
        assert_eq!(
            variants.map(|(_, count)| count),
            counts,
            "variants() must export the counters in declaration order"
        );
        let names: Vec<&str> = variants.iter().map(|&(name, _)| name).collect();
        assert_eq!(names.len(), REJECTION_VARIANTS);
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "variant names must be distinct");
    }

    #[test]
    fn every_error_variant_maps_to_its_counter() {
        let errors = [
            ServeError::InvalidK,
            ServeError::ArityMismatch {
                expected: 3,
                got: 2,
            },
            ServeError::NonFinite,
            ServeError::InvalidBudget,
            ServeError::UnsupportedAlgorithm,
            ServeError::QueryFailed,
            ServeError::UpdateFailed,
            ServeError::Overloaded,
            ServeError::QuotaExceeded,
            ServeError::Shutdown,
            ServeError::ServerClosed,
        ];
        assert_eq!(errors.len(), REJECTION_VARIANTS);
        let mut counts = [0u64; REJECTION_VARIANTS];
        for err in &errors {
            counts[RejectionStats::index_of(err)] += 1;
        }
        let stats = RejectionStats::from_counts(counts);
        assert_eq!(stats.total(), errors.len() as u64);
        for (name, count) in stats.variants() {
            assert_eq!(count, 1, "variant {name} must count exactly once");
        }
    }
}
