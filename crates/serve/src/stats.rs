//! Serving-side counters: per-variant rejection counts and the aggregate
//! [`ServeStats`] every layer of the stack reports into.

use crate::error::ServeError;
use kspr_monitor::MonitorStats;

/// Per-[`ServeError`]-variant rejection counters (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionStats {
    /// Requests with `k == 0`.
    pub invalid_k: u64,
    /// Requests whose arity does not match the dataset.
    pub arity_mismatch: u64,
    /// Requests containing NaN / infinite values.
    pub non_finite: u64,
    /// Requests whose error budget is malformed or too fine to sample for.
    pub invalid_budget: u64,
    /// Requests for an algorithm the dataset (or the monitor) cannot serve.
    pub unsupported_algorithm: u64,
    /// Queries lost to an engine panic (the server kept serving).
    pub query_failed: u64,
    /// Updates lost to an engine panic or a failed WAL commit (the server
    /// stopped).
    pub update_failed: u64,
    /// Queries admission control turned away: the pending queue was past
    /// its hard depth limit (see [`crate::AdmissionOptions::hard_limit`]).
    pub overloaded: u64,
    /// Queries admission control turned away: the submitting client was
    /// past its in-flight quota (see
    /// [`crate::AdmissionOptions::client_quota`]).
    pub quota_exceeded: u64,
    /// Requests still pending when the server shut down, drained and
    /// resolved with [`ServeError::Shutdown`] instead of left to observe a
    /// dead channel.
    pub shutdown: u64,
    /// Requests that raced the shutdown (normally unreachable: the
    /// dispatcher never *answers* with this variant, clients synthesize it
    /// when the channel is gone).
    pub server_closed: u64,
}

impl RejectionStats {
    /// Total rejections across all variants.
    pub fn total(&self) -> u64 {
        self.invalid_k
            + self.arity_mismatch
            + self.non_finite
            + self.invalid_budget
            + self.unsupported_algorithm
            + self.query_failed
            + self.update_failed
            + self.overloaded
            + self.quota_exceeded
            + self.shutdown
            + self.server_closed
    }

    /// Counts one rejection under its variant.
    pub(crate) fn count(&mut self, err: &ServeError) {
        match err {
            ServeError::InvalidK => self.invalid_k += 1,
            ServeError::ArityMismatch { .. } => self.arity_mismatch += 1,
            ServeError::NonFinite => self.non_finite += 1,
            ServeError::InvalidBudget => self.invalid_budget += 1,
            ServeError::UnsupportedAlgorithm => self.unsupported_algorithm += 1,
            ServeError::QueryFailed => self.query_failed += 1,
            ServeError::UpdateFailed => self.update_failed += 1,
            ServeError::Overloaded => self.overloaded += 1,
            ServeError::QuotaExceeded => self.quota_exceeded += 1,
            ServeError::Shutdown => self.shutdown += 1,
            ServeError::ServerClosed => self.server_closed += 1,
        }
    }
}

/// Serving-side counters, returned by [`crate::Server::shutdown`] and
/// readable live through [`crate::ServeHandle::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries answered by the exact engine (always:
    /// `exact_queries + approx_queries == queries`).
    pub exact_queries: u64,
    /// Queries answered by the approximate tier.
    pub approx_queries: u64,
    /// `Auto`-tier queries the cost estimate routed to the exact engine
    /// (a subset of `exact_queries`).
    pub auto_routed_exact: u64,
    /// `Auto`-tier queries the cost estimate routed to sampling (a subset
    /// of `approx_queries`).
    pub auto_routed_approx: u64,
    /// Tier-dispatched queries admission control downgraded from an
    /// exact-capable tier to `Approximate` because the pending queue was
    /// past the degradation watermark (a subset of `approx_queries`; see
    /// [`crate::AdmissionOptions::degrade_watermark`]).
    pub degraded_to_approx: u64,
    /// Requests rejected with a [`ServeError`] (total; always equals
    /// [`RejectionStats::total`] of `rejections`).
    pub rejected: u64,
    /// Rejections broken down by error variant.
    pub rejections: RejectionStats,
    /// `run_batch` invocations (every batch answers >= 1 query).
    pub batches: u64,
    /// Largest query batch executed at once.
    pub largest_batch: usize,
    /// Largest per-query intra-query worker grant the dispatcher made to an
    /// exact batch.  The grant is [`kspr::KsprConfig::resolve_intra_workers`]
    /// over the batch width — explicit `intra_query_threads` wins, `0`
    /// divides the machine's cores across the batch — except for LP-CTA
    /// batches, which are always granted 1 worker per query (the look-ahead
    /// bound reports are expansion-order-sensitive, so LP-CTA expands its
    /// cell tree sequentially; see `kspr::engine`).
    pub largest_intra_grant: usize,
    /// Exact batches answered with an intra-query worker grant above 1
    /// (a subset of `batches`).
    pub parallel_batches: u64,
    /// Updates (inserts + deletes) applied — and, on a durable server,
    /// committed to the WAL before their tickets were acknowledged.
    pub updates: u64,
    /// Update-maintenance batches the dispatcher drained (each covers >= 1
    /// applied update; bounded by
    /// [`kspr::KsprConfig::monitor_batch_window`]).
    pub update_batches: u64,
    /// Largest number of updates drained into one maintenance batch.
    pub largest_update_batch: usize,
    /// WAL commits (group fsyncs) issued — at most one per update batch,
    /// plus one per subscribe/unsubscribe registry change; zero on a
    /// non-durable server.
    pub wal_commits: u64,
    /// Epoch snapshots installed while serving (after compactions and at
    /// clean shutdown; zero on a non-durable server).
    pub snapshots: u64,
    /// Tombstone compactions the dispatcher triggered (dead record slots
    /// exceeded half the id space after an update batch; see
    /// [`crate::ShardedEngine::compact`]).
    pub compactions: u64,
    /// Standing queries registered over the server's lifetime.
    pub subscriptions: u64,
    /// [`kspr_monitor::ResultDelta`] notifications delivered to subscribers.
    pub notifications: u64,
    /// Notifications merged into an already-pending delta because a slow
    /// subscriber let its queue reach [`crate::MAX_PENDING_DELTAS`] (a
    /// subset of `notifications`).
    pub deltas_coalesced: u64,
    /// Approximate standing queries registered over the server's lifetime.
    pub approx_subscriptions: u64,
    /// [`crate::ApproxDelta`] notifications (re-drawn estimates) delivered.
    pub approx_notifications: u64,
    /// (update, approximate standing query) pairs whose estimate stayed
    /// valid because the update provably preserved the true impact (the
    /// witness classifier of `kspr-monitor`).
    pub approx_watch_unaffected: u64,
    /// Standing-query maintenance passes that panicked after a committed
    /// update.  Each one invalidated the registry (subscribers must
    /// re-subscribe); the update itself succeeded, so these are *not*
    /// rejections.
    pub maintenance_failures: u64,
    /// Standing-query classification counters (see `kspr-monitor`).
    pub monitor: MonitorStats,
}

impl ServeStats {
    /// Counts one rejection (total + per-variant).
    pub(crate) fn reject(&mut self, err: &ServeError) {
        self.rejected += 1;
        self.rejections.count(err);
    }
}
