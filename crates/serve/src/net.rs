//! The wire front-end: a blocking TCP server translating `kspr-wire`
//! frames into [`ServeHandle`] calls.
//!
//! [`NetServer::bind`] spawns an accept loop; every connection gets its own
//! thread and — via [`ServeHandle::fork_client`] — its own admission
//! identity, so one greedy connection exhausts *its* quota, not its
//! neighbours'.  The protocol is strict request/response: one
//! [`kspr_wire::WireRequest`] frame in, one [`kspr_wire::WireResponse`]
//! frame out, in order.  Standing queries are connection-scoped: the
//! `Subscribed` token only means something on the connection that created
//! it, and dropping the connection unregisters everything it still holds
//! (the [`Subscription`] drop glue).
//!
//! Exact results cross the wire as summaries (region count, whole-space
//! flag, rank signature) — the quantities the repo's consistency suites
//! compare — not as region geometry.

use crate::error::ServeError;
use crate::server::ServeHandle;
use crate::subscription::Subscription;
use crate::telemetry::next_server_trace_id;
use kspr::Algorithm;
use kspr_approx::TieredResult;
use kspr_telemetry::{RequestTrace, TraceId};
use kspr_wire::{
    read_frame, read_frame_body, write_frame, ApproxSummary, ErrorCode, FrameError,
    HistogramSummary, MetricsReport, ResultSummary, WireRequest, WireResponse, LEGACY_WIRE_VERSION,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP front-end over a [`crate::Server`]'s handle.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` and starts accepting connections, each served on its
    /// own thread against a [`ServeHandle::fork_client`] of `handle`.
    /// Bind to port 0 to let the OS pick (see [`NetServer::local_addr`]).
    pub fn bind(handle: ServeHandle, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let handle = handle.fork_client();
                    std::thread::spawn(move || serve_connection(handle, stream));
                }
            })
        };
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// Connections already established keep running until their peers hang
    /// up (their handles outlive the front-end, not the [`crate::Server`]).
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks inside `incoming`; poke it awake with a
        // throwaway connection so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One connection's request/response loop.
///
/// The first four bytes decide the dialect: `b"GET "` means a plaintext
/// HTTP client (curl, a Prometheus scraper) asking for the text metrics
/// exposition, anything else is the little-endian length prefix of a
/// `kspr-wire` frame and starts the normal framed loop.
fn serve_connection(handle: ServeHandle, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut sniff = [0u8; 4];
    if reader.read_exact(&mut sniff).is_err() {
        return;
    }
    if &sniff == b"GET " {
        serve_scrape(&handle, reader, writer);
        return;
    }
    // Connection-scoped standing queries: token -> live subscription.
    // Dropping the map at connection end unregisters them all.
    let mut subs: HashMap<u64, Subscription> = HashMap::new();
    // The sniffed bytes were the first frame's length prefix.
    let mut first = Some(u32::from_le_bytes(sniff));
    loop {
        let frame = match first.take() {
            Some(len) => read_frame_body(&mut reader, len),
            None => read_frame(&mut reader),
        };
        let payload = match frame {
            Ok(payload) => payload,
            // Includes clean EOF — the peer hung up.
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Oversized(_)) | Err(FrameError::Malformed) => {
                // The stream is no longer frame-aligned; report and close.
                let resp = error_response(ErrorCode::Malformed, "oversized or malformed frame");
                let _ = write_frame(&mut writer, &resp.encode());
                return;
            }
        };
        // Respond in the dialect the request arrived in: a legacy (v1)
        // frame gets a legacy response; a current frame gets the client's
        // trace id echoed back (or none, if it sent none).
        let legacy = payload.first() == Some(&LEGACY_WIRE_VERSION);
        let (response, echo) = match WireRequest::decode_traced(&payload) {
            None => (
                error_response(ErrorCode::Malformed, "payload decoded to no valid request"),
                None,
            ),
            Some((request, client_id)) => {
                // A client-supplied trace id pins the span tree into the
                // flight recorder; otherwise the request runs under a
                // server-assigned id and is only retained when slow.
                let mut trace = match client_id {
                    Some(id) => RequestTrace::traced(TraceId(id), true),
                    None => RequestTrace::traced(next_server_trace_id(), false),
                };
                trace.span("wire");
                (answer(&handle, &mut subs, request, trace), client_id)
            }
        };
        let encoded = if legacy {
            response.encode_legacy()
        } else {
            response.encode_traced(echo)
        };
        if write_frame(&mut writer, &encoded).is_err() {
            return;
        }
    }
}

/// Answers one HTTP GET and closes: `/trace` serves the flight recorder's
/// retained span trees as Chrome Trace Event Format JSON (load it in
/// `chrome://tracing` or Perfetto), every other path serves the Prometheus
/// text exposition.
///
/// Deliberately minimal: the request headers are drained and ignored and
/// the response closes the connection — exactly what a scrape loop or
/// `curl` needs, with no HTTP machinery the serving stack would otherwise
/// never use.
fn serve_scrape(handle: &ServeHandle, reader: BufReader<TcpStream>, mut writer: TcpStream) {
    let mut reader = reader;
    let mut line = String::new();
    // The dialect sniff already consumed `GET `, so the first line read is
    // the rest of the request line: `<path> HTTP/1.1`.
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let path = line.split_whitespace().next().unwrap_or("");
    let trace = path == "/trace" || path.starts_with("/trace?");
    // Drain the remaining headers up to the blank line.
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let (content_type, body) = if trace {
        ("application/json", handle.chrome_trace())
    } else {
        (
            "text/plain; version=0.0.4",
            handle.metrics().render_prometheus(),
        )
    };
    let header = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = writer
        .write_all(header.as_bytes())
        .and_then(|()| writer.write_all(body.as_bytes()))
        .and_then(|()| writer.flush());
}

fn error_response(code: ErrorCode, message: impl Into<String>) -> WireResponse {
    WireResponse::Error {
        code,
        message: message.into(),
    }
}

/// Maps a serving rejection onto its wire error class.
fn error_of(err: ServeError) -> WireResponse {
    let code = match &err {
        ServeError::InvalidK
        | ServeError::ArityMismatch { .. }
        | ServeError::NonFinite
        | ServeError::InvalidBudget
        | ServeError::UnsupportedAlgorithm => ErrorCode::Invalid,
        ServeError::Overloaded => ErrorCode::Overloaded,
        ServeError::QuotaExceeded => ErrorCode::QuotaExceeded,
        ServeError::Shutdown | ServeError::ServerClosed => ErrorCode::Shutdown,
        ServeError::QueryFailed | ServeError::UpdateFailed => ErrorCode::Internal,
    };
    error_response(code, err.to_string())
}

/// Summarizes an exact result for the wire.
fn summarize(result: &kspr::KsprResult) -> ResultSummary {
    ResultSummary {
        num_regions: result.num_regions() as u64,
        whole_space: result.is_whole_space(),
        rank_signature: result
            .rank_signature()
            .into_iter()
            .map(|r| r as u64)
            .collect(),
    }
}

fn approx_summary(estimate: &kspr::ApproxImpact) -> ApproxSummary {
    ApproxSummary {
        impact: estimate.impact,
        half_width: estimate.half_width,
        samples: estimate.samples as u64,
    }
}

/// The stable name/value listing behind `WireRequest::Stats`.
fn stat_fields(stats: &crate::ServeStats) -> Vec<(String, u64)> {
    [
        ("queries", stats.queries),
        ("exact_queries", stats.exact_queries),
        ("approx_queries", stats.approx_queries),
        ("degraded_to_approx", stats.degraded_to_approx),
        ("rejected", stats.rejected),
        ("rejected_overloaded", stats.rejections.overloaded),
        ("rejected_quota", stats.rejections.quota_exceeded),
        ("rejected_shutdown", stats.rejections.shutdown),
        ("batches", stats.batches),
        ("updates", stats.updates),
        ("update_batches", stats.update_batches),
        ("wal_commits", stats.wal_commits),
        ("snapshots", stats.snapshots),
        ("compactions", stats.compactions),
        ("subscriptions", stats.subscriptions),
        ("notifications", stats.notifications),
    ]
    .into_iter()
    .map(|(name, value)| (name.to_owned(), value))
    .collect()
}

/// Serves one decoded request through the handle.  `trace` rides along
/// into the dispatcher on the submission paths (query / tiered / insert /
/// delete) so the whole request becomes one span tree; the control-plane
/// requests answer inline and drop it.
fn answer(
    handle: &ServeHandle,
    subs: &mut HashMap<u64, Subscription>,
    request: WireRequest,
    trace: RequestTrace,
) -> WireResponse {
    match request {
        WireRequest::Ping => WireResponse::Pong,
        WireRequest::Query {
            algorithm,
            focal,
            k,
        } => match handle
            .submit_with_trace(algorithm, focal, k as usize, trace)
            .wait()
        {
            Ok(result) => WireResponse::Result(summarize(&result)),
            Err(err) => error_of(err),
        },
        WireRequest::Tiered {
            algorithm,
            focal,
            k,
            tier,
        } => {
            let Some(tier) = tier.to_tier() else {
                return error_response(ErrorCode::Invalid, "the tier's budget is malformed");
            };
            match handle
                .submit_tiered_trace(algorithm, focal, k as usize, tier, trace)
                .wait()
            {
                Ok(TieredResult::Exact(result)) => WireResponse::Result(summarize(&result)),
                Ok(TieredResult::Approximate(estimate)) => {
                    WireResponse::Approx(approx_summary(&estimate))
                }
                Err(err) => error_of(err),
            }
        }
        WireRequest::Insert { values } => match handle.insert_trace(values, trace).wait() {
            Ok(id) => WireResponse::Inserted { id: id as u64 },
            Err(err) => error_of(err),
        },
        WireRequest::Delete { id } => match handle.delete_trace(id as usize, trace).wait() {
            Ok(removed) => WireResponse::Deleted { removed },
            Err(err) => error_of(err),
        },
        WireRequest::Subscribe {
            algorithm,
            focal,
            k,
        } => match subscribe(handle, algorithm, focal, k as usize) {
            Ok(sub) => {
                let token = sub.id();
                let initial = summarize(sub.initial());
                subs.insert(token, sub);
                WireResponse::Subscribed { token, initial }
            }
            Err(err) => error_of(err),
        },
        WireRequest::Unsubscribe { token } => match subs.remove(&token) {
            Some(sub) => {
                // Unregister synchronously so a Subscriptions probe right
                // after the response never sees the dying registration
                // (the drop glue alone is fire-and-forget).
                let removed = handle.unsubscribe(sub.id()).wait().unwrap_or(false);
                WireResponse::Unsubscribed { removed }
            }
            None => error_response(ErrorCode::UnknownToken, format!("unknown token {token}")),
        },
        WireRequest::PollDeltas { token } => match subs.get(&token) {
            Some(sub) => WireResponse::Deltas {
                summaries: sub
                    .poll()
                    .into_iter()
                    .map(|delta| ResultSummary {
                        num_regions: delta.regions_after as u64,
                        // Deltas carry counts and ranks, not geometry; the
                        // whole-space flag is not maintained across updates.
                        whole_space: false,
                        rank_signature: delta.ranks_after.into_iter().map(|r| r as u64).collect(),
                    })
                    .collect(),
                closed: false,
            },
            None => error_response(ErrorCode::UnknownToken, format!("unknown token {token}")),
        },
        WireRequest::Subscriptions => match handle.subscriptions().wait() {
            Ok(count) => WireResponse::Count {
                value: count as u64,
            },
            Err(err) => error_of(err),
        },
        WireRequest::Stats => WireResponse::Stats {
            // Served from the shared atomic mirror: no round-trip through
            // the dispatcher queue, so a stats probe is never stuck behind
            // a long batch.
            fields: stat_fields(&handle.stats_now()),
        },
        WireRequest::Metrics => {
            let snap = handle.metrics();
            let histograms = snap
                .histograms
                .iter()
                .map(|(name, h)| HistogramSummary {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.p50(),
                    p90: h.p90(),
                    p99: h.p99(),
                    max: h.max(),
                })
                .collect();
            WireResponse::Metrics(MetricsReport {
                counters: snap.counters,
                gauges: snap.gauges,
                histograms,
            })
        }
    }
}

fn subscribe(
    handle: &ServeHandle,
    algorithm: Algorithm,
    focal: Vec<f64>,
    k: usize,
) -> Result<Subscription, ServeError> {
    handle.subscribe_with(algorithm, focal, k).wait()
}
