//! Client-side subscription objects and the bounded, coalescing delta
//! queues connecting them to the dispatcher.

use crate::dispatch::Msg;
use crate::error::ServeError;
use kspr::{ApproxImpact, ErrorBudget, KsprResult};
use kspr_monitor::{QueryId, ResultDelta, UpdateClass};
use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};

/// Identifier of an approximate standing query (dense, never reused;
/// separate id space from the exact registry's [`QueryId`]).
pub type ApproxWatchId = u64;

/// Change notification of an approximate standing query: the estimate was
/// redrawn because an update possibly moved the true impact.
#[derive(Debug, Clone)]
pub struct ApproxDelta {
    /// The approximate standing query that was re-estimated.
    pub query: ApproxWatchId,
    /// The estimate before the update.
    pub before: ApproxImpact,
    /// The freshly drawn estimate, valid for the post-update state.
    pub after: ApproxImpact,
}

/// One approximate standing query held by the dispatcher: the request, the
/// current estimate, and the delta channel.
pub(crate) struct ApproxStanding {
    pub(crate) focal: Vec<f64>,
    pub(crate) k: usize,
    pub(crate) budget: ErrorBudget,
    pub(crate) estimate: ApproxImpact,
    pub(crate) deltas: mpsc::Sender<ApproxDelta>,
}

/// Upper bound on the [`ResultDelta`]s a single [`Subscription`] may hold
/// pending.  A subscriber that stops draining its notifications would
/// otherwise grow dispatcher memory without bound (the monitor keeps
/// emitting deltas for every update); past this bound newer deltas are
/// **coalesced** into the newest pending one instead of enqueued — deltas
/// chain (`after` of one is `before` of the next), so merging keeps the
/// oldest `before` and newest `after` state and loses nothing but the
/// intermediate steps.
pub const MAX_PENDING_DELTAS: usize = 64;

/// Outcome of a [`DeltaQueue::push`].
pub(crate) enum DeltaPush {
    /// Appended as a new pending delta.
    Queued,
    /// Merged into the newest pending delta (the queue was at
    /// [`MAX_PENDING_DELTAS`]).
    Coalesced,
    /// Dropped: the queue was closed (subscription unregistered or the
    /// registry invalidated).
    Closed,
}

/// The per-subscription notification queue: a bounded, coalescing channel
/// between the dispatcher (producer) and a [`Subscription`] (consumer).
pub(crate) struct DeltaQueue {
    state: Mutex<DeltaQueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct DeltaQueueState {
    pending: VecDeque<ResultDelta>,
    closed: bool,
}

impl DeltaQueue {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(DeltaQueueState::default()),
            ready: Condvar::new(),
        })
    }

    /// Enqueues a delta, coalescing it into the newest pending one when the
    /// subscriber has fallen [`MAX_PENDING_DELTAS`] behind.
    pub(crate) fn push(&self, delta: ResultDelta) -> DeltaPush {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return DeltaPush::Closed;
        }
        let outcome = if state.pending.len() >= MAX_PENDING_DELTAS {
            let tail = state.pending.back_mut().expect("the cap is at least 1");
            // Consecutive deltas of one query chain exactly: keep the
            // tail's (oldest) `before` state, take the newcomer's (newest)
            // `after` state.  A re-run anywhere in the merged span means
            // the surviving state was obtained through a re-run.
            if delta.class == UpdateClass::Rerun {
                tail.class = UpdateClass::Rerun;
            }
            tail.regions_after = delta.regions_after;
            tail.ranks_after = delta.ranks_after;
            DeltaPush::Coalesced
        } else {
            state.pending.push_back(delta);
            DeltaPush::Queued
        };
        drop(state);
        self.ready.notify_one();
        outcome
    }

    /// Closes the queue: pending deltas stay drainable, every later `push`
    /// is dropped, and a blocked [`DeltaQueue::pop`] wakes with `None`.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Non-blocking pop.
    pub(crate) fn try_pop(&self) -> Option<ResultDelta> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .pop_front()
    }

    /// Blocks until a delta is pending (or the queue closes: `None`).
    pub(crate) fn pop(&self) -> Option<ResultDelta> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(delta) = state.pending.pop_front() {
                return Some(delta);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A pending [`Subscription`]: resolves once the dispatcher has registered
/// (and initially answered) the standing query.
pub struct SubscribeTicket {
    pub(crate) rx: mpsc::Receiver<Result<(QueryId, KsprResult), ServeError>>,
    pub(crate) deltas: Arc<DeltaQueue>,
    pub(crate) control: mpsc::Sender<Msg>,
}

impl SubscribeTicket {
    /// Blocks until the standing query is registered (or rejected).
    pub fn wait(self) -> Result<Subscription, ServeError> {
        match self.rx.recv() {
            Ok(Ok((id, initial))) => Ok(Subscription {
                id,
                initial,
                deltas: self.deltas,
                control: self.control,
            }),
            Ok(Err(err)) => Err(err),
            Err(mpsc::RecvError) => Err(ServeError::ServerClosed),
        }
    }
}

/// A live standing query: holds the initial result and receives a
/// [`ResultDelta`] for every update batch that changed it.
///
/// At most [`MAX_PENDING_DELTAS`] notifications are held pending; a slower
/// consumer still sees a delta chain whose final `after` state is current,
/// with the oldest backlog steps merged together (see [`MAX_PENDING_DELTAS`]).
///
/// Dropping the subscription unregisters the standing query with the
/// dispatcher, freeing its maintenance state — a long-lived
/// [`crate::Server`] never accumulates state for subscribers that went
/// away.
pub struct Subscription {
    id: QueryId,
    initial: KsprResult,
    deltas: Arc<DeltaQueue>,
    control: mpsc::Sender<Msg>,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("initial_regions", &self.initial.num_regions())
            .finish_non_exhaustive()
    }
}

impl Subscription {
    /// The standing query's registry id (usable with
    /// [`crate::ServeHandle::unsubscribe`]).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The result at registration time; later states are communicated as
    /// deltas.
    pub fn initial(&self) -> &KsprResult {
        &self.initial
    }

    /// Drains every notification delivered so far without blocking.
    pub fn poll(&self) -> Vec<ResultDelta> {
        let mut out = Vec::new();
        while let Some(delta) = self.deltas.try_pop() {
            out.push(delta);
        }
        out
    }

    /// Blocks until the next notification.  `None` means this subscription
    /// will never be notified again: either the server shut down, or a
    /// maintenance pass failed and the dispatcher invalidated the standing
    /// registry (see the `server` module docs) — in the latter case the
    /// server is still serving and re-subscribing resumes watching.
    pub fn recv(&self) -> Option<ResultDelta> {
        self.deltas.pop()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Fire-and-forget: if the server is already gone the registry died
        // with it.
        let _ = self.control.send(Msg::Unsubscribe {
            id: self.id,
            tx: None,
        });
    }
}

/// A pending [`ApproxSubscription`]: resolves once the dispatcher has
/// registered (and initially estimated) the approximate standing query.
pub struct ApproxSubscribeTicket {
    pub(crate) rx: mpsc::Receiver<Result<(ApproxWatchId, ApproxImpact), ServeError>>,
    pub(crate) deltas: mpsc::Receiver<ApproxDelta>,
    pub(crate) control: mpsc::Sender<Msg>,
}

impl ApproxSubscribeTicket {
    /// Blocks until the standing query is registered (or rejected).
    pub fn wait(self) -> Result<ApproxSubscription, ServeError> {
        match self.rx.recv() {
            Ok(Ok((id, initial))) => Ok(ApproxSubscription {
                id,
                initial,
                deltas: self.deltas,
                control: self.control,
            }),
            Ok(Err(err)) => Err(err),
            Err(mpsc::RecvError) => Err(ServeError::ServerClosed),
        }
    }
}

/// A live approximate standing query: holds the initial estimate and
/// receives an [`ApproxDelta`] whenever an update forced a re-draw.
///
/// Dropping the subscription unregisters the standing query with the
/// dispatcher, freeing its maintenance state.
pub struct ApproxSubscription {
    id: ApproxWatchId,
    initial: ApproxImpact,
    deltas: mpsc::Receiver<ApproxDelta>,
    control: mpsc::Sender<Msg>,
}

impl std::fmt::Debug for ApproxSubscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApproxSubscription")
            .field("id", &self.id)
            .field("initial_impact", &self.initial.impact)
            .finish_non_exhaustive()
    }
}

impl ApproxSubscription {
    /// The standing query's registry id (usable with
    /// [`crate::ServeHandle::unsubscribe_approx`]).
    pub fn id(&self) -> ApproxWatchId {
        self.id
    }

    /// The estimate at registration time; later states arrive as deltas.
    pub fn initial(&self) -> &ApproxImpact {
        &self.initial
    }

    /// Drains every notification delivered so far without blocking.
    pub fn poll(&self) -> Vec<ApproxDelta> {
        let mut out = Vec::new();
        while let Ok(delta) = self.deltas.try_recv() {
            out.push(delta);
        }
        out
    }

    /// Blocks until the next notification; `None` means this subscription
    /// will never be notified again (server shutdown, or a failed
    /// maintenance pass invalidated the approximate registry — re-subscribe
    /// to resume watching).
    pub fn recv(&self) -> Option<ApproxDelta> {
        self.deltas.recv().ok()
    }
}

impl Drop for ApproxSubscription {
    fn drop(&mut self) {
        let _ = self.control.send(Msg::UnsubscribeApprox {
            id: self.id,
            tx: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_queue_caps_and_coalesces_slow_consumers() {
        let queue = DeltaQueue::new();
        let delta = |i: usize, class: UpdateClass| ResultDelta {
            query: 7,
            class,
            regions_before: i,
            regions_after: i + 1,
            ranks_before: vec![i],
            ranks_after: vec![i + 1],
        };
        for i in 0..MAX_PENDING_DELTAS {
            assert!(matches!(
                queue.push(delta(i, UpdateClass::Patched)),
                DeltaPush::Queued
            ));
        }
        // The queue is at its cap: further deltas merge into the newest
        // pending one, keeping its oldest `before` and the latest `after`.
        assert!(matches!(
            queue.push(delta(MAX_PENDING_DELTAS, UpdateClass::Rerun)),
            DeltaPush::Coalesced
        ));
        assert!(matches!(
            queue.push(delta(MAX_PENDING_DELTAS + 1, UpdateClass::Patched)),
            DeltaPush::Coalesced
        ));
        let mut drained = Vec::new();
        while let Some(d) = queue.try_pop() {
            drained.push(d);
        }
        assert_eq!(drained.len(), MAX_PENDING_DELTAS, "the cap held");
        let tail = drained.last().expect("cap is at least 1");
        assert_eq!(
            tail.regions_before,
            MAX_PENDING_DELTAS - 1,
            "the merged delta keeps the oldest before state"
        );
        assert_eq!(
            tail.regions_after,
            MAX_PENDING_DELTAS + 2,
            "the merged delta takes the newest after state"
        );
        assert_eq!(
            tail.class,
            UpdateClass::Rerun,
            "a re-run anywhere in the merged span survives later patches"
        );
        assert_eq!(tail.ranks_after, vec![MAX_PENDING_DELTAS + 2]);
        // The chain is still intact: the merged tail continues from the last
        // unmerged delta.
        assert_eq!(
            drained[drained.len() - 2].regions_after,
            tail.regions_before
        );
        // Closing keeps pending deltas drainable, drops later pushes, and
        // unblocks `pop`.
        assert!(matches!(
            queue.push(delta(0, UpdateClass::Patched)),
            DeltaPush::Queued
        ));
        queue.close();
        assert!(matches!(
            queue.push(delta(1, UpdateClass::Patched)),
            DeltaPush::Closed
        ));
        assert!(queue.pop().is_some(), "drained before the closed marker");
        assert!(queue.pop().is_none());
    }
}
