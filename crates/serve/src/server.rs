//! The serving front-end: a request queue feeding a dispatcher that batches
//! queries into [`ShardedEngine::run_batch`] and applies updates in arrival
//! order.
//!
//! [`Server::start`] moves a [`ShardedEngine`] onto a dispatcher thread and
//! returns a handle factory.  Clients talk to the engine exclusively through
//! cloneable [`ServeHandle`]s:
//!
//! * [`ServeHandle::submit`] enqueues one query and returns a [`Ticket`] —
//!   a future-like receiver resolved when the dispatcher answers;
//! * [`ServeHandle::submit_many`] enqueues a whole batch at once;
//! * [`ServeHandle::insert`] / [`ServeHandle::delete`] enqueue updates,
//!   serialized with the queries around them (a query submitted after an
//!   insert sees the inserted record).
//!
//! The dispatcher drains the queue greedily: consecutive pending queries are
//! grouped by `(algorithm, k)` and answered through one
//! [`ShardedEngine::run_batch`] call each — the batched-dequeue pattern —
//! while the shared candidate engine and the per-shard prep caches carry over
//! between batches.  Invalid requests (`k == 0`, arity mismatch, non-finite
//! focal values) are rejected with a [`ServeError`] instead of panicking the
//! serving thread.

use crate::sharded::ShardedEngine;
use kspr::{Algorithm, KsprResult, RecordId};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Why a request was rejected (or lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `k` must be at least 1.
    InvalidK,
    /// The focal record / inserted record does not match the dataset arity.
    ArityMismatch {
        /// The dataset arity.
        expected: usize,
        /// The request's arity.
        got: usize,
    },
    /// The request contains a NaN or infinite value.
    NonFinite,
    /// The requested algorithm cannot run on this dataset (RTOPK is
    /// 2-dimensional only).
    UnsupportedAlgorithm,
    /// The query panicked inside the engine; the server recovered and keeps
    /// serving (the engine caches rebuild themselves after a poisoning).
    QueryFailed,
    /// An update panicked inside the engine.  Unlike queries, a half-applied
    /// update is not rebuildable in place, so the server stops serving
    /// (subsequent tickets resolve [`ServeError::ServerClosed`] and
    /// [`Server::shutdown`] returns normally) rather than risk corrupt
    /// answers.
    UpdateFailed,
    /// The server shut down before (or while) answering.
    ServerClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidK => write!(f, "k must be at least 1"),
            ServeError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: got {got} attributes, dataset has {expected}"
                )
            }
            ServeError::NonFinite => write!(f, "values must be finite"),
            ServeError::UnsupportedAlgorithm => {
                write!(f, "the algorithm does not support this dataset's arity")
            }
            ServeError::QueryFailed => write!(f, "the query panicked inside the engine"),
            ServeError::UpdateFailed => {
                write!(
                    f,
                    "an update panicked inside the engine; the server stopped"
                )
            }
            ServeError::ServerClosed => write!(f, "the server has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A pending response: resolves once the dispatcher has processed the
/// request.  Dropping a ticket discards the response.
pub struct Ticket<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> Ticket<T> {
    fn new() -> (mpsc::Sender<Result<T, ServeError>>, Self) {
        let (tx, rx) = mpsc::channel();
        (tx, Ticket { rx })
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ServerClosed))
    }
}

/// One enqueued query.
struct QueryJob {
    algorithm: Algorithm,
    focal: Vec<f64>,
    k: usize,
    tx: mpsc::Sender<Result<KsprResult, ServeError>>,
}

enum Msg {
    Query(QueryJob),
    Batch(Vec<QueryJob>),
    Insert {
        values: Vec<f64>,
        tx: mpsc::Sender<Result<RecordId, ServeError>>,
    },
    Delete {
        id: RecordId,
        tx: mpsc::Sender<Result<bool, ServeError>>,
    },
    Shutdown,
}

/// Serving-side counters, returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Requests rejected with a [`ServeError`].
    pub rejected: u64,
    /// `run_batch` invocations (every batch answers >= 1 query).
    pub batches: u64,
    /// Largest query batch executed at once.
    pub largest_batch: usize,
    /// Updates (inserts + deletes) applied.
    pub updates: u64,
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Algorithm used by [`ServeHandle::submit`] (override per request with
    /// [`ServeHandle::submit_with`]).
    pub algorithm: Algorithm,
    /// Maximum number of queries merged into one `run_batch` call when
    /// draining the queue.  (An explicit [`ServeHandle::submit_many`] batch
    /// is always answered through a single call, whatever its size.)
    pub batch_limit: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::LpCta,
            batch_limit: 64,
        }
    }
}

/// A cloneable client handle onto a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
}

impl ServeHandle {
    /// Enqueues one query with the server's default algorithm.
    pub fn submit(&self, focal: Vec<f64>, k: usize) -> Ticket<KsprResult> {
        self.submit_with(self.algorithm, focal, k)
    }

    /// Enqueues one query with an explicit algorithm.
    pub fn submit_with(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Ticket<KsprResult> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Query(QueryJob {
            algorithm,
            focal,
            k,
            tx,
        }));
        ticket
    }

    /// Enqueues a whole batch of same-`k` queries at once; the dispatcher
    /// answers them through a single [`ShardedEngine::run_batch`] call.
    pub fn submit_many(&self, focals: Vec<Vec<f64>>, k: usize) -> Vec<Ticket<KsprResult>> {
        let mut jobs = Vec::with_capacity(focals.len());
        let mut tickets = Vec::with_capacity(focals.len());
        for focal in focals {
            let (tx, ticket) = Ticket::new();
            jobs.push(QueryJob {
                algorithm: self.algorithm,
                focal,
                k,
                tx,
            });
            tickets.push(ticket);
        }
        let _ = self.tx.send(Msg::Batch(jobs));
        tickets
    }

    /// Enqueues an insert; resolves to the new record's global id.
    pub fn insert(&self, values: Vec<f64>) -> Ticket<RecordId> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Insert { values, tx });
        ticket
    }

    /// Enqueues a delete; resolves to whether a live record was removed.
    pub fn delete(&self, id: RecordId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Delete { id, tx });
        ticket
    }
}

/// A running serving loop that owns a [`ShardedEngine`].
pub struct Server {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
    join: Option<JoinHandle<(ShardedEngine, ServeStats)>>,
}

impl Server {
    /// Moves `engine` onto a dispatcher thread and starts serving.
    pub fn start(engine: ShardedEngine, options: ServeOptions) -> Self {
        assert!(options.batch_limit >= 1, "batch limit must be at least 1");
        let (tx, rx) = mpsc::channel();
        let join = std::thread::spawn(move || dispatch(engine, rx, options.batch_limit));
        Self {
            tx,
            algorithm: options.algorithm,
            join: Some(join),
        }
    }

    /// A new client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.clone(),
            algorithm: self.algorithm,
        }
    }

    /// Stops the dispatcher (after it drains requests already dequeued) and
    /// returns the engine with the serving counters.
    pub fn shutdown(mut self) -> (ShardedEngine, ServeStats) {
        let _ = self.tx.send(Msg::Shutdown);
        self.join
            .take()
            .expect("shutdown consumes the only join handle")
            .join()
            .expect("the dispatcher thread panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

/// Maps a core ingest violation to the request-level error.
fn ingest_error(err: kspr::IngestError) -> ServeError {
    match err {
        // Unreachable here (the engine arity is always >= 1, so an empty row
        // surfaces as an arity mismatch first), kept for exhaustiveness.
        kspr::IngestError::Empty => ServeError::ArityMismatch {
            expected: 0,
            got: 0,
        },
        kspr::IngestError::ArityMismatch { expected, got } => {
            ServeError::ArityMismatch { expected, got }
        }
        kspr::IngestError::NonFinite { .. } => ServeError::NonFinite,
    }
}

/// Validates a query against the engine's arity rules (the focal record must
/// satisfy the same shape rules as ingested records).
fn validate_query(engine: &ShardedEngine, job: &QueryJob) -> Result<(), ServeError> {
    if job.k == 0 {
        return Err(ServeError::InvalidK);
    }
    if job.algorithm == Algorithm::Rtopk && engine.dim() != 2 {
        return Err(ServeError::UnsupportedAlgorithm);
    }
    kspr::check_record(&job.focal, Some(engine.dim())).map_err(ingest_error)
}

/// Validates an insert payload.
fn validate_insert(engine: &ShardedEngine, values: &[f64]) -> Result<(), ServeError> {
    kspr::check_record(values, Some(engine.dim())).map_err(ingest_error)
}

/// Executes a batch of dequeued queries: rejects invalid jobs, groups the
/// valid ones by `(algorithm, k)` and answers each group with one
/// `run_batch` call.
fn run_jobs(engine: &ShardedEngine, jobs: Vec<QueryJob>, stats: &mut ServeStats) {
    let mut groups: Vec<((Algorithm, usize), Vec<QueryJob>)> = Vec::new();
    for job in jobs {
        if let Err(err) = validate_query(engine, &job) {
            stats.rejected += 1;
            let _ = job.tx.send(Err(err));
            continue;
        }
        let key = (job.algorithm, job.k);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    for ((algorithm, k), group) in groups {
        let (focals, txs): (Vec<Vec<f64>>, Vec<_>) =
            group.into_iter().map(|j| (j.focal, j.tx)).unzip();
        // Defense in depth: a panic inside the engine must not take the
        // dispatcher thread (and with it every pending ticket) down.  The
        // engine's caches recover from lock poisoning by rebuilding, so
        // serving continues after a failed batch.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_batch(algorithm, &focals, k)
        }));
        match outcome {
            Ok(results) => {
                stats.batches += 1;
                stats.queries += focals.len() as u64;
                stats.largest_batch = stats.largest_batch.max(focals.len());
                for (tx, result) in txs.into_iter().zip(results) {
                    let _ = tx.send(Ok(result));
                }
            }
            Err(_) => {
                stats.rejected += focals.len() as u64;
                for tx in txs {
                    let _ = tx.send(Err(ServeError::QueryFailed));
                }
            }
        }
    }
}

/// The dispatcher loop: drain the queue, batch consecutive queries, apply
/// updates in arrival order.
fn dispatch(
    mut engine: ShardedEngine,
    rx: mpsc::Receiver<Msg>,
    batch_limit: usize,
) -> (ShardedEngine, ServeStats) {
    let mut stats = ServeStats::default();
    let mut carry: VecDeque<Msg> = VecDeque::new();
    loop {
        let msg = match carry.pop_front() {
            Some(msg) => msg,
            None => match rx.recv() {
                Ok(msg) => msg,
                // Every handle (and the Server) is gone: stop serving.
                Err(mpsc::RecvError) => return (engine, stats),
            },
        };
        match msg {
            Msg::Shutdown => return (engine, stats),
            Msg::Insert { values, tx } => match validate_insert(&engine, &values) {
                Ok(()) => {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.insert(values)
                    }));
                    match outcome {
                        Ok(id) => {
                            stats.updates += 1;
                            let _ = tx.send(Ok(id));
                        }
                        Err(_) => {
                            // A panic mid-update may have left shard state
                            // half-applied; stop serving cleanly instead of
                            // risking corrupt answers (see UpdateFailed).
                            let _ = tx.send(Err(ServeError::UpdateFailed));
                            return (engine, stats);
                        }
                    }
                }
                Err(err) => {
                    stats.rejected += 1;
                    let _ = tx.send(Err(err));
                }
            },
            Msg::Delete { id, tx } => {
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.delete(id)));
                match outcome {
                    Ok(deleted) => {
                        stats.updates += 1;
                        let _ = tx.send(Ok(deleted));
                    }
                    Err(_) => {
                        let _ = tx.send(Err(ServeError::UpdateFailed));
                        return (engine, stats);
                    }
                }
            }
            Msg::Query(job) => {
                // Batched dequeue: greedily pull further *consecutive*
                // queries (updates act as barriers, preserving FIFO
                // semantics between queries and updates).
                let mut batch = vec![job];
                while batch.len() < batch_limit {
                    match rx.try_recv() {
                        Ok(Msg::Query(next)) => batch.push(next),
                        Ok(other) => {
                            // A Batch keeps its own identity (absorbing it
                            // here could blow past `batch_limit`); updates
                            // act as barriers.  Either way FIFO between the
                            // drained queries and what follows is preserved.
                            carry.push_back(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                run_jobs(&engine, batch, &mut stats);
            }
            Msg::Batch(jobs) => run_jobs(&engine, jobs, &mut stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::KsprConfig;

    fn demo_engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            vec![
                vec![0.3, 0.8, 0.8],
                vec![0.9, 0.4, 0.4],
                vec![0.8, 0.3, 0.4],
                vec![0.4, 0.3, 0.6],
            ],
            KsprConfig::default().with_shards(shards),
        )
    }

    #[test]
    fn submit_answers_queries_and_counts_them() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let a = handle.submit(vec![0.5, 0.5, 0.7], 3);
        let b = handle.submit_with(Algorithm::Pcta, vec![0.6, 0.6, 0.5], 2);
        let ra = a.wait().expect("query a");
        let rb = b.wait().expect("query b");
        assert!(ra.num_regions() >= 1);
        assert!(rb.num_regions() >= 1);
        let (engine, stats) = server.shutdown();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(
            stats.batches, 2,
            "distinct (algorithm, k) pairs never merge"
        );
        assert_eq!(engine.len(), 4);
    }

    #[test]
    fn submit_many_runs_as_one_batch() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let focals: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.4 + 0.05 * i as f64, 0.5, 0.6])
            .collect();
        let tickets = handle.submit_many(focals.clone(), 3);
        let results: Vec<KsprResult> = tickets
            .into_iter()
            .map(|t| t.wait().expect("batched query"))
            .collect();
        // Batched answers equal direct engine answers, in order.
        let oracle = demo_engine(2);
        let expected = oracle.run_batch(Algorithm::LpCta, &focals, 3);
        for (got, want) in results.iter().zip(&expected) {
            assert_eq!(got.num_regions(), want.num_regions());
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.largest_batch, 6, "one run_batch served all six");
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn invalid_requests_are_rejected_not_fatal() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 0).wait().unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle.submit(vec![0.5, 0.5], 2).wait().unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .submit(vec![0.5, f64::NAN, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        assert_eq!(
            handle.insert(vec![0.5, f64::INFINITY, 0.7]).wait(),
            Err(ServeError::NonFinite)
        );
        assert_eq!(
            handle.insert(vec![0.5]).wait(),
            Err(ServeError::ArityMismatch {
                expected: 3,
                got: 1
            })
        );
        // RTOPK is 2-D only; on 3-D data it must be rejected up front, not
        // allowed to panic the dispatcher thread.
        assert_eq!(
            handle
                .submit_with(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        // The server is still healthy afterwards.
        let ok = handle.submit(vec![0.5, 0.5, 0.7], 3).wait();
        assert!(ok.expect("server must survive rejections").num_regions() >= 1);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 6);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn updates_are_serialized_with_queries() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        // Empty dataset: whole preference space.
        let empty = handle
            .submit(vec![0.5, 0.5], 1)
            .wait()
            .expect("empty query");
        assert_eq!(empty.num_regions(), 1);

        // Insert a dominator; a query submitted afterwards must see it.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let beaten = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(beaten.num_regions(), 0, "the dominator blocks top-1");

        // Delete it again (emptying the shard): back to whole space.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        assert_eq!(handle.delete(id).wait(), Ok(false));
        let restored = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(restored.num_regions(), 1);

        let (engine, stats) = server.shutdown();
        assert!(engine.is_empty());
        assert_eq!(stats.updates, 3, "insert + two deletes (one a no-op)");
    }

    #[test]
    fn tickets_resolve_to_server_closed_after_shutdown() {
        let server = Server::start(demo_engine(1), ServeOptions::default());
        let handle = server.handle();
        drop(server); // Drop joins the dispatcher.
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 2).wait().unwrap_err(),
            ServeError::ServerClosed
        );
    }
}
