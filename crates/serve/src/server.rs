//! The serving front-end: a request queue feeding a dispatcher that batches
//! queries into [`ShardedEngine::run_batch`] and applies updates in arrival
//! order.
//!
//! [`Server::start`] moves a [`ShardedEngine`] onto a dispatcher thread and
//! returns a handle factory.  Clients talk to the engine exclusively through
//! cloneable [`ServeHandle`]s:
//!
//! * [`ServeHandle::submit`] enqueues one query and returns a [`Ticket`] —
//!   a future-like receiver resolved when the dispatcher answers;
//! * [`ServeHandle::submit_many`] enqueues a whole batch at once;
//! * [`ServeHandle::insert`] / [`ServeHandle::delete`] enqueue updates,
//!   serialized with the queries around them (a query submitted after an
//!   insert sees the inserted record).
//!
//! The dispatcher drains the queue greedily: consecutive pending queries are
//! grouped by `(algorithm, k)` and answered through one
//! [`ShardedEngine::run_batch`] call each — the batched-dequeue pattern —
//! while the shared candidate engine and the per-shard prep caches carry over
//! between batches.  Invalid requests (`k == 0`, arity mismatch, non-finite
//! focal values) are rejected with a [`ServeError`] instead of panicking the
//! serving thread; [`ServeStats`] counts every rejection per error variant.
//!
//! # Standing queries
//!
//! [`ServeHandle::subscribe`] registers a long-lived query with the
//! dispatcher's [`kspr_monitor::Monitor`] and returns a [`Subscription`].
//! After every update batch the dispatcher classifies each standing query as
//! unaffected / patchable / must-rerun (see the `kspr-monitor` crate docs),
//! maintains it accordingly, and pushes a [`ResultDelta`] to the
//! subscription whenever its result actually changed.  Because the monitor
//! runs on the dispatcher thread, updates and notifications stay serialized
//! with the query stream: a notification always reflects exactly the updates
//! acknowledged before it.  Dropping a [`Subscription`] unregisters the
//! standing query (no maintenance state leaks from a long-lived server).
//! If a maintenance pass itself panics (after the update was committed and
//! acknowledged), the registry is invalidated rather than served stale:
//! every subscription's channel closes and clients re-subscribe.
//!
//! Updates use the same batched-dequeue pattern as queries: the dispatcher
//! greedily drains further *already-queued* consecutive inserts/deletes —
//! up to [`kspr::KsprConfig::monitor_batch_window`], never waiting for more
//! to arrive — applies and acknowledges each one individually, then runs
//! **one** standing-query maintenance pass
//! ([`kspr_monitor::Monitor::apply_batch`]) over the whole batch, so a burst
//! of updates shares its classification probes and coalesces per-query
//! engine re-runs.  A subscriber that stops draining its notifications does
//! not grow dispatcher memory without bound: each subscription holds at most
//! [`MAX_PENDING_DELTAS`] pending deltas, after which newer deltas are
//! merged into the newest pending one (deltas chain, so the merged delta
//! still spans exactly the missed updates).  After every update batch the
//! dispatcher also checks the pool's tombstone ratio and, past 50% dead
//! slots, compacts the shards in place ([`ShardedEngine::compact`]) —
//! global record ids survive, so clients and standing-query bookkeeping
//! never notice.

use crate::sharded::ShardedEngine;
use kspr::{Algorithm, ApproxImpact, ErrorBudget, KsprResult, QueryTier, RecordId};
use kspr_approx::TieredResult;
use kspr_monitor::{
    update_preserves_impact, Monitor, MonitorStats, QueryId, RegisterError, ResultDelta,
    UpdateClass, UpdateKind,
};
use std::collections::{HashMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Why a request was rejected (or lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `k` must be at least 1.
    InvalidK,
    /// The focal record / inserted record does not match the dataset arity.
    ArityMismatch {
        /// The dataset arity.
        expected: usize,
        /// The request's arity.
        got: usize,
    },
    /// The request contains a NaN or infinite value.
    NonFinite,
    /// The request's [`ErrorBudget`] is malformed (`epsilon` / `confidence`
    /// outside `(0, 1)`) or finer than the server is willing to sample for
    /// (its Hoeffding sample count exceeds [`MAX_APPROX_SAMPLES`]).
    InvalidBudget,
    /// The requested algorithm cannot run on this dataset (RTOPK is
    /// 2-dimensional only).
    UnsupportedAlgorithm,
    /// The query panicked inside the engine; the server recovered and keeps
    /// serving (the engine caches rebuild themselves after a poisoning).
    QueryFailed,
    /// An update panicked inside the engine.  Unlike queries, a half-applied
    /// update is not rebuildable in place, so the server stops serving
    /// (subsequent tickets resolve [`ServeError::ServerClosed`] and
    /// [`Server::shutdown`] returns normally) rather than risk corrupt
    /// answers.
    UpdateFailed,
    /// The server shut down before (or while) answering.
    ServerClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidK => write!(f, "k must be at least 1"),
            ServeError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: got {got} attributes, dataset has {expected}"
                )
            }
            ServeError::NonFinite => write!(f, "values must be finite"),
            ServeError::InvalidBudget => {
                write!(
                    f,
                    "the error budget is malformed or finer than the server samples for"
                )
            }
            ServeError::UnsupportedAlgorithm => {
                write!(f, "the algorithm does not support this dataset's arity")
            }
            ServeError::QueryFailed => write!(f, "the query panicked inside the engine"),
            ServeError::UpdateFailed => {
                write!(
                    f,
                    "an update panicked inside the engine; the server stopped"
                )
            }
            ServeError::ServerClosed => write!(f, "the server has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A pending response: resolves once the dispatcher has processed the
/// request.  Dropping a ticket discards the response.
pub struct Ticket<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> Ticket<T> {
    fn new() -> (mpsc::Sender<Result<T, ServeError>>, Self) {
        let (tx, rx) = mpsc::channel();
        (tx, Ticket { rx })
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ServerClosed))
    }
}

/// Where a query's answer goes: the three client-facing ticket flavors.
/// Constructed so a sink can always carry the tier's answer — `Exact` sinks
/// only pair with [`QueryTier::Exact`], `Approx` sinks only with
/// [`QueryTier::Approximate`], and `Tiered` sinks carry either.
enum Sink {
    Exact(mpsc::Sender<Result<KsprResult, ServeError>>),
    Approx(mpsc::Sender<Result<ApproxImpact, ServeError>>),
    Tiered(mpsc::Sender<Result<TieredResult, ServeError>>),
}

impl Sink {
    /// Delivers a rejection.
    fn reject(&self, err: ServeError) {
        match self {
            Sink::Exact(tx) => drop(tx.send(Err(err))),
            Sink::Approx(tx) => drop(tx.send(Err(err))),
            Sink::Tiered(tx) => drop(tx.send(Err(err))),
        }
    }

    /// Delivers an exact result (never routed to an `Approx` sink).
    fn send_exact(self, result: KsprResult) {
        match self {
            Sink::Exact(tx) => drop(tx.send(Ok(result))),
            Sink::Tiered(tx) => drop(tx.send(Ok(TieredResult::Exact(result)))),
            Sink::Approx(_) => unreachable!("approximate jobs never run exactly"),
        }
    }

    /// Delivers an estimate (never routed to an `Exact` sink).
    fn send_approx(self, estimate: ApproxImpact) {
        match self {
            Sink::Approx(tx) => drop(tx.send(Ok(estimate))),
            Sink::Tiered(tx) => drop(tx.send(Ok(TieredResult::Approximate(estimate)))),
            Sink::Exact(_) => unreachable!("exact jobs never run approximately"),
        }
    }
}

/// One enqueued query.
struct QueryJob {
    algorithm: Algorithm,
    focal: Vec<f64>,
    k: usize,
    tier: QueryTier,
    sink: Sink,
}

enum Msg {
    Query(QueryJob),
    Batch(Vec<QueryJob>),
    Insert {
        values: Vec<f64>,
        tx: mpsc::Sender<Result<RecordId, ServeError>>,
    },
    Delete {
        id: RecordId,
        tx: mpsc::Sender<Result<bool, ServeError>>,
    },
    Subscribe {
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
        deltas: Arc<DeltaQueue>,
        tx: mpsc::Sender<Result<(QueryId, KsprResult), ServeError>>,
    },
    Unsubscribe {
        id: QueryId,
        /// `None` for the fire-and-forget unsubscribe of `Subscription::drop`.
        tx: Option<mpsc::Sender<Result<bool, ServeError>>>,
    },
    Subscriptions {
        tx: mpsc::Sender<Result<usize, ServeError>>,
    },
    SubscribeApprox {
        focal: Vec<f64>,
        k: usize,
        budget: ErrorBudget,
        deltas: mpsc::Sender<ApproxDelta>,
        tx: mpsc::Sender<Result<(ApproxWatchId, ApproxImpact), ServeError>>,
    },
    UnsubscribeApprox {
        id: ApproxWatchId,
        /// `None` for the fire-and-forget unsubscribe of
        /// `ApproxSubscription::drop`.
        tx: Option<mpsc::Sender<Result<bool, ServeError>>>,
    },
    ApproxSubscriptions {
        tx: mpsc::Sender<Result<usize, ServeError>>,
    },
    Shutdown,
}

/// Identifier of an approximate standing query (dense, never reused;
/// separate id space from the exact registry's [`QueryId`]).
pub type ApproxWatchId = u64;

/// Change notification of an approximate standing query: the estimate was
/// redrawn because an update possibly moved the true impact.
#[derive(Debug, Clone)]
pub struct ApproxDelta {
    /// The approximate standing query that was re-estimated.
    pub query: ApproxWatchId,
    /// The estimate before the update.
    pub before: ApproxImpact,
    /// The freshly drawn estimate, valid for the post-update state.
    pub after: ApproxImpact,
}

/// One approximate standing query held by the dispatcher: the request, the
/// current estimate, and the delta channel.
struct ApproxStanding {
    focal: Vec<f64>,
    k: usize,
    budget: ErrorBudget,
    estimate: ApproxImpact,
    deltas: mpsc::Sender<ApproxDelta>,
}

/// Upper bound on the [`ResultDelta`]s a single [`Subscription`] may hold
/// pending.  A subscriber that stops draining its notifications would
/// otherwise grow dispatcher memory without bound (the monitor keeps
/// emitting deltas for every update); past this bound newer deltas are
/// **coalesced** into the newest pending one instead of enqueued — deltas
/// chain (`after` of one is `before` of the next), so merging keeps the
/// oldest `before` and newest `after` state and loses nothing but the
/// intermediate steps.
pub const MAX_PENDING_DELTAS: usize = 64;

/// Outcome of a [`DeltaQueue::push`].
enum DeltaPush {
    /// Appended as a new pending delta.
    Queued,
    /// Merged into the newest pending delta (the queue was at
    /// [`MAX_PENDING_DELTAS`]).
    Coalesced,
    /// Dropped: the queue was closed (subscription unregistered or the
    /// registry invalidated).
    Closed,
}

/// The per-subscription notification queue: a bounded, coalescing channel
/// between the dispatcher (producer) and a [`Subscription`] (consumer).
struct DeltaQueue {
    state: Mutex<DeltaQueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct DeltaQueueState {
    pending: VecDeque<ResultDelta>,
    closed: bool,
}

impl DeltaQueue {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(DeltaQueueState::default()),
            ready: Condvar::new(),
        })
    }

    /// Enqueues a delta, coalescing it into the newest pending one when the
    /// subscriber has fallen [`MAX_PENDING_DELTAS`] behind.
    fn push(&self, delta: ResultDelta) -> DeltaPush {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return DeltaPush::Closed;
        }
        let outcome = if state.pending.len() >= MAX_PENDING_DELTAS {
            let tail = state.pending.back_mut().expect("the cap is at least 1");
            // Consecutive deltas of one query chain exactly: keep the
            // tail's (oldest) `before` state, take the newcomer's (newest)
            // `after` state.  A re-run anywhere in the merged span means
            // the surviving state was obtained through a re-run.
            if delta.class == UpdateClass::Rerun {
                tail.class = UpdateClass::Rerun;
            }
            tail.regions_after = delta.regions_after;
            tail.ranks_after = delta.ranks_after;
            DeltaPush::Coalesced
        } else {
            state.pending.push_back(delta);
            DeltaPush::Queued
        };
        drop(state);
        self.ready.notify_one();
        outcome
    }

    /// Closes the queue: pending deltas stay drainable, every later `push`
    /// is dropped, and a blocked [`DeltaQueue::pop`] wakes with `None`.
    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Non-blocking pop.
    fn try_pop(&self) -> Option<ResultDelta> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pending
            .pop_front()
    }

    /// Blocks until a delta is pending (or the queue closes: `None`).
    fn pop(&self) -> Option<ResultDelta> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(delta) = state.pending.pop_front() {
                return Some(delta);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Per-[`ServeError`]-variant rejection counters (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionStats {
    /// Requests with `k == 0`.
    pub invalid_k: u64,
    /// Requests whose arity does not match the dataset.
    pub arity_mismatch: u64,
    /// Requests containing NaN / infinite values.
    pub non_finite: u64,
    /// Requests whose error budget is malformed or too fine to sample for.
    pub invalid_budget: u64,
    /// Requests for an algorithm the dataset (or the monitor) cannot serve.
    pub unsupported_algorithm: u64,
    /// Queries lost to an engine panic (the server kept serving).
    pub query_failed: u64,
    /// Updates lost to an engine panic (the server stopped).
    pub update_failed: u64,
    /// Requests that raced the shutdown (normally unreachable: the
    /// dispatcher never *answers* with this variant, clients synthesize it
    /// when the channel is gone).
    pub server_closed: u64,
}

impl RejectionStats {
    /// Total rejections across all variants.
    pub fn total(&self) -> u64 {
        self.invalid_k
            + self.arity_mismatch
            + self.non_finite
            + self.invalid_budget
            + self.unsupported_algorithm
            + self.query_failed
            + self.update_failed
            + self.server_closed
    }

    /// Counts one rejection under its variant.
    fn count(&mut self, err: &ServeError) {
        match err {
            ServeError::InvalidK => self.invalid_k += 1,
            ServeError::ArityMismatch { .. } => self.arity_mismatch += 1,
            ServeError::NonFinite => self.non_finite += 1,
            ServeError::InvalidBudget => self.invalid_budget += 1,
            ServeError::UnsupportedAlgorithm => self.unsupported_algorithm += 1,
            ServeError::QueryFailed => self.query_failed += 1,
            ServeError::UpdateFailed => self.update_failed += 1,
            ServeError::ServerClosed => self.server_closed += 1,
        }
    }
}

/// Serving-side counters, returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries answered by the exact engine (always:
    /// `exact_queries + approx_queries == queries`).
    pub exact_queries: u64,
    /// Queries answered by the approximate tier.
    pub approx_queries: u64,
    /// `Auto`-tier queries the cost estimate routed to the exact engine
    /// (a subset of `exact_queries`).
    pub auto_routed_exact: u64,
    /// `Auto`-tier queries the cost estimate routed to sampling (a subset
    /// of `approx_queries`).
    pub auto_routed_approx: u64,
    /// Requests rejected with a [`ServeError`] (total; always equals
    /// [`RejectionStats::total`] of `rejections`).
    pub rejected: u64,
    /// Rejections broken down by error variant.
    pub rejections: RejectionStats,
    /// `run_batch` invocations (every batch answers >= 1 query).
    pub batches: u64,
    /// Largest query batch executed at once.
    pub largest_batch: usize,
    /// Largest per-query intra-query worker grant the dispatcher made to an
    /// exact batch.  The grant is [`kspr::KsprConfig::resolve_intra_workers`]
    /// over the batch width — explicit `intra_query_threads` wins, `0`
    /// divides the machine's cores across the batch — except for LP-CTA
    /// batches, which are always granted 1 worker per query (the look-ahead
    /// bound reports are expansion-order-sensitive, so LP-CTA expands its
    /// cell tree sequentially; see `kspr::engine`).
    pub largest_intra_grant: usize,
    /// Exact batches answered with an intra-query worker grant above 1
    /// (a subset of `batches`).
    pub parallel_batches: u64,
    /// Updates (inserts + deletes) applied.
    pub updates: u64,
    /// Update-maintenance batches the dispatcher drained (each covers >= 1
    /// applied update; bounded by
    /// [`kspr::KsprConfig::monitor_batch_window`]).
    pub update_batches: u64,
    /// Largest number of updates drained into one maintenance batch.
    pub largest_update_batch: usize,
    /// Tombstone compactions the dispatcher triggered (dead record slots
    /// exceeded half the id space after an update batch; see
    /// [`ShardedEngine::compact`]).
    pub compactions: u64,
    /// Standing queries registered over the server's lifetime.
    pub subscriptions: u64,
    /// [`ResultDelta`] notifications delivered to subscribers.
    pub notifications: u64,
    /// Notifications merged into an already-pending delta because a slow
    /// subscriber let its queue reach [`MAX_PENDING_DELTAS`] (a subset of
    /// `notifications`).
    pub deltas_coalesced: u64,
    /// Approximate standing queries registered over the server's lifetime.
    pub approx_subscriptions: u64,
    /// [`ApproxDelta`] notifications (re-drawn estimates) delivered.
    pub approx_notifications: u64,
    /// (update, approximate standing query) pairs whose estimate stayed
    /// valid because the update provably preserved the true impact (the
    /// witness classifier of `kspr-monitor`).
    pub approx_watch_unaffected: u64,
    /// Standing-query maintenance passes that panicked after a committed
    /// update.  Each one invalidated the registry (subscribers must
    /// re-subscribe); the update itself succeeded, so these are *not*
    /// rejections.
    pub maintenance_failures: u64,
    /// Standing-query classification counters (see `kspr-monitor`).
    pub monitor: MonitorStats,
}

impl ServeStats {
    /// Counts one rejection (total + per-variant).
    fn reject(&mut self, err: &ServeError) {
        self.rejected += 1;
        self.rejections.count(err);
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Algorithm used by [`ServeHandle::submit`] (override per request with
    /// [`ServeHandle::submit_with`]).
    pub algorithm: Algorithm,
    /// Maximum number of queries merged into one `run_batch` call when
    /// draining the queue.  (An explicit [`ServeHandle::submit_many`] batch
    /// is always answered through a single call, whatever its size.)
    pub batch_limit: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::LpCta,
            batch_limit: 64,
        }
    }
}

/// A cloneable client handle onto a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
}

impl ServeHandle {
    /// Enqueues one query with the server's default algorithm.
    pub fn submit(&self, focal: Vec<f64>, k: usize) -> Ticket<KsprResult> {
        self.submit_with(self.algorithm, focal, k)
    }

    /// Enqueues one query with an explicit algorithm.
    pub fn submit_with(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Ticket<KsprResult> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Query(QueryJob {
            algorithm,
            focal,
            k,
            tier: QueryTier::Exact,
            sink: Sink::Exact(tx),
        }));
        ticket
    }

    /// Enqueues one approximate query: the answer is a market-impact
    /// estimate meeting `budget` instead of exact regions.  Consecutive
    /// approximate submissions with the same `(k, budget)` are answered
    /// through one shared sampling sweep
    /// ([`ShardedEngine::run_approx_batch`]) — batched separately from the
    /// exact queries around them.
    pub fn submit_approx(
        &self,
        focal: Vec<f64>,
        k: usize,
        budget: ErrorBudget,
    ) -> Ticket<ApproxImpact> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Query(QueryJob {
            algorithm: self.algorithm,
            focal,
            k,
            tier: QueryTier::Approximate { budget },
            sink: Sink::Approx(tx),
        }));
        ticket
    }

    /// Enqueues one query under an explicit per-request [`QueryTier`]; the
    /// ticket resolves to whichever answer the tier produced (`Auto` is
    /// routed by the dispatcher's cost estimate at dispatch time, counted in
    /// [`ServeStats`]).
    pub fn submit_tiered(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
        tier: QueryTier,
    ) -> Ticket<TieredResult> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Query(QueryJob {
            algorithm,
            focal,
            k,
            tier,
            sink: Sink::Tiered(tx),
        }));
        ticket
    }

    /// Enqueues a whole batch of same-`k` queries at once; the dispatcher
    /// answers them through a single [`ShardedEngine::run_batch`] call.
    pub fn submit_many(&self, focals: Vec<Vec<f64>>, k: usize) -> Vec<Ticket<KsprResult>> {
        let mut jobs = Vec::with_capacity(focals.len());
        let mut tickets = Vec::with_capacity(focals.len());
        for focal in focals {
            let (tx, ticket) = Ticket::new();
            jobs.push(QueryJob {
                algorithm: self.algorithm,
                focal,
                k,
                tier: QueryTier::Exact,
                sink: Sink::Exact(tx),
            });
            tickets.push(ticket);
        }
        let _ = self.tx.send(Msg::Batch(jobs));
        tickets
    }

    /// Enqueues an insert; resolves to the new record's global id.
    pub fn insert(&self, values: Vec<f64>) -> Ticket<RecordId> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Insert { values, tx });
        ticket
    }

    /// Enqueues a delete; resolves to whether a live record was removed.
    pub fn delete(&self, id: RecordId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Delete { id, tx });
        ticket
    }

    /// Registers a standing query with the server's default algorithm;
    /// resolves to a [`Subscription`] that yields a [`ResultDelta`] after
    /// every update that changed the query's result.
    pub fn subscribe(&self, focal: Vec<f64>, k: usize) -> SubscribeTicket {
        self.subscribe_with(self.algorithm, focal, k)
    }

    /// Registers a standing query with an explicit algorithm (CellTree
    /// policies only; the sweep baselines resolve to
    /// [`ServeError::UnsupportedAlgorithm`]).
    pub fn subscribe_with(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> SubscribeTicket {
        let queue = DeltaQueue::new();
        let (tx, rx) = mpsc::channel();
        let _ = self.tx.send(Msg::Subscribe {
            algorithm,
            focal,
            k,
            deltas: Arc::clone(&queue),
            tx,
        });
        SubscribeTicket {
            rx,
            deltas: queue,
            control: self.tx.clone(),
        }
    }

    /// Unregisters a standing query by id; resolves to whether it was still
    /// registered.  (Dropping the [`Subscription`] unregisters implicitly.)
    pub fn unsubscribe(&self, id: QueryId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Unsubscribe { id, tx: Some(tx) });
        ticket
    }

    /// Number of currently registered standing queries (registry telemetry;
    /// also the leak check for [`Subscription`] drops).
    pub fn subscriptions(&self) -> Ticket<usize> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Subscriptions { tx });
        ticket
    }

    /// Registers an **approximate standing query**: the dispatcher holds a
    /// budgeted impact estimate for `focal` and keeps it honest across
    /// updates — an update that provably preserves the true impact (the
    /// `kspr-monitor` witness classifier) leaves the estimate untouched
    /// (its interval still covers the unchanged truth); any other update
    /// redraws the estimate and pushes an [`ApproxDelta`].  Dropping the
    /// subscription unregisters it.
    pub fn subscribe_approx(
        &self,
        focal: Vec<f64>,
        k: usize,
        budget: ErrorBudget,
    ) -> ApproxSubscribeTicket {
        let (delta_tx, delta_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let _ = self.tx.send(Msg::SubscribeApprox {
            focal,
            k,
            budget,
            deltas: delta_tx,
            tx,
        });
        ApproxSubscribeTicket {
            rx,
            deltas: delta_rx,
            control: self.tx.clone(),
        }
    }

    /// Unregisters an approximate standing query by id; resolves to whether
    /// it was still registered.
    pub fn unsubscribe_approx(&self, id: ApproxWatchId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::UnsubscribeApprox { id, tx: Some(tx) });
        ticket
    }

    /// Number of currently registered approximate standing queries.
    pub fn approx_subscriptions(&self) -> Ticket<usize> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::ApproxSubscriptions { tx });
        ticket
    }
}

/// A pending [`ApproxSubscription`]: resolves once the dispatcher has
/// registered (and initially estimated) the approximate standing query.
pub struct ApproxSubscribeTicket {
    rx: mpsc::Receiver<Result<(ApproxWatchId, ApproxImpact), ServeError>>,
    deltas: mpsc::Receiver<ApproxDelta>,
    control: mpsc::Sender<Msg>,
}

impl ApproxSubscribeTicket {
    /// Blocks until the standing query is registered (or rejected).
    pub fn wait(self) -> Result<ApproxSubscription, ServeError> {
        match self.rx.recv() {
            Ok(Ok((id, initial))) => Ok(ApproxSubscription {
                id,
                initial,
                deltas: self.deltas,
                control: self.control,
            }),
            Ok(Err(err)) => Err(err),
            Err(mpsc::RecvError) => Err(ServeError::ServerClosed),
        }
    }
}

/// A live approximate standing query: holds the initial estimate and
/// receives an [`ApproxDelta`] whenever an update forced a re-draw.
///
/// Dropping the subscription unregisters the standing query with the
/// dispatcher, freeing its maintenance state.
pub struct ApproxSubscription {
    id: ApproxWatchId,
    initial: ApproxImpact,
    deltas: mpsc::Receiver<ApproxDelta>,
    control: mpsc::Sender<Msg>,
}

impl std::fmt::Debug for ApproxSubscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApproxSubscription")
            .field("id", &self.id)
            .field("initial_impact", &self.initial.impact)
            .finish_non_exhaustive()
    }
}

impl ApproxSubscription {
    /// The standing query's registry id (usable with
    /// [`ServeHandle::unsubscribe_approx`]).
    pub fn id(&self) -> ApproxWatchId {
        self.id
    }

    /// The estimate at registration time; later states arrive as deltas.
    pub fn initial(&self) -> &ApproxImpact {
        &self.initial
    }

    /// Drains every notification delivered so far without blocking.
    pub fn poll(&self) -> Vec<ApproxDelta> {
        let mut out = Vec::new();
        while let Ok(delta) = self.deltas.try_recv() {
            out.push(delta);
        }
        out
    }

    /// Blocks until the next notification; `None` means this subscription
    /// will never be notified again (server shutdown, or a failed
    /// maintenance pass invalidated the approximate registry — re-subscribe
    /// to resume watching).
    pub fn recv(&self) -> Option<ApproxDelta> {
        self.deltas.recv().ok()
    }
}

impl Drop for ApproxSubscription {
    fn drop(&mut self) {
        let _ = self.control.send(Msg::UnsubscribeApprox {
            id: self.id,
            tx: None,
        });
    }
}

/// A pending [`Subscription`]: resolves once the dispatcher has registered
/// (and initially answered) the standing query.
pub struct SubscribeTicket {
    rx: mpsc::Receiver<Result<(QueryId, KsprResult), ServeError>>,
    deltas: Arc<DeltaQueue>,
    control: mpsc::Sender<Msg>,
}

impl SubscribeTicket {
    /// Blocks until the standing query is registered (or rejected).
    pub fn wait(self) -> Result<Subscription, ServeError> {
        match self.rx.recv() {
            Ok(Ok((id, initial))) => Ok(Subscription {
                id,
                initial,
                deltas: self.deltas,
                control: self.control,
            }),
            Ok(Err(err)) => Err(err),
            Err(mpsc::RecvError) => Err(ServeError::ServerClosed),
        }
    }
}

/// A live standing query: holds the initial result and receives a
/// [`ResultDelta`] for every update batch that changed it.
///
/// At most [`MAX_PENDING_DELTAS`] notifications are held pending; a slower
/// consumer still sees a delta chain whose final `after` state is current,
/// with the oldest backlog steps merged together (see [`MAX_PENDING_DELTAS`]).
///
/// Dropping the subscription unregisters the standing query with the
/// dispatcher, freeing its maintenance state — a long-lived [`Server`] never
/// accumulates state for subscribers that went away.
pub struct Subscription {
    id: QueryId,
    initial: KsprResult,
    deltas: Arc<DeltaQueue>,
    control: mpsc::Sender<Msg>,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("initial_regions", &self.initial.num_regions())
            .finish_non_exhaustive()
    }
}

impl Subscription {
    /// The standing query's registry id (usable with
    /// [`ServeHandle::unsubscribe`]).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The result at registration time; later states are communicated as
    /// deltas.
    pub fn initial(&self) -> &KsprResult {
        &self.initial
    }

    /// Drains every notification delivered so far without blocking.
    pub fn poll(&self) -> Vec<ResultDelta> {
        let mut out = Vec::new();
        while let Some(delta) = self.deltas.try_pop() {
            out.push(delta);
        }
        out
    }

    /// Blocks until the next notification.  `None` means this subscription
    /// will never be notified again: either the server shut down, or a
    /// maintenance pass failed and the dispatcher invalidated the standing
    /// registry (see the module docs) — in the latter case the server is
    /// still serving and re-subscribing resumes watching.
    pub fn recv(&self) -> Option<ResultDelta> {
        self.deltas.pop()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Fire-and-forget: if the server is already gone the registry died
        // with it.
        let _ = self.control.send(Msg::Unsubscribe {
            id: self.id,
            tx: None,
        });
    }
}

/// A running serving loop that owns a [`ShardedEngine`].
pub struct Server {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
    join: Option<JoinHandle<(ShardedEngine, ServeStats)>>,
}

impl Server {
    /// Moves `engine` onto a dispatcher thread and starts serving.
    pub fn start(engine: ShardedEngine, options: ServeOptions) -> Self {
        assert!(options.batch_limit >= 1, "batch limit must be at least 1");
        let (tx, rx) = mpsc::channel();
        let join = std::thread::spawn(move || dispatch(engine, rx, options.batch_limit));
        Self {
            tx,
            algorithm: options.algorithm,
            join: Some(join),
        }
    }

    /// A new client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.clone(),
            algorithm: self.algorithm,
        }
    }

    /// Stops the dispatcher (after it drains requests already dequeued) and
    /// returns the engine with the serving counters.
    pub fn shutdown(mut self) -> (ShardedEngine, ServeStats) {
        let _ = self.tx.send(Msg::Shutdown);
        self.join
            .take()
            .expect("shutdown consumes the only join handle")
            .join()
            .expect("the dispatcher thread panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

/// Maps a core ingest violation to the request-level error.
fn ingest_error(err: kspr::IngestError) -> ServeError {
    match err {
        // Unreachable here (the engine arity is always >= 1, so an empty row
        // surfaces as an arity mismatch first), kept for exhaustiveness.
        kspr::IngestError::Empty => ServeError::ArityMismatch {
            expected: 0,
            got: 0,
        },
        kspr::IngestError::ArityMismatch { expected, got } => {
            ServeError::ArityMismatch { expected, got }
        }
        kspr::IngestError::NonFinite { .. } => ServeError::NonFinite,
    }
}

/// Validates a query against the engine's arity rules (the focal record must
/// satisfy the same shape rules as ingested records).  The RTOPK
/// dimensionality rule only applies when the exact engine can run — a
/// purely approximate job never consults the algorithm.
fn validate_query(engine: &ShardedEngine, job: &QueryJob) -> Result<(), ServeError> {
    if job.k == 0 {
        return Err(ServeError::InvalidK);
    }
    let may_run_exact = !matches!(job.tier, QueryTier::Approximate { .. });
    if may_run_exact && job.algorithm == Algorithm::Rtopk && engine.dim() != 2 {
        return Err(ServeError::UnsupportedAlgorithm);
    }
    match job.tier {
        QueryTier::Exact => {}
        QueryTier::Approximate { budget } | QueryTier::Auto { budget, .. } => {
            validate_budget(&budget)?;
        }
    }
    kspr::check_record(&job.focal, Some(engine.dim())).map_err(ingest_error)
}

/// Largest Hoeffding sample count the server accepts per estimate.  The
/// budget is client-supplied and its sample count grows as `1/epsilon²`:
/// without a cap, one `submit_approx` with a pathological epsilon would
/// materialize gigabytes of sample points on the serialized dispatcher
/// thread (an allocation failure is not a catchable panic — it would take
/// the whole server down, defeating the reject-don't-crash ingest rules).
/// `2^20` samples (~1 M, epsilon ≈ 0.0013 at 95% confidence) is far below
/// any memory hazard and far finer than region-volume noise justifies.
pub const MAX_APPROX_SAMPLES: usize = 1 << 20;

/// Validates a client-supplied error budget: the fields must be genuine
/// probabilities (the `ErrorBudget` fields are public, so `new()`'s checks
/// can be bypassed) and the implied sample count must stay serveable.
fn validate_budget(budget: &ErrorBudget) -> Result<(), ServeError> {
    let in_unit = |v: f64| v.is_finite() && v > 0.0 && v < 1.0;
    if !in_unit(budget.epsilon) || !in_unit(budget.confidence) {
        return Err(ServeError::InvalidBudget);
    }
    if budget.samples() > MAX_APPROX_SAMPLES {
        return Err(ServeError::InvalidBudget);
    }
    Ok(())
}

/// Validates an insert payload.
fn validate_insert(engine: &ShardedEngine, values: &[f64]) -> Result<(), ServeError> {
    kspr::check_record(values, Some(engine.dim())).map_err(ingest_error)
}

/// Grouping key of an approximate batch: `k` plus the bit patterns of the
/// budget (estimates only share a sweep when they ask the same question to
/// the same accuracy).
type ApproxKey = (usize, u64, u64);

fn approx_key(k: usize, budget: &ErrorBudget) -> ApproxKey {
    (k, budget.epsilon.to_bits(), budget.confidence.to_bits())
}

/// Executes a batch of dequeued queries: rejects invalid jobs, resolves each
/// job's tier (`Auto` routes by the dispatcher's cost estimate, counted in
/// [`ServeStats`]), then answers **exact jobs** grouped by `(algorithm, k)`
/// through one `run_batch` call each and **approximate jobs** — batched
/// separately — grouped by `(k, budget)` through one shared sampling sweep
/// each.
fn run_jobs(
    engine: &ShardedEngine,
    jobs: Vec<QueryJob>,
    stats: &mut ServeStats,
    approx_seed: &mut u64,
) {
    /// One validated, tier-resolved job.  `auto` marks jobs the `Auto` tier
    /// routed, so the routing counters can be committed only when the job is
    /// actually answered (a failed batch must not leave `auto_routed_*`
    /// claiming more routed queries than `exact_/approx_queries` served).
    struct Routed {
        focal: Vec<f64>,
        sink: Sink,
        auto: bool,
    }

    let mut exact_groups: Vec<((Algorithm, usize), Vec<Routed>)> = Vec::new();
    let mut approx_groups: Vec<((ApproxKey, ErrorBudget), Vec<Routed>)> = Vec::new();
    for job in jobs {
        if let Err(err) = validate_query(engine, &job) {
            stats.reject(&err);
            job.sink.reject(err);
            continue;
        }
        // Resolve the tier.  The Auto decision depends only on dataset
        // statistics and k, so it is made once per job at dispatch time and
        // the job then batches with its resolved tier.  The cost probe runs
        // the same engine machinery as a query (merged-engine build, shared
        // prep), so it gets the same panic guard.
        let auto = matches!(job.tier, QueryTier::Auto { .. });
        let budget = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.tier.resolve(|| engine.estimated_cost(job.k))
        })) {
            Ok(budget) => budget,
            Err(_) => {
                stats.reject(&ServeError::QueryFailed);
                job.sink.reject(ServeError::QueryFailed);
                continue;
            }
        };
        let routed = Routed {
            focal: job.focal,
            sink: job.sink,
            auto,
        };
        match budget {
            None => {
                let key = (job.algorithm, job.k);
                match exact_groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, group)) => group.push(routed),
                    None => exact_groups.push((key, vec![routed])),
                }
            }
            Some(budget) => {
                let key = approx_key(job.k, &budget);
                match approx_groups.iter_mut().find(|((k, _), _)| *k == key) {
                    Some((_, group)) => group.push(routed),
                    None => approx_groups.push(((key, budget), vec![routed])),
                }
            }
        }
    }

    for ((algorithm, k), group) in exact_groups {
        let auto_routed = group.iter().filter(|j| j.auto).count() as u64;
        let (focals, sinks): (Vec<Vec<f64>>, Vec<Sink>) =
            group.into_iter().map(|j| (j.focal, j.sink)).unzip();
        // The dispatcher grants each query in the batch its intra-query
        // worker share: the engines resolve the same grant internally
        // (`KsprConfig::resolve_intra_workers` over the batch width), this
        // mirrors it into the serving stats.  LP-CTA is always granted one
        // worker — its look-ahead bound reports depend on expansion order,
        // so the engine routes it through the sequential path.
        let intra_grant = if algorithm == Algorithm::LpCta {
            1
        } else {
            engine.config().resolve_intra_workers(focals.len())
        };
        // Defense in depth: a panic inside the engine must not take the
        // dispatcher thread (and with it every pending ticket) down.  The
        // engine's caches recover from lock poisoning by rebuilding, so
        // serving continues after a failed batch.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_batch(algorithm, &focals, k)
        }));
        match outcome {
            Ok(results) => {
                stats.batches += 1;
                stats.queries += focals.len() as u64;
                stats.exact_queries += focals.len() as u64;
                stats.auto_routed_exact += auto_routed;
                stats.largest_batch = stats.largest_batch.max(focals.len());
                stats.largest_intra_grant = stats.largest_intra_grant.max(intra_grant);
                if intra_grant > 1 {
                    stats.parallel_batches += 1;
                }
                for (sink, result) in sinks.into_iter().zip(results) {
                    sink.send_exact(result);
                }
            }
            Err(_) => {
                for sink in sinks {
                    stats.reject(&ServeError::QueryFailed);
                    sink.reject(ServeError::QueryFailed);
                }
            }
        }
    }

    for (((k, _, _), budget), group) in approx_groups {
        let auto_routed = group.iter().filter(|j| j.auto).count() as u64;
        let (focals, sinks): (Vec<Vec<f64>>, Vec<Sink>) =
            group.into_iter().map(|j| (j.focal, j.sink)).unzip();
        let seed = *approx_seed;
        *approx_seed = approx_seed.wrapping_add(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_approx_batch(&focals, k, &budget, seed)
        }));
        match outcome {
            Ok(estimates) => {
                stats.batches += 1;
                stats.queries += focals.len() as u64;
                stats.approx_queries += focals.len() as u64;
                stats.auto_routed_approx += auto_routed;
                stats.largest_batch = stats.largest_batch.max(focals.len());
                for (sink, estimate) in sinks.into_iter().zip(estimates) {
                    sink.send_approx(estimate);
                }
            }
            Err(_) => {
                for sink in sinks {
                    stats.reject(&ServeError::QueryFailed);
                    sink.reject(ServeError::QueryFailed);
                }
            }
        }
    }
}

/// Maps a standing-query registration failure to the request-level error.
fn register_error(err: RegisterError) -> ServeError {
    match err {
        RegisterError::InvalidK => ServeError::InvalidK,
        RegisterError::Focal(err) => ingest_error(err),
        RegisterError::UnsupportedAlgorithm => ServeError::UnsupportedAlgorithm,
    }
}

/// Delivers update notifications to their subscribers.  A queue at its
/// pending cap coalesces the notification instead of growing (see
/// [`MAX_PENDING_DELTAS`]); a closed queue means the subscription was
/// dropped but its unsubscribe message is still in flight, and the
/// notification is simply discarded.
fn notify(
    subscribers: &HashMap<QueryId, Arc<DeltaQueue>>,
    deltas: Vec<ResultDelta>,
    stats: &mut ServeStats,
) {
    for delta in deltas {
        if let Some(queue) = subscribers.get(&delta.query) {
            match queue.push(delta) {
                DeltaPush::Queued => stats.notifications += 1,
                DeltaPush::Coalesced => {
                    stats.notifications += 1;
                    stats.deltas_coalesced += 1;
                }
                DeltaPush::Closed => {}
            }
        }
    }
}

/// Runs the standing-query maintenance for one *already committed and
/// acknowledged* update and delivers the notifications.
///
/// A panic inside classification (a standing query's rerun tripping an
/// engine bug) is the query-panic class — the engine caches recover and the
/// update itself is fine — but the maintenance pass may have stopped half
/// way, leaving some standing queries with stale bookkeeping that would
/// silently misclassify every later update.  Rather than stopping the
/// server (the update succeeded) or serving stale standing results, the
/// whole registry is invalidated: every subscription's channel closes (its
/// next `recv`/`poll` reports the disconnect) and clients re-subscribe to
/// resume watching.
fn maintain_standing(
    monitor: &mut Monitor,
    subscribers: &mut HashMap<QueryId, Arc<DeltaQueue>>,
    stats: &mut ServeStats,
    apply: impl FnOnce(&mut Monitor) -> Vec<ResultDelta>,
) {
    if monitor.is_empty() {
        return;
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| apply(monitor))) {
        Ok(deltas) => notify(subscribers, deltas, stats),
        Err(_) => {
            // Not a rejection — no client request failed; track separately.
            stats.maintenance_failures += 1;
            monitor.clear();
            for queue in subscribers.values() {
                queue.close();
            }
            subscribers.clear();
        }
    }
}

/// Maintains every **approximate** standing query for one committed update:
/// an update the witness classifier proves impact-preserving leaves the held
/// estimate untouched (it is still a valid draw for the unchanged truth);
/// anything else redraws the estimate against the post-update state and
/// pushes an [`ApproxDelta`].  A panic inside the re-estimation invalidates
/// the approximate registry exactly like the exact registry (subscribers
/// re-subscribe), since a half-maintained watch set would silently serve
/// stale estimates.
fn maintain_approx_watch(
    engine: &ShardedEngine,
    watch: &mut HashMap<ApproxWatchId, ApproxStanding>,
    stats: &mut ServeStats,
    values: &[f64],
    approx_seed: &mut u64,
) {
    if watch.is_empty() {
        return;
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut updates: Vec<(ApproxWatchId, ApproxImpact)> = Vec::new();
        let mut unaffected = 0u64;
        // Deterministic maintenance order (ids are dense and never reused).
        let mut ids: Vec<ApproxWatchId> = watch.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let standing = &watch[&id];
            if update_preserves_impact(engine, &standing.focal, standing.k, values) {
                unaffected += 1;
                continue;
            }
            let seed = *approx_seed;
            *approx_seed = approx_seed.wrapping_add(1);
            let fresh = engine
                .run_approx_batch(
                    std::slice::from_ref(&standing.focal),
                    standing.k,
                    &standing.budget,
                    seed,
                )
                .pop()
                .expect("one focal in, one estimate out");
            updates.push((id, fresh));
        }
        (updates, unaffected)
    }));
    match outcome {
        Ok((updates, unaffected)) => {
            stats.approx_watch_unaffected += unaffected;
            for (id, fresh) in updates {
                let standing = watch.get_mut(&id).expect("maintained id is registered");
                let before = std::mem::replace(&mut standing.estimate, fresh.clone());
                let delta = ApproxDelta {
                    query: id,
                    before,
                    after: fresh,
                };
                if standing.deltas.send(delta).is_ok() {
                    stats.approx_notifications += 1;
                }
            }
        }
        Err(_) => {
            stats.maintenance_failures += 1;
            watch.clear();
        }
    }
}

/// The dispatcher loop: drain the queue, batch consecutive queries, apply
/// updates in arrival order, and maintain the standing-query registry.
fn dispatch(
    mut engine: ShardedEngine,
    rx: mpsc::Receiver<Msg>,
    batch_limit: usize,
) -> (ShardedEngine, ServeStats) {
    let mut stats = ServeStats::default();
    let mut carry: VecDeque<Msg> = VecDeque::new();
    let mut monitor = Monitor::new();
    let mut subscribers: HashMap<QueryId, Arc<DeltaQueue>> = HashMap::new();
    let mut approx_watch: HashMap<ApproxWatchId, ApproxStanding> = HashMap::new();
    let mut next_approx_id: ApproxWatchId = 0;
    // Seed stream of the sampling tier: one fresh seed per sweep, so
    // estimates are deterministic per server run without ever reusing a
    // sample stream.
    let mut approx_seed: u64 = 0x5EED_AB5E;
    loop {
        let msg = match carry.pop_front() {
            Some(msg) => msg,
            None => match rx.recv() {
                Ok(msg) => msg,
                // Every handle (and the Server) is gone: stop serving.
                Err(mpsc::RecvError) => break,
            },
        };
        match msg {
            Msg::Shutdown => break,
            update @ (Msg::Insert { .. } | Msg::Delete { .. }) => {
                // Batched update dequeue, mirroring the query batching
                // below: greedily pull further *already-queued* consecutive
                // updates — never waiting for more to arrive — up to the
                // maintenance batching window, so a burst of updates shares
                // one standing-query maintenance pass.
                let window = engine.config().monitor_batch_window;
                let mut pending = vec![update];
                while pending.len() < window {
                    match rx.try_recv() {
                        Ok(next @ (Msg::Insert { .. } | Msg::Delete { .. })) => {
                            pending.push(next);
                        }
                        Ok(other) => {
                            carry.push_back(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                // The monitor needs every update's values after the engine
                // consumed them; only pay the clones when someone watches.
                // (Only updates are processed until the maintenance pass
                // below, so the registries cannot change mid-batch.)
                let watched = !monitor.is_empty() || !approx_watch.is_empty();
                let mut batch: Vec<(UpdateKind, Vec<f64>)> = Vec::new();
                let mut applied = 0usize;
                let mut update_failed = false;
                for msg in pending {
                    match msg {
                        Msg::Insert { values, tx } => match validate_insert(&engine, &values) {
                            Ok(()) => {
                                let kept = watched.then(|| values.clone());
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        engine.insert(values)
                                    }));
                                match outcome {
                                    Ok(id) => {
                                        stats.updates += 1;
                                        applied += 1;
                                        let _ = tx.send(Ok(id));
                                        if let Some(values) = kept {
                                            batch.push((UpdateKind::Insert, values));
                                        }
                                    }
                                    Err(_) => {
                                        // A panic mid-update may have left
                                        // shard state half-applied; stop
                                        // serving cleanly instead of risking
                                        // corrupt answers (see UpdateFailed).
                                        stats.reject(&ServeError::UpdateFailed);
                                        let _ = tx.send(Err(ServeError::UpdateFailed));
                                        update_failed = true;
                                    }
                                }
                            }
                            Err(err) => {
                                stats.reject(&err);
                                let _ = tx.send(Err(err));
                            }
                        },
                        Msg::Delete { id, tx } => {
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    engine.delete_returning(id)
                                }));
                            match outcome {
                                Ok(removed) => {
                                    stats.updates += 1;
                                    applied += 1;
                                    let _ = tx.send(Ok(removed.is_some()));
                                    match removed {
                                        Some(values) if watched => {
                                            batch.push((UpdateKind::Delete, values));
                                        }
                                        _ => {}
                                    }
                                }
                                Err(_) => {
                                    stats.reject(&ServeError::UpdateFailed);
                                    let _ = tx.send(Err(ServeError::UpdateFailed));
                                    update_failed = true;
                                }
                            }
                        }
                        _ => unreachable!("only updates are drained into an update batch"),
                    }
                    if update_failed {
                        break;
                    }
                }
                if applied > 0 {
                    stats.update_batches += 1;
                    stats.largest_update_batch = stats.largest_update_batch.max(applied);
                }
                if !batch.is_empty() {
                    // The monitor runs on the dispatcher thread, so the
                    // standing results it patches stay serialized with the
                    // update stream.  It is guarded separately from the
                    // engine updates: the batch is committed and
                    // acknowledged above, so a classification panic must
                    // not be reported as UpdateFailed (losing the ids) nor
                    // stop serving.  One maintenance pass covers the whole
                    // drained batch.
                    maintain_standing(&mut monitor, &mut subscribers, &mut stats, |monitor| {
                        monitor.apply_batch(&engine, &batch)
                    });
                    for (_, values) in &batch {
                        maintain_approx_watch(
                            &engine,
                            &mut approx_watch,
                            &mut stats,
                            values,
                            &mut approx_seed,
                        );
                    }
                }
                if update_failed {
                    break;
                }
                // Background compaction: once dead record slots exceed half
                // the id space, rewrite the shards down to their live
                // records (global ids survive — see ShardedEngine::compact,
                // and live data is untouched, so maintained standing
                // results stay exact).  As an engine mutation it gets the
                // update panic contract: a half-compacted pool must not
                // keep serving.
                if engine.tombstone_ratio() > 0.5 {
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.compact()));
                    match outcome {
                        Ok(_) => stats.compactions += 1,
                        Err(_) => {
                            stats.reject(&ServeError::UpdateFailed);
                            break;
                        }
                    }
                }
            }
            Msg::Subscribe {
                algorithm,
                focal,
                k,
                deltas,
                tx,
            } => {
                // Registration runs the initial query; guard it like any
                // other query (the caches recover, serving continues).
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    monitor.register(&engine, algorithm, focal, k)
                }));
                match outcome {
                    Ok(Ok(id)) => {
                        stats.subscriptions += 1;
                        let initial = monitor
                            .result(id)
                            .expect("freshly registered query has a result")
                            .clone();
                        subscribers.insert(id, deltas);
                        let _ = tx.send(Ok((id, initial)));
                    }
                    Ok(Err(err)) => {
                        let err = register_error(err);
                        stats.reject(&err);
                        let _ = tx.send(Err(err));
                    }
                    Err(_) => {
                        stats.reject(&ServeError::QueryFailed);
                        let _ = tx.send(Err(ServeError::QueryFailed));
                    }
                }
            }
            Msg::Unsubscribe { id, tx } => {
                let removed = monitor.unregister(id);
                if let Some(queue) = subscribers.remove(&id) {
                    // Wake a receiver still blocked on the dead stream.
                    queue.close();
                }
                if let Some(tx) = tx {
                    let _ = tx.send(Ok(removed));
                }
            }
            Msg::Subscriptions { tx } => {
                let _ = tx.send(Ok(monitor.len()));
            }
            Msg::SubscribeApprox {
                focal,
                k,
                budget,
                deltas,
                tx,
            } => {
                let valid = if k == 0 {
                    Err(ServeError::InvalidK)
                } else {
                    validate_budget(&budget).and_then(|()| {
                        kspr::check_record(&focal, Some(engine.dim())).map_err(ingest_error)
                    })
                };
                match valid {
                    Ok(()) => {
                        let seed = approx_seed;
                        approx_seed = approx_seed.wrapping_add(1);
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                engine
                                    .run_approx_batch(
                                        std::slice::from_ref(&focal),
                                        k,
                                        &budget,
                                        seed,
                                    )
                                    .pop()
                                    .expect("one focal in, one estimate out")
                            }));
                        match outcome {
                            Ok(initial) => {
                                let id = next_approx_id;
                                next_approx_id += 1;
                                stats.approx_subscriptions += 1;
                                approx_watch.insert(
                                    id,
                                    ApproxStanding {
                                        focal,
                                        k,
                                        budget,
                                        estimate: initial.clone(),
                                        deltas,
                                    },
                                );
                                let _ = tx.send(Ok((id, initial)));
                            }
                            Err(_) => {
                                stats.reject(&ServeError::QueryFailed);
                                let _ = tx.send(Err(ServeError::QueryFailed));
                            }
                        }
                    }
                    Err(err) => {
                        stats.reject(&err);
                        let _ = tx.send(Err(err));
                    }
                }
            }
            Msg::UnsubscribeApprox { id, tx } => {
                let removed = approx_watch.remove(&id).is_some();
                if let Some(tx) = tx {
                    let _ = tx.send(Ok(removed));
                }
            }
            Msg::ApproxSubscriptions { tx } => {
                let _ = tx.send(Ok(approx_watch.len()));
            }
            Msg::Query(job) => {
                // Batched dequeue: greedily pull further *consecutive*
                // queries (updates act as barriers, preserving FIFO
                // semantics between queries and updates).
                let mut batch = vec![job];
                while batch.len() < batch_limit {
                    match rx.try_recv() {
                        Ok(Msg::Query(next)) => batch.push(next),
                        Ok(other) => {
                            // A Batch keeps its own identity (absorbing it
                            // here could blow past `batch_limit`); updates
                            // act as barriers.  Either way FIFO between the
                            // drained queries and what follows is preserved.
                            carry.push_back(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                run_jobs(&engine, batch, &mut stats, &mut approx_seed);
            }
            Msg::Batch(jobs) => run_jobs(&engine, jobs, &mut stats, &mut approx_seed),
        }
    }
    // Wake receivers still blocked on their delta streams before the
    // dispatcher state drops.
    for queue in subscribers.values() {
        queue.close();
    }
    stats.monitor = monitor.stats();
    (engine, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::KsprConfig;

    fn demo_engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            vec![
                vec![0.3, 0.8, 0.8],
                vec![0.9, 0.4, 0.4],
                vec![0.8, 0.3, 0.4],
                vec![0.4, 0.3, 0.6],
            ],
            KsprConfig::default().with_shards(shards),
        )
    }

    #[test]
    fn submit_answers_queries_and_counts_them() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let a = handle.submit(vec![0.5, 0.5, 0.7], 3);
        let b = handle.submit_with(Algorithm::Pcta, vec![0.6, 0.6, 0.5], 2);
        let ra = a.wait().expect("query a");
        let rb = b.wait().expect("query b");
        assert!(ra.num_regions() >= 1);
        assert!(rb.num_regions() >= 1);
        let (engine, stats) = server.shutdown();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(
            stats.batches, 2,
            "distinct (algorithm, k) pairs never merge"
        );
        assert_eq!(engine.len(), 4);
    }

    #[test]
    fn submit_many_runs_as_one_batch() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let focals: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.4 + 0.05 * i as f64, 0.5, 0.6])
            .collect();
        let tickets = handle.submit_many(focals.clone(), 3);
        let results: Vec<KsprResult> = tickets
            .into_iter()
            .map(|t| t.wait().expect("batched query"))
            .collect();
        // Batched answers equal direct engine answers, in order.
        let oracle = demo_engine(2);
        let expected = oracle.run_batch(Algorithm::LpCta, &focals, 3);
        for (got, want) in results.iter().zip(&expected) {
            assert_eq!(got.num_regions(), want.num_regions());
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.largest_batch, 6, "one run_batch served all six");
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn dispatcher_grants_intra_query_workers_except_to_lpcta() {
        // An explicit worker count wins over the core count, so this test is
        // deterministic on any machine.
        let engine = ShardedEngine::new(
            vec![
                vec![0.3, 0.8, 0.8],
                vec![0.9, 0.4, 0.4],
                vec![0.8, 0.3, 0.4],
                vec![0.4, 0.3, 0.6],
            ],
            KsprConfig::default()
                .with_shards(2)
                .with_intra_query_threads(3),
        );
        let server = Server::start(engine, ServeOptions::default());
        let handle = server.handle();
        let cta = handle.submit_with(Algorithm::Cta, vec![0.5, 0.5, 0.7], 3);
        let lp = handle.submit_with(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 3);
        let cta = cta.wait().expect("cta query");
        let lp = lp.wait().expect("lp-cta query");
        assert_eq!(cta.num_regions(), lp.num_regions());
        let (_, stats) = server.shutdown();
        assert_eq!(
            stats.largest_intra_grant, 3,
            "the CTA batch gets the configured worker grant"
        );
        assert_eq!(stats.parallel_batches, 1, "only the CTA batch is parallel");

        // Without the CTA batch, LP-CTA alone never earns a grant above 1.
        let engine = ShardedEngine::new(
            vec![vec![0.3, 0.8, 0.8], vec![0.9, 0.4, 0.4]],
            KsprConfig::default().with_intra_query_threads(4),
        );
        let server = Server::start(engine, ServeOptions::default());
        let handle = server.handle();
        handle
            .submit(vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("lp-cta");
        let (_, stats) = server.shutdown();
        assert_eq!(stats.largest_intra_grant, 1);
        assert_eq!(stats.parallel_batches, 0);
    }

    #[test]
    fn invalid_requests_are_rejected_not_fatal() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 0).wait().unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle.submit(vec![0.5, 0.5], 2).wait().unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .submit(vec![0.5, f64::NAN, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        assert_eq!(
            handle.insert(vec![0.5, f64::INFINITY, 0.7]).wait(),
            Err(ServeError::NonFinite)
        );
        assert_eq!(
            handle.insert(vec![0.5]).wait(),
            Err(ServeError::ArityMismatch {
                expected: 3,
                got: 1
            })
        );
        // RTOPK is 2-D only; on 3-D data it must be rejected up front, not
        // allowed to panic the dispatcher thread.
        assert_eq!(
            handle
                .submit_with(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        // The server is still healthy afterwards.
        let ok = handle.submit(vec![0.5, 0.5, 0.7], 3).wait();
        assert!(ok.expect("server must survive rejections").num_regions() >= 1);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 6);
        assert_eq!(stats.queries, 1);
        // Rejections are attributed to their error variant.
        assert_eq!(stats.rejections.invalid_k, 1);
        assert_eq!(stats.rejections.arity_mismatch, 2, "query + insert");
        assert_eq!(stats.rejections.non_finite, 2, "query + insert");
        assert_eq!(stats.rejections.unsupported_algorithm, 1);
        assert_eq!(stats.rejections.query_failed, 0);
        assert_eq!(
            stats.rejections.total(),
            stats.rejected,
            "per-variant counters must add up to the total"
        );
    }

    #[test]
    fn updates_are_serialized_with_queries() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        // Empty dataset: whole preference space.
        let empty = handle
            .submit(vec![0.5, 0.5], 1)
            .wait()
            .expect("empty query");
        assert_eq!(empty.num_regions(), 1);

        // Insert a dominator; a query submitted afterwards must see it.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let beaten = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(beaten.num_regions(), 0, "the dominator blocks top-1");

        // Delete it again (emptying the shard): back to whole space.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        assert_eq!(handle.delete(id).wait(), Ok(false));
        let restored = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(restored.num_regions(), 1);

        let (engine, stats) = server.shutdown();
        assert!(engine.is_empty());
        assert_eq!(stats.updates, 3, "insert + two deletes (one a no-op)");
    }

    #[test]
    fn subscriptions_stream_deltas_serialized_with_updates() {
        use kspr_monitor::UpdateClass;
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let sub = handle
            .subscribe(vec![0.5, 0.5], 1)
            .wait()
            .expect("subscribe");
        assert_eq!(sub.initial().num_regions(), 1, "no competitor: whole space");

        // A dominator empties the standing result in place; the notification
        // reflects exactly the acknowledged update.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let delta = sub.recv().expect("dominator insert notifies");
        assert_eq!(delta.query, sub.id());
        assert_eq!(delta.class, UpdateClass::Patched);
        assert_eq!(delta.regions_before, 1);
        assert_eq!(delta.regions_after, 0);
        assert_eq!(delta.regions_removed(), 1);

        // Deleting it re-runs the standing query and restores the result.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        let delta = sub.recv().expect("dominator delete notifies");
        assert_eq!(delta.class, UpdateClass::Rerun);
        assert_eq!(delta.regions_after, 1);

        // An invisible update (dominated by the focal record) is silent.
        let id = handle.insert(vec![0.1, 0.1]).wait().expect("insert");
        assert_eq!(handle.delete(id).wait(), Ok(true));
        // Serialize behind the updates before polling.
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        assert!(sub.poll().is_empty(), "unchanged results must not notify");

        // Dropping the subscription unregisters the standing query: the
        // registry (and its maintenance state) returns to zero.
        drop(sub);
        assert_eq!(handle.subscriptions().wait(), Ok(0));

        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 1);
        assert_eq!(stats.notifications, 2);
        assert_eq!(stats.updates, 4);
        assert_eq!(
            stats.monitor.classified(),
            4,
            "one classification per update while subscribed"
        );
        assert_eq!(stats.monitor.patched, 1);
        assert_eq!(stats.monitor.reruns, 1);
        assert_eq!(stats.monitor.unaffected, 2);
    }

    #[test]
    fn unsubscribe_frees_the_registry() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let a = handle
            .subscribe(vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("subscribe a");
        let b = handle
            .subscribe_with(Algorithm::Pcta, vec![0.6, 0.6, 0.5], 3)
            .wait()
            .expect("subscribe b");
        assert_ne!(a.id(), b.id());
        assert_eq!(handle.subscriptions().wait(), Ok(2));
        assert_eq!(handle.unsubscribe(a.id()).wait(), Ok(true));
        assert_eq!(
            handle.unsubscribe(a.id()).wait(),
            Ok(false),
            "double unsubscribe reports the query as gone"
        );
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        drop(b);
        assert_eq!(handle.subscriptions().wait(), Ok(0), "drop unregisters");
        drop(a); // late drop after an explicit unsubscribe is harmless
        assert_eq!(handle.subscriptions().wait(), Ok(0));
        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 2);
    }

    #[test]
    fn invalid_subscriptions_are_rejected_and_counted() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        assert_eq!(
            handle.subscribe(vec![0.5, 0.5, 0.7], 0).wait().unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle.subscribe(vec![0.5, 0.5], 2).wait().unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .subscribe(vec![0.5, f64::NAN, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        // The sweep baselines have no maintenance hooks.
        assert_eq!(
            handle
                .subscribe_with(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 0);
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.rejections.invalid_k, 1);
        assert_eq!(stats.rejections.arity_mismatch, 1);
        assert_eq!(stats.rejections.non_finite, 1);
        assert_eq!(stats.rejections.unsupported_algorithm, 1);
        assert_eq!(stats.rejections.total(), stats.rejected);
    }

    #[test]
    fn subscription_results_match_direct_queries_across_updates() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let sub = handle
            .subscribe_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("subscribe");
        let direct = handle
            .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("query");
        assert_eq!(sub.initial().num_regions(), direct.num_regions());
        assert_eq!(sub.initial().rank_signature(), direct.rank_signature());

        // Stream a few updates; after each, the maintained result (initial +
        // applied deltas) must agree with a direct query on region count.
        // The direct query doubles as a serialization barrier: once it is
        // answered, every notification for the preceding update has been
        // delivered, so `poll` cannot race the dispatcher.
        let mut current = sub.initial().num_regions();
        for values in [vec![0.6, 0.6, 0.8], vec![0.2, 0.9, 0.6]] {
            let id = handle.insert(values).wait().expect("insert");
            let direct = handle
                .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .expect("query");
            for delta in sub.poll() {
                current = delta.regions_after;
            }
            assert_eq!(current, direct.num_regions(), "after insert");
            assert_eq!(handle.delete(id).wait(), Ok(true));
            let direct = handle
                .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .expect("query");
            for delta in sub.poll() {
                current = delta.regions_after;
            }
            assert_eq!(current, direct.num_regions(), "after delete");
        }
    }

    #[test]
    fn tier_counters_are_consistent_with_totals() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);

        // Two exact queries (legacy + tiered), two approximate (dedicated +
        // tiered), and two Auto queries forced one to each side by extreme
        // thresholds.
        let focal = vec![0.5, 0.5, 0.7];
        handle.submit(focal.clone(), 2).wait().expect("exact");
        let tiered_exact = handle
            .submit_tiered(Algorithm::LpCta, focal.clone(), 2, QueryTier::Exact)
            .wait()
            .expect("tiered exact");
        assert!(tiered_exact.is_exact());
        let est = handle
            .submit_approx(focal.clone(), 2, budget)
            .wait()
            .expect("approx");
        assert!(est.half_width <= budget.epsilon + 1e-12);
        let tiered_approx = handle
            .submit_tiered(
                Algorithm::LpCta,
                focal.clone(),
                2,
                QueryTier::approximate(budget),
            )
            .wait()
            .expect("tiered approx");
        assert!(!tiered_approx.is_exact());
        for (threshold, expect_exact) in [(f64::INFINITY, true), (0.0, false)] {
            let routed = handle
                .submit_tiered(
                    Algorithm::LpCta,
                    focal.clone(),
                    2,
                    QueryTier::Auto {
                        budget,
                        cost_threshold: threshold,
                    },
                )
                .wait()
                .expect("auto");
            assert_eq!(routed.is_exact(), expect_exact);
        }

        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.exact_queries, 3, "submit + tiered exact + auto-exact");
        assert_eq!(
            stats.approx_queries, 3,
            "submit_approx + tiered approx + auto-approx"
        );
        assert_eq!(
            stats.exact_queries + stats.approx_queries,
            stats.queries,
            "per-tier counters must add up to the total"
        );
        assert_eq!(stats.auto_routed_exact, 1);
        assert_eq!(stats.auto_routed_approx, 1);
        assert!(stats.auto_routed_exact <= stats.exact_queries);
        assert!(stats.auto_routed_approx <= stats.approx_queries);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn approx_submissions_batch_separately_from_exact_ones() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);
        // Interleaved same-(k,budget) approximate and same-(algorithm,k)
        // exact submissions: the greedy drain groups them into one sweep and
        // one run_batch.  Submit everything before waiting so the dispatcher
        // sees the whole burst at once.
        let mut approx_tickets = Vec::new();
        let mut exact_tickets = Vec::new();
        for i in 0..4 {
            let focal = vec![0.4 + 0.05 * i as f64, 0.5, 0.6];
            approx_tickets.push(handle.submit_approx(focal.clone(), 3, budget));
            exact_tickets.push(handle.submit(focal, 3));
        }
        for t in approx_tickets {
            t.wait().expect("approx query");
        }
        for t in exact_tickets {
            t.wait().expect("exact query");
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 8);
        assert_eq!(stats.exact_queries, 4);
        assert_eq!(stats.approx_queries, 4);
        assert!(
            stats.batches <= 4,
            "the burst must batch (got {} batches), not run one-by-one",
            stats.batches
        );
    }

    #[test]
    fn approx_estimates_match_direct_engine_estimates() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.08, 0.9);
        // The dispatcher's seed stream starts at a fixed constant, so the
        // first sweep is reproducible against a direct engine call.
        let est = handle
            .submit_approx(vec![0.5, 0.5, 0.7], 3, budget)
            .wait()
            .expect("approx");
        let direct = demo_engine(2)
            .run_approx_batch(&[vec![0.5, 0.5, 0.7]], 3, &budget, 0x5EED_AB5E)
            .pop()
            .unwrap();
        assert_eq!(est.impact, direct.impact);
        assert_eq!(est.samples, direct.samples);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.approx_queries, 1);
    }

    #[test]
    fn invalid_approx_requests_are_rejected_not_fatal() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);
        assert_eq!(
            handle
                .submit_approx(vec![0.5, 0.5, 0.7], 0, budget)
                .wait()
                .unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle
                .submit_approx(vec![0.5, 0.5], 2, budget)
                .wait()
                .unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .subscribe_approx(vec![f64::NAN, 0.5, 0.7], 2, budget)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        // RTOPK on 3-D data: rejected for exact-capable tiers, but a purely
        // approximate request never consults the algorithm, so it passes.
        assert!(handle
            .submit_tiered(
                Algorithm::Rtopk,
                vec![0.5, 0.5, 0.7],
                2,
                QueryTier::approximate(budget)
            )
            .wait()
            .is_ok());
        assert_eq!(
            handle
                .submit_tiered(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2, QueryTier::Exact)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.rejections.total(), stats.rejected);
    }

    #[test]
    fn pathological_budgets_are_rejected_not_sampled() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        // Too fine: the Hoeffding sample count would exceed the server cap
        // (and, unchecked, would try to materialize gigabytes of samples).
        let too_fine = ErrorBudget {
            epsilon: 1e-5,
            confidence: 0.95,
        };
        assert_eq!(
            handle
                .submit_approx(vec![0.5, 0.5, 0.7], 2, too_fine)
                .wait()
                .unwrap_err(),
            ServeError::InvalidBudget
        );
        // Malformed: the public fields bypass ErrorBudget::new's checks.
        for bad in [
            ErrorBudget {
                epsilon: -0.1,
                confidence: 0.9,
            },
            ErrorBudget {
                epsilon: f64::NAN,
                confidence: 0.9,
            },
            ErrorBudget {
                epsilon: 0.1,
                confidence: 1.0,
            },
        ] {
            assert_eq!(
                handle
                    .submit_tiered(
                        Algorithm::LpCta,
                        vec![0.5, 0.5, 0.7],
                        2,
                        QueryTier::approximate(bad)
                    )
                    .wait()
                    .unwrap_err(),
                ServeError::InvalidBudget
            );
        }
        assert_eq!(
            handle
                .subscribe_approx(vec![0.5, 0.5, 0.7], 2, too_fine)
                .wait()
                .unwrap_err(),
            ServeError::InvalidBudget
        );
        // A sane budget still serves afterwards.
        let ok = handle
            .submit_approx(vec![0.5, 0.5, 0.7], 2, ErrorBudget::new(0.1, 0.9))
            .wait();
        assert!(ok.is_ok(), "the server must survive budget rejections");
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 5);
        assert_eq!(stats.rejections.invalid_budget, 5);
        assert_eq!(stats.rejections.total(), stats.rejected);
        assert_eq!(stats.approx_queries, 1);
    }

    #[test]
    fn approx_subscriptions_redraw_only_when_the_impact_can_move() {
        use kspr::ErrorBudget;
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);
        let sub = handle
            .subscribe_approx(vec![0.5, 0.5], 1, budget)
            .wait()
            .expect("subscribe");
        assert_eq!(sub.initial().impact, 1.0, "no competitor: certain top-1");

        // A dominator definitely moves the impact: the estimate is redrawn.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let delta = sub.recv().expect("dominator insert notifies");
        assert_eq!(delta.query, sub.id());
        assert_eq!(delta.before.impact, 1.0);
        assert_eq!(delta.after.impact, 0.0, "a dominator ends every top-1 hope");

        // An update the focal record dominates is witnessed away: no
        // notification, counted as unaffected.
        let invisible = handle.insert(vec![0.1, 0.1]).wait().expect("insert");
        assert_eq!(handle.delete(invisible).wait(), Ok(true));
        // Serialize behind the updates before polling.
        assert_eq!(handle.approx_subscriptions().wait(), Ok(1));
        assert!(
            sub.poll().is_empty(),
            "impact-preserving updates must not redraw"
        );

        // Deleting the dominator moves the impact back; redrawn again.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        let delta = sub.recv().expect("dominator delete notifies");
        assert_eq!(delta.after.impact, 1.0);

        drop(sub);
        assert_eq!(handle.approx_subscriptions().wait(), Ok(0), "drop frees");
        let (_, stats) = server.shutdown();
        assert_eq!(stats.approx_subscriptions, 1);
        assert_eq!(stats.approx_notifications, 2);
        assert_eq!(
            stats.approx_watch_unaffected, 2,
            "the invisible insert + delete classified away"
        );
    }

    #[test]
    fn update_bursts_share_one_maintenance_pass_within_the_window() {
        use kspr::ErrorBudget;
        let server = Server::start(
            ShardedEngine::empty(
                2,
                KsprConfig::default()
                    .with_shards(2)
                    .with_monitor_batch_window(4),
            ),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let sub = handle
            .subscribe(vec![0.9, 0.9], 1)
            .wait()
            .expect("subscribe");
        // A live competitor, so the approximate registration below actually
        // samples (an empty pool short-circuits without work).
        handle.insert(vec![0.5, 0.5]).wait().expect("first insert");
        // Block the dispatcher on an expensive approximate registration
        // (hundreds of thousands of samples) so the update burst below is
        // fully queued before the dispatcher sees its first insert.
        let blocker = handle.subscribe_approx(vec![0.95, 0.95], 1, ErrorBudget::new(0.002, 0.99));
        let tickets: Vec<_> = (0..8)
            .map(|i| handle.insert(vec![0.1 + 0.01 * i as f64, 0.2]))
            .collect();
        let approx_sub = blocker.wait().expect("approx subscribe");
        for t in tickets {
            t.wait().expect("burst insert");
        }
        // Every burst insert is dominated by the standing focal points, so
        // both registries classify them away without result changes.
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        assert!(
            sub.poll().is_empty(),
            "focal-dominated inserts never notify"
        );
        drop(approx_sub);
        drop(sub);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.updates, 9);
        assert_eq!(
            stats.update_batches, 3,
            "1 single + the 8 queued updates drained in window-4 batches"
        );
        assert_eq!(stats.largest_update_batch, 4, "the window caps the drain");
        assert_eq!(stats.monitor.batches, 3);
        assert_eq!(stats.monitor.batched_updates, 9);
        assert_eq!(stats.monitor.classified(), 9);
        assert_eq!(stats.monitor.unaffected, 9);
        assert_eq!(stats.notifications, 0);
    }

    #[test]
    fn window_one_restores_per_update_maintenance() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_monitor_batch_window(1)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let tickets: Vec<_> = (0..6)
            .map(|i| handle.insert(vec![0.2 + 0.1 * i as f64, 0.3]))
            .collect();
        for t in tickets {
            t.wait().expect("insert");
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.updates, 6);
        assert_eq!(stats.update_batches, 6, "window 1 never coalesces");
        assert_eq!(stats.largest_update_batch, 1);
    }

    #[test]
    fn delta_queue_caps_and_coalesces_slow_consumers() {
        let queue = DeltaQueue::new();
        let delta = |i: usize, class: UpdateClass| ResultDelta {
            query: 7,
            class,
            regions_before: i,
            regions_after: i + 1,
            ranks_before: vec![i],
            ranks_after: vec![i + 1],
        };
        for i in 0..MAX_PENDING_DELTAS {
            assert!(matches!(
                queue.push(delta(i, UpdateClass::Patched)),
                DeltaPush::Queued
            ));
        }
        // The queue is at its cap: further deltas merge into the newest
        // pending one, keeping its oldest `before` and the latest `after`.
        assert!(matches!(
            queue.push(delta(MAX_PENDING_DELTAS, UpdateClass::Rerun)),
            DeltaPush::Coalesced
        ));
        assert!(matches!(
            queue.push(delta(MAX_PENDING_DELTAS + 1, UpdateClass::Patched)),
            DeltaPush::Coalesced
        ));
        let mut drained = Vec::new();
        while let Some(d) = queue.try_pop() {
            drained.push(d);
        }
        assert_eq!(drained.len(), MAX_PENDING_DELTAS, "the cap held");
        let tail = drained.last().expect("cap is at least 1");
        assert_eq!(
            tail.regions_before,
            MAX_PENDING_DELTAS - 1,
            "the merged delta keeps the oldest before state"
        );
        assert_eq!(
            tail.regions_after,
            MAX_PENDING_DELTAS + 2,
            "the merged delta takes the newest after state"
        );
        assert_eq!(
            tail.class,
            UpdateClass::Rerun,
            "a re-run anywhere in the merged span survives later patches"
        );
        assert_eq!(tail.ranks_after, vec![MAX_PENDING_DELTAS + 2]);
        // The chain is still intact: the merged tail continues from the last
        // unmerged delta.
        assert_eq!(
            drained[drained.len() - 2].regions_after,
            tail.regions_before
        );
        // Closing keeps pending deltas drainable, drops later pushes, and
        // unblocks `pop`.
        assert!(matches!(
            queue.push(delta(0, UpdateClass::Patched)),
            DeltaPush::Queued
        ));
        queue.close();
        assert!(matches!(
            queue.push(delta(1, UpdateClass::Patched)),
            DeltaPush::Closed
        ));
        assert!(queue.pop().is_some(), "drained before the closed marker");
        assert!(queue.pop().is_none());
    }

    #[test]
    fn compaction_triggers_in_the_dispatcher_and_preserves_ids() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let ids: Vec<RecordId> = (0..8)
            .map(|i| {
                handle
                    .insert(vec![0.3 + 0.05 * i as f64, 0.8 - 0.05 * i as f64])
                    .wait()
                    .expect("insert")
            })
            .collect();
        let sub = handle
            .subscribe(vec![0.55, 0.55], 2)
            .wait()
            .expect("subscribe");
        // Five of eight slots die: past the 50% threshold the dispatcher
        // compacts, and the standing query stays maintained across the
        // rewrite.
        for &id in &ids[..5] {
            assert_eq!(handle.delete(id).wait(), Ok(true));
        }
        // A compacted-away id stays dead; a surviving one still routes.
        assert_eq!(handle.delete(ids[0]).wait(), Ok(false));
        assert_eq!(
            handle.delete(ids[5]).wait(),
            Ok(true),
            "a surviving id must outlive compaction"
        );
        let direct = handle
            .submit(vec![0.55, 0.55], 2)
            .wait()
            .expect("direct query");
        let mut regions = sub.initial().num_regions();
        for delta in sub.poll() {
            regions = delta.regions_after;
        }
        assert_eq!(
            regions,
            direct.num_regions(),
            "the standing result stays maintained across compaction"
        );
        let (engine, stats) = server.shutdown();
        assert_eq!(
            stats.compactions, 1,
            "exactly the fifth delete crossed the threshold"
        );
        assert_eq!(engine.len(), 2);
        assert_eq!(
            engine.tombstone_count(),
            1,
            "only the post-compaction delete leaves a tombstone"
        );
    }

    #[test]
    fn tickets_resolve_to_server_closed_after_shutdown() {
        let server = Server::start(demo_engine(1), ServeOptions::default());
        let handle = server.handle();
        drop(server); // Drop joins the dispatcher.
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 2).wait().unwrap_err(),
            ServeError::ServerClosed
        );
    }
}
