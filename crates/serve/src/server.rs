//! The serving front-end: handles, server lifecycle, and the layered
//! service around the dispatch core.
//!
//! The serving stack is layered; this module is the orchestration shell
//! that wires the layers together:
//!
//! ```text
//!   kspr-wire (net)      TCP frames -> ServeHandle calls
//!        |
//!   admission            enqueue-time stamps, dispatch-time verdicts
//!        |
//!   dispatch (batch)     one thread: update order, query batching,
//!        |               standing-query maintenance
//!   persist (kspr-durable)  WAL commits before acks, epoch snapshots
//! ```
//!
//! [`Server::start`] moves a [`ShardedEngine`] onto a dispatcher thread and
//! returns a handle factory; [`Server::start_durable`] does the same with a
//! WAL/snapshot directory attached, and [`Server::recover`] rebuilds the
//! engine and the standing-query registry from such a directory after a
//! crash (bit-identical to a server that never went down — see the
//! `persist` module).  Clients talk to the engine exclusively through
//! cloneable [`ServeHandle`]s:
//!
//! * [`ServeHandle::submit`] enqueues one query and returns a [`Ticket`] —
//!   a future-like receiver resolved when the dispatcher answers;
//! * [`ServeHandle::submit_many`] enqueues a whole batch at once;
//! * [`ServeHandle::insert`] / [`ServeHandle::delete`] enqueue updates,
//!   serialized with the queries around them (a query submitted after an
//!   insert sees the inserted record).
//!
//! The dispatcher drains the queue greedily: consecutive pending queries are
//! grouped by `(algorithm, k)` and answered through one
//! [`ShardedEngine::run_batch`] call each — the batched-dequeue pattern —
//! while the shared candidate engine and the per-shard prep caches carry over
//! between batches.  Invalid requests (`k == 0`, arity mismatch, non-finite
//! focal values) are rejected with a [`ServeError`] instead of panicking the
//! serving thread; [`ServeStats`] counts every rejection per error variant.
//!
//! Every query is stamped at enqueue with the pending-queue depth and its
//! client's in-flight count; the dispatcher judges the stamp against
//! [`AdmissionOptions`] — past the degradation watermark tier-dispatched
//! queries are downgraded to the approximate tier, past the hard limit (or
//! the per-client quota) they are rejected outright (see the `admission`
//! module).  At shutdown ([`Server::shutdown`] or dropping the server)
//! every request still pending resolves with [`ServeError::Shutdown`]
//! instead of hanging on a dead channel.
//!
//! # Standing queries
//!
//! [`ServeHandle::subscribe`] registers a long-lived query with the
//! dispatcher's [`kspr_monitor::Monitor`] and returns a [`Subscription`].
//! After every update batch the dispatcher classifies each standing query as
//! unaffected / patchable / must-rerun (see the `kspr-monitor` crate docs),
//! maintains it accordingly, and pushes a [`kspr_monitor::ResultDelta`] to
//! the subscription whenever its result actually changed.  Because the
//! monitor runs on the dispatcher thread, updates and notifications stay
//! serialized with the query stream: a notification always reflects exactly
//! the updates acknowledged before it.  Dropping a [`Subscription`]
//! unregisters the standing query (no maintenance state leaks from a
//! long-lived server).  If a maintenance pass itself panics (after the
//! update was committed and acknowledged), the registry is invalidated
//! rather than served stale: every subscription's channel closes and
//! clients re-subscribe.
//!
//! Updates use the same batched-dequeue pattern as queries: the dispatcher
//! greedily drains further *already-queued* consecutive inserts/deletes —
//! up to [`kspr::KsprConfig::monitor_batch_window`], never waiting for more
//! to arrive — applies each one, commits the whole batch to the WAL (one
//! fsync — on a durable server), acknowledges each ticket, then runs
//! **one** standing-query maintenance pass
//! ([`kspr_monitor::Monitor::apply_batch`]) over the whole batch, so a burst
//! of updates shares its classification probes and coalesces per-query
//! engine re-runs.  A subscriber that stops draining its notifications does
//! not grow dispatcher memory without bound: each subscription holds at most
//! [`MAX_PENDING_DELTAS`] pending deltas, after which newer deltas are
//! merged into the newest pending one (deltas chain, so the merged delta
//! still spans exactly the missed updates).  After every update batch the
//! dispatcher also checks the pool's tombstone ratio and, past 50% dead
//! slots, compacts the shards in place ([`ShardedEngine::compact`]) —
//! global record ids survive, so clients and standing-query bookkeeping
//! never notice.  On a durable server a compaction also installs a fresh
//! epoch snapshot, truncating the WAL.

use crate::admission::{AdmissionOptions, Stamp};
use crate::batch::{validate_budget, QueryJob, Sink};
use crate::dispatch::{dispatch, reject_msg, DispatchConfig, Msg};
use crate::error::{ServeError, Ticket};
use crate::persist::{recover_state, snapshot_of, Persist, RecoverError};
use crate::sharded::ShardedEngine;
use crate::stats::ServeStats;
use crate::subscription::{ApproxSubscribeTicket, ApproxWatchId, DeltaQueue, SubscribeTicket};
use crate::telemetry::{LiveStats, ServeMetrics, SlowQuery};
use kspr::{Algorithm, ApproxImpact, ErrorBudget, KsprConfig, KsprResult, QueryTier, RecordId};
use kspr_approx::TieredResult;
use kspr_durable::DurableStore;
use kspr_monitor::{Monitor, QueryId};
use kspr_telemetry::{MetricsSnapshot, RequestTrace, TraceId, TraceRecord};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Algorithm used by [`ServeHandle::submit`] (override per request with
    /// [`ServeHandle::submit_with`]).
    pub algorithm: Algorithm,
    /// Maximum number of queries merged into one `run_batch` call when
    /// draining the queue.  (An explicit [`ServeHandle::submit_many`] batch
    /// is always answered through a single call, whatever its size.)
    pub batch_limit: usize,
    /// Admission-control thresholds (all off by default; see the
    /// `admission` module).
    pub admission: AdmissionOptions,
    /// Queries whose end-to-end latency (enqueue to acknowledgement) meets
    /// this threshold are retained in the slow-query log (the
    /// [`crate::SLOW_LOG_CAPACITY`] most recent; read through
    /// [`ServeHandle::slow_queries`]).  `None` (the default) disables the
    /// log; `Some(Duration::ZERO)` retains every query.
    pub slow_query_threshold: Option<Duration>,
    /// WAL size watermark, bytes: once the live WAL (the `kspr_wal_bytes`
    /// gauge) grows past this, the server logs one warning per snapshot
    /// epoch suggesting a compaction.  Default 64 MiB.
    pub wal_warn_bytes: u64,
    /// How many [`SlowQuery`] entries the slow-query log retains before
    /// evicting oldest-first.  Default [`crate::SLOW_LOG_CAPACITY`].
    pub slow_log_capacity: usize,
    /// How many complete span trees the flight recorder retains (most
    /// recent wins).  Traced requests enter the recorder when the client
    /// pinned them with a wire trace id or when they crossed
    /// [`ServeOptions::slow_query_threshold`].  Default
    /// [`crate::FLIGHT_RECORDER_CAPACITY`].
    pub flight_recorder_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::LpCta,
            batch_limit: 64,
            admission: AdmissionOptions::default(),
            slow_query_threshold: None,
            wal_warn_bytes: 64 << 20,
            slow_log_capacity: crate::SLOW_LOG_CAPACITY,
            flight_recorder_capacity: crate::FLIGHT_RECORDER_CAPACITY,
        }
    }
}

/// A cloneable client handle onto a running [`Server`].
///
/// Clones share one admission identity (they draw from the same per-client
/// in-flight quota); [`ServeHandle::fork_client`] starts a fresh one — the
/// TCP front-end forks per connection.
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
    queue: Arc<AtomicUsize>,
    client: Arc<AtomicUsize>,
    closing: Arc<AtomicBool>,
    live: Arc<LiveStats>,
    metrics: Arc<ServeMetrics>,
}

impl ServeHandle {
    /// Enqueues `msg`, resolving it immediately when the server is shutting
    /// down (or gone) instead of letting the ticket observe a dead channel.
    fn enqueue(&self, msg: Msg) {
        if self.closing.load(Ordering::Acquire) {
            reject_msg(msg, &ServeError::Shutdown);
            return;
        }
        if let Err(mpsc::SendError(msg)) = self.tx.send(msg) {
            // The channel died: an orderly shutdown if the flag was raised
            // (raised *before* the dispatcher is told to stop, so this read
            // observes it), a crashed dispatcher otherwise.
            let err = if self.closing.load(Ordering::Acquire) {
                ServeError::Shutdown
            } else {
                ServeError::ServerClosed
            };
            reject_msg(msg, &err);
        }
    }

    /// Stamps one query with the current admission state.
    fn stamp(&self) -> Stamp {
        Stamp::acquire(&self.queue, &self.client)
    }

    /// A handle with a **fresh admission identity**: queries submitted
    /// through it count against their own per-client in-flight quota, not
    /// this handle's.  (Plain `clone` shares the identity.)
    pub fn fork_client(&self) -> Self {
        Self {
            tx: self.tx.clone(),
            algorithm: self.algorithm,
            queue: Arc::clone(&self.queue),
            client: Arc::new(AtomicUsize::new(0)),
            closing: Arc::clone(&self.closing),
            live: Arc::clone(&self.live),
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Enqueues one query with the server's default algorithm.
    pub fn submit(&self, focal: Vec<f64>, k: usize) -> Ticket<KsprResult> {
        self.submit_with(self.algorithm, focal, k)
    }

    /// Enqueues one query with an explicit algorithm.
    pub fn submit_with(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Ticket<KsprResult> {
        self.submit_with_trace(algorithm, focal, k, RequestTrace::start())
    }

    /// [`ServeHandle::submit_with`] under a caller-built [`RequestTrace`]
    /// (usually [`RequestTrace::traced`], so the request grows a span tree
    /// the flight recorder can retain).
    pub fn submit_with_trace(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
        trace: RequestTrace,
    ) -> Ticket<KsprResult> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Query(QueryJob {
            algorithm,
            focal,
            k,
            tier: QueryTier::Exact,
            stamp: self.stamp(),
            sink: Sink::Exact(tx),
            trace,
        }));
        ticket
    }

    /// Enqueues one approximate query: the answer is a market-impact
    /// estimate meeting `budget` instead of exact regions.  Consecutive
    /// approximate submissions with the same `(k, budget)` are answered
    /// through one shared sampling sweep
    /// ([`ShardedEngine::run_approx_batch`]) — batched separately from the
    /// exact queries around them.
    pub fn submit_approx(
        &self,
        focal: Vec<f64>,
        k: usize,
        budget: ErrorBudget,
    ) -> Ticket<ApproxImpact> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Query(QueryJob {
            algorithm: self.algorithm,
            focal,
            k,
            tier: QueryTier::Approximate { budget },
            stamp: self.stamp(),
            sink: Sink::Approx(tx),
            trace: RequestTrace::start(),
        }));
        ticket
    }

    /// Enqueues one query under an explicit per-request [`QueryTier`]; the
    /// ticket resolves to whichever answer the tier produced (`Auto` is
    /// routed by the dispatcher's cost estimate at dispatch time, counted in
    /// [`ServeStats`]).  This is the only submission path admission control
    /// may **degrade**: past the watermark an exact-capable tier is answered
    /// approximately instead (see [`AdmissionOptions::degrade_watermark`]).
    pub fn submit_tiered(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
        tier: QueryTier,
    ) -> Ticket<TieredResult> {
        self.submit_tiered_trace(algorithm, focal, k, tier, RequestTrace::start())
    }

    /// [`ServeHandle::submit_tiered`] under a caller-built [`RequestTrace`].
    pub fn submit_tiered_trace(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
        tier: QueryTier,
        trace: RequestTrace,
    ) -> Ticket<TieredResult> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Query(QueryJob {
            algorithm,
            focal,
            k,
            tier,
            stamp: self.stamp(),
            sink: Sink::Tiered(tx),
            trace,
        }));
        ticket
    }

    /// Enqueues a whole batch of same-`k` queries at once; the dispatcher
    /// answers them through a single [`ShardedEngine::run_batch`] call.
    pub fn submit_many(&self, focals: Vec<Vec<f64>>, k: usize) -> Vec<Ticket<KsprResult>> {
        let mut jobs = Vec::with_capacity(focals.len());
        let mut tickets = Vec::with_capacity(focals.len());
        for focal in focals {
            let (tx, ticket) = Ticket::new();
            jobs.push(QueryJob {
                algorithm: self.algorithm,
                focal,
                k,
                tier: QueryTier::Exact,
                stamp: self.stamp(),
                sink: Sink::Exact(tx),
                trace: RequestTrace::start(),
            });
            tickets.push(ticket);
        }
        self.enqueue(Msg::Batch(jobs));
        tickets
    }

    /// Enqueues an insert; resolves to the new record's global id.
    pub fn insert(&self, values: Vec<f64>) -> Ticket<RecordId> {
        self.insert_trace(values, RequestTrace::start())
    }

    /// [`ServeHandle::insert`] under a caller-built [`RequestTrace`].
    pub fn insert_trace(&self, values: Vec<f64>, trace: RequestTrace) -> Ticket<RecordId> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Insert { values, tx, trace });
        ticket
    }

    /// Enqueues a delete; resolves to whether a live record was removed.
    pub fn delete(&self, id: RecordId) -> Ticket<bool> {
        self.delete_trace(id, RequestTrace::start())
    }

    /// [`ServeHandle::delete`] under a caller-built [`RequestTrace`].
    pub fn delete_trace(&self, id: RecordId, trace: RequestTrace) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Delete { id, tx, trace });
        ticket
    }

    /// Registers a standing query with the server's default algorithm;
    /// resolves to a [`Subscription`] that yields a
    /// [`kspr_monitor::ResultDelta`] after every update that changed the
    /// query's result.
    pub fn subscribe(&self, focal: Vec<f64>, k: usize) -> SubscribeTicket {
        self.subscribe_with(self.algorithm, focal, k)
    }

    /// Registers a standing query with an explicit algorithm (CellTree
    /// policies only; the sweep baselines resolve to
    /// [`ServeError::UnsupportedAlgorithm`]).
    pub fn subscribe_with(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> SubscribeTicket {
        let queue = DeltaQueue::new();
        let (tx, rx) = mpsc::channel();
        self.enqueue(Msg::Subscribe {
            algorithm,
            focal,
            k,
            deltas: Arc::clone(&queue),
            tx,
        });
        SubscribeTicket {
            rx,
            deltas: queue,
            control: self.tx.clone(),
        }
    }

    /// Unregisters a standing query by id; resolves to whether it was still
    /// registered.  (Dropping the [`Subscription`] unregisters implicitly.)
    pub fn unsubscribe(&self, id: QueryId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Unsubscribe { id, tx: Some(tx) });
        ticket
    }

    /// Number of currently registered standing queries (registry telemetry;
    /// also the leak check for [`Subscription`] drops).
    pub fn subscriptions(&self) -> Ticket<usize> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Subscriptions { tx });
        ticket
    }

    /// Registers an **approximate standing query**: the dispatcher holds a
    /// budgeted impact estimate for `focal` and keeps it honest across
    /// updates — an update that provably preserves the true impact (the
    /// `kspr-monitor` witness classifier) leaves the estimate untouched
    /// (its interval still covers the unchanged truth); any other update
    /// redraws the estimate and pushes an [`crate::ApproxDelta`].  Dropping
    /// the subscription unregisters it.
    pub fn subscribe_approx(
        &self,
        focal: Vec<f64>,
        k: usize,
        budget: ErrorBudget,
    ) -> ApproxSubscribeTicket {
        let (delta_tx, delta_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        self.enqueue(Msg::SubscribeApprox {
            focal,
            k,
            budget,
            deltas: delta_tx,
            tx,
        });
        ApproxSubscribeTicket {
            rx,
            deltas: delta_rx,
            control: self.tx.clone(),
        }
    }

    /// Unregisters an approximate standing query by id; resolves to whether
    /// it was still registered.
    pub fn unsubscribe_approx(&self, id: ApproxWatchId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::UnsubscribeApprox { id, tx: Some(tx) });
        ticket
    }

    /// Number of currently registered approximate standing queries.
    pub fn approx_subscriptions(&self) -> Ticket<usize> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::ApproxSubscriptions { tx });
        ticket
    }

    /// A live snapshot of the serving counters, serialized with the
    /// requests around it.
    pub fn stats(&self) -> Ticket<ServeStats> {
        let (tx, ticket) = Ticket::new();
        self.enqueue(Msg::Stats { tx });
        ticket
    }

    /// A live snapshot of the serving counters **without queueing behind the
    /// dispatcher**: read directly from the shared atomic counters, so it
    /// returns immediately even while the dispatcher is deep in a long
    /// batch.  Every counter a finished request contributed is visible (the
    /// dispatcher publishes counters before acknowledgements); requests
    /// still in flight may or may not be counted yet.
    pub fn stats_now(&self) -> ServeStats {
        self.live.snapshot()
    }

    /// A live [`MetricsSnapshot`] of every counter, gauge and latency
    /// histogram the server maintains — per-stage, per-tier and
    /// per-algorithm latency distributions included.  Non-blocking, like
    /// [`ServeHandle::stats_now`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.queue.load(Ordering::Relaxed) as u64,
            &self.live.snapshot(),
        )
    }

    /// The retained slow-query log, oldest first (empty unless
    /// [`ServeOptions::slow_query_threshold`] is set).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.metrics.slow_queries()
    }

    /// The flight recorder's retained span trees, oldest first: every
    /// client-pinned trace plus every traced request that crossed the
    /// slow-query threshold, most recent
    /// [`ServeOptions::flight_recorder_capacity`] wins.
    pub fn traces(&self) -> Vec<Arc<TraceRecord>> {
        self.metrics.traces()
    }

    /// The retained span tree of one request, if the flight recorder still
    /// holds it.
    pub fn trace(&self, trace_id: TraceId) -> Option<Arc<TraceRecord>> {
        self.metrics.trace(trace_id)
    }

    /// The flight recorder's contents as Chrome Trace Event Format JSON —
    /// open in `chrome://tracing` / Perfetto.  The same document the HTTP
    /// front-end serves at `/trace`.
    pub fn chrome_trace(&self) -> String {
        kspr_telemetry::chrome_trace_json(&self.metrics.traces())
    }
}

/// A running serving loop that owns a [`ShardedEngine`].
pub struct Server {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
    queue: Arc<AtomicUsize>,
    closing: Arc<AtomicBool>,
    live: Arc<LiveStats>,
    metrics: Arc<ServeMetrics>,
    join: Option<JoinHandle<(ShardedEngine, ServeStats)>>,
}

impl Server {
    /// Moves `engine` onto a dispatcher thread and starts serving
    /// (in-memory only — nothing survives the process; see
    /// [`Server::start_durable`]).
    pub fn start(engine: ShardedEngine, options: ServeOptions) -> Self {
        Self::launch(engine, options, None, Monitor::new())
    }

    /// Starts a **durable** server over the state directory `dir`: every
    /// applied update and registry change is WAL-committed before its
    /// ticket resolves, and epoch snapshots are installed after compactions
    /// and at clean shutdown.  The directory is created if needed and a
    /// snapshot of `engine`'s initial state is installed up front, so
    /// [`Server::recover`] works from the first update on.
    pub fn start_durable(
        engine: ShardedEngine,
        options: ServeOptions,
        dir: impl AsRef<Path>,
    ) -> std::io::Result<Self> {
        let store = DurableStore::open(dir.as_ref())?;
        store.install_snapshot(&snapshot_of(&engine, &Monitor::new()))?;
        let persist = Persist::open(store, true)?;
        Ok(Self::launch(engine, options, Some(persist), Monitor::new()))
    }

    /// Rebuilds the engine and the standing-query registry from `dir`'s
    /// snapshot plus its committed WAL tail and resumes serving durably.
    ///
    /// The recovered server answers **bit-identically** to one that never
    /// went down: the engines are deterministic functions of the live
    /// record set, and standing queries are re-registered against the
    /// recovered dataset (the recovery proptest in `kspr-repro` asserts
    /// this against a never-crashed twin).  Exact standing queries come
    /// back with fresh registry state but their wire subscriptions do not —
    /// clients re-subscribe after a crash.
    pub fn recover(
        dir: impl AsRef<Path>,
        config: KsprConfig,
        options: ServeOptions,
    ) -> Result<Self, RecoverError> {
        let store = DurableStore::open(dir.as_ref()).map_err(RecoverError::from)?;
        let (engine, monitor) = recover_state(&store, config)?;
        // The recovered state becomes the new epoch: install it and replay
        // nothing on the next recovery.
        store
            .install_snapshot(&snapshot_of(&engine, &monitor))
            .map_err(RecoverError::from)?;
        let persist = Persist::open(store, true).map_err(RecoverError::from)?;
        Ok(Self::launch(engine, options, Some(persist), monitor))
    }

    fn launch(
        engine: ShardedEngine,
        options: ServeOptions,
        persist: Option<Persist>,
        monitor: Monitor,
    ) -> Self {
        assert!(options.batch_limit >= 1, "batch limit must be at least 1");
        if options.admission.degrade_watermark != usize::MAX {
            assert!(
                validate_budget(&options.admission.degrade_budget).is_ok(),
                "the degradation budget must itself be serveable"
            );
        }
        let (tx, rx) = mpsc::channel();
        let live = Arc::new(LiveStats::default());
        let metrics = Arc::new(ServeMetrics::new(
            options.slow_query_threshold,
            options.wal_warn_bytes,
            options.slow_log_capacity,
            options.flight_recorder_capacity,
        ));
        let config = DispatchConfig {
            batch_limit: options.batch_limit,
            admission: options.admission,
            persist,
            monitor,
            live: Arc::clone(&live),
            metrics: Arc::clone(&metrics),
        };
        let join = std::thread::spawn(move || dispatch(engine, rx, config));
        Self {
            tx,
            algorithm: options.algorithm,
            queue: Arc::new(AtomicUsize::new(0)),
            closing: Arc::new(AtomicBool::new(false)),
            live,
            metrics,
            join: Some(join),
        }
    }

    /// A new client handle (its own admission identity; `clone` the handle
    /// to share it, [`ServeHandle::fork_client`] to split it).
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.clone(),
            algorithm: self.algorithm,
            queue: Arc::clone(&self.queue),
            client: Arc::new(AtomicUsize::new(0)),
            closing: Arc::clone(&self.closing),
            live: Arc::clone(&self.live),
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// Stops the dispatcher and returns the engine with the serving
    /// counters.  Requests still pending resolve with
    /// [`ServeError::Shutdown`] (never left hanging), and on a durable
    /// server the final state is snapshotted so the next start replays
    /// nothing.
    pub fn shutdown(mut self) -> (ShardedEngine, ServeStats) {
        // Raise the flag *before* the dispatcher is told to stop: a handle
        // that observes the closed channel afterwards then reports an
        // orderly `Shutdown`, not a crash.
        self.closing.store(true, Ordering::Release);
        let _ = self.tx.send(Msg::Shutdown);
        self.join
            .take()
            .expect("shutdown consumes the only join handle")
            .join()
            .expect("the dispatcher thread panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.closing.store(true, Ordering::Release);
            let _ = self.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::KsprConfig;

    fn demo_engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            vec![
                vec![0.3, 0.8, 0.8],
                vec![0.9, 0.4, 0.4],
                vec![0.8, 0.3, 0.4],
                vec![0.4, 0.3, 0.6],
            ],
            KsprConfig::default().with_shards(shards),
        )
    }

    #[test]
    fn submit_answers_queries_and_counts_them() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let a = handle.submit(vec![0.5, 0.5, 0.7], 3);
        let b = handle.submit_with(Algorithm::Pcta, vec![0.6, 0.6, 0.5], 2);
        let ra = a.wait().expect("query a");
        let rb = b.wait().expect("query b");
        assert!(ra.num_regions() >= 1);
        assert!(rb.num_regions() >= 1);
        let (engine, stats) = server.shutdown();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(
            stats.batches, 2,
            "distinct (algorithm, k) pairs never merge"
        );
        assert_eq!(engine.len(), 4);
    }

    #[test]
    fn submit_many_runs_as_one_batch() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let focals: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.4 + 0.05 * i as f64, 0.5, 0.6])
            .collect();
        let tickets = handle.submit_many(focals.clone(), 3);
        let results: Vec<KsprResult> = tickets
            .into_iter()
            .map(|t| t.wait().expect("batched query"))
            .collect();
        // Batched answers equal direct engine answers, in order.
        let oracle = demo_engine(2);
        let expected = oracle.run_batch(Algorithm::LpCta, &focals, 3);
        for (got, want) in results.iter().zip(&expected) {
            assert_eq!(got.num_regions(), want.num_regions());
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.largest_batch, 6, "one run_batch served all six");
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn dispatcher_grants_intra_query_workers_except_to_lpcta() {
        // An explicit worker count wins over the core count, so this test is
        // deterministic on any machine.
        let engine = ShardedEngine::new(
            vec![
                vec![0.3, 0.8, 0.8],
                vec![0.9, 0.4, 0.4],
                vec![0.8, 0.3, 0.4],
                vec![0.4, 0.3, 0.6],
            ],
            KsprConfig::default()
                .with_shards(2)
                .with_intra_query_threads(3),
        );
        let server = Server::start(engine, ServeOptions::default());
        let handle = server.handle();
        let cta = handle.submit_with(Algorithm::Cta, vec![0.5, 0.5, 0.7], 3);
        let lp = handle.submit_with(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 3);
        let cta = cta.wait().expect("cta query");
        let lp = lp.wait().expect("lp-cta query");
        assert_eq!(cta.num_regions(), lp.num_regions());
        let (_, stats) = server.shutdown();
        assert_eq!(
            stats.largest_intra_grant, 3,
            "the CTA batch gets the configured worker grant"
        );
        assert_eq!(stats.parallel_batches, 1, "only the CTA batch is parallel");

        // Without the CTA batch, LP-CTA alone never earns a grant above 1.
        let engine = ShardedEngine::new(
            vec![vec![0.3, 0.8, 0.8], vec![0.9, 0.4, 0.4]],
            KsprConfig::default().with_intra_query_threads(4),
        );
        let server = Server::start(engine, ServeOptions::default());
        let handle = server.handle();
        handle
            .submit(vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("lp-cta");
        let (_, stats) = server.shutdown();
        assert_eq!(stats.largest_intra_grant, 1);
        assert_eq!(stats.parallel_batches, 0);
    }

    #[test]
    fn invalid_requests_are_rejected_not_fatal() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 0).wait().unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle.submit(vec![0.5, 0.5], 2).wait().unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .submit(vec![0.5, f64::NAN, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        assert_eq!(
            handle.insert(vec![0.5, f64::INFINITY, 0.7]).wait(),
            Err(ServeError::NonFinite)
        );
        assert_eq!(
            handle.insert(vec![0.5]).wait(),
            Err(ServeError::ArityMismatch {
                expected: 3,
                got: 1
            })
        );
        // RTOPK is 2-D only; on 3-D data it must be rejected up front, not
        // allowed to panic the dispatcher thread.
        assert_eq!(
            handle
                .submit_with(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        // The server is still healthy afterwards.
        let ok = handle.submit(vec![0.5, 0.5, 0.7], 3).wait();
        assert!(ok.expect("server must survive rejections").num_regions() >= 1);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 6);
        assert_eq!(stats.queries, 1);
        // Rejections are attributed to their error variant.
        assert_eq!(stats.rejections.invalid_k, 1);
        assert_eq!(stats.rejections.arity_mismatch, 2, "query + insert");
        assert_eq!(stats.rejections.non_finite, 2, "query + insert");
        assert_eq!(stats.rejections.unsupported_algorithm, 1);
        assert_eq!(stats.rejections.query_failed, 0);
        assert_eq!(
            stats.rejections.total(),
            stats.rejected,
            "per-variant counters must add up to the total"
        );
    }

    #[test]
    fn updates_are_serialized_with_queries() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        // Empty dataset: whole preference space.
        let empty = handle
            .submit(vec![0.5, 0.5], 1)
            .wait()
            .expect("empty query");
        assert_eq!(empty.num_regions(), 1);

        // Insert a dominator; a query submitted afterwards must see it.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let beaten = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(beaten.num_regions(), 0, "the dominator blocks top-1");

        // Delete it again (emptying the shard): back to whole space.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        assert_eq!(handle.delete(id).wait(), Ok(false));
        let restored = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(restored.num_regions(), 1);

        let (engine, stats) = server.shutdown();
        assert!(engine.is_empty());
        assert_eq!(stats.updates, 3, "insert + two deletes (one a no-op)");
    }

    #[test]
    fn subscriptions_stream_deltas_serialized_with_updates() {
        use kspr_monitor::UpdateClass;
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let sub = handle
            .subscribe(vec![0.5, 0.5], 1)
            .wait()
            .expect("subscribe");
        assert_eq!(sub.initial().num_regions(), 1, "no competitor: whole space");

        // A dominator empties the standing result in place; the notification
        // reflects exactly the acknowledged update.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let delta = sub.recv().expect("dominator insert notifies");
        assert_eq!(delta.query, sub.id());
        assert_eq!(delta.class, UpdateClass::Patched);
        assert_eq!(delta.regions_before, 1);
        assert_eq!(delta.regions_after, 0);
        assert_eq!(delta.regions_removed(), 1);

        // Deleting it re-runs the standing query and restores the result.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        let delta = sub.recv().expect("dominator delete notifies");
        assert_eq!(delta.class, UpdateClass::Rerun);
        assert_eq!(delta.regions_after, 1);

        // An invisible update (dominated by the focal record) is silent.
        let id = handle.insert(vec![0.1, 0.1]).wait().expect("insert");
        assert_eq!(handle.delete(id).wait(), Ok(true));
        // Serialize behind the updates before polling.
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        assert!(sub.poll().is_empty(), "unchanged results must not notify");

        // Dropping the subscription unregisters the standing query: the
        // registry (and its maintenance state) returns to zero.
        drop(sub);
        assert_eq!(handle.subscriptions().wait(), Ok(0));

        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 1);
        assert_eq!(stats.notifications, 2);
        assert_eq!(stats.updates, 4);
        assert_eq!(
            stats.monitor.classified(),
            4,
            "one classification per update while subscribed"
        );
        assert_eq!(stats.monitor.patched, 1);
        assert_eq!(stats.monitor.reruns, 1);
        assert_eq!(stats.monitor.unaffected, 2);
    }

    #[test]
    fn unsubscribe_frees_the_registry() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let a = handle
            .subscribe(vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("subscribe a");
        let b = handle
            .subscribe_with(Algorithm::Pcta, vec![0.6, 0.6, 0.5], 3)
            .wait()
            .expect("subscribe b");
        assert_ne!(a.id(), b.id());
        assert_eq!(handle.subscriptions().wait(), Ok(2));
        assert_eq!(handle.unsubscribe(a.id()).wait(), Ok(true));
        assert_eq!(
            handle.unsubscribe(a.id()).wait(),
            Ok(false),
            "double unsubscribe reports the query as gone"
        );
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        drop(b);
        assert_eq!(handle.subscriptions().wait(), Ok(0), "drop unregisters");
        drop(a); // late drop after an explicit unsubscribe is harmless
        assert_eq!(handle.subscriptions().wait(), Ok(0));
        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 2);
    }

    #[test]
    fn invalid_subscriptions_are_rejected_and_counted() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        assert_eq!(
            handle.subscribe(vec![0.5, 0.5, 0.7], 0).wait().unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle.subscribe(vec![0.5, 0.5], 2).wait().unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .subscribe(vec![0.5, f64::NAN, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        // The sweep baselines have no maintenance hooks.
        assert_eq!(
            handle
                .subscribe_with(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 0);
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.rejections.invalid_k, 1);
        assert_eq!(stats.rejections.arity_mismatch, 1);
        assert_eq!(stats.rejections.non_finite, 1);
        assert_eq!(stats.rejections.unsupported_algorithm, 1);
        assert_eq!(stats.rejections.total(), stats.rejected);
    }

    #[test]
    fn subscription_results_match_direct_queries_across_updates() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let sub = handle
            .subscribe_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("subscribe");
        let direct = handle
            .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("query");
        assert_eq!(sub.initial().num_regions(), direct.num_regions());
        assert_eq!(sub.initial().rank_signature(), direct.rank_signature());

        // Stream a few updates; after each, the maintained result (initial +
        // applied deltas) must agree with a direct query on region count.
        // The direct query doubles as a serialization barrier: once it is
        // answered, every notification for the preceding update has been
        // delivered, so `poll` cannot race the dispatcher.
        let mut current = sub.initial().num_regions();
        for values in [vec![0.6, 0.6, 0.8], vec![0.2, 0.9, 0.6]] {
            let id = handle.insert(values).wait().expect("insert");
            let direct = handle
                .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .expect("query");
            for delta in sub.poll() {
                current = delta.regions_after;
            }
            assert_eq!(current, direct.num_regions(), "after insert");
            assert_eq!(handle.delete(id).wait(), Ok(true));
            let direct = handle
                .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .expect("query");
            for delta in sub.poll() {
                current = delta.regions_after;
            }
            assert_eq!(current, direct.num_regions(), "after delete");
        }
    }

    #[test]
    fn tier_counters_are_consistent_with_totals() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);

        // Two exact queries (legacy + tiered), two approximate (dedicated +
        // tiered), and two Auto queries forced one to each side by extreme
        // thresholds.
        let focal = vec![0.5, 0.5, 0.7];
        handle.submit(focal.clone(), 2).wait().expect("exact");
        let tiered_exact = handle
            .submit_tiered(Algorithm::LpCta, focal.clone(), 2, QueryTier::Exact)
            .wait()
            .expect("tiered exact");
        assert!(tiered_exact.is_exact());
        let est = handle
            .submit_approx(focal.clone(), 2, budget)
            .wait()
            .expect("approx");
        assert!(est.half_width <= budget.epsilon + 1e-12);
        let tiered_approx = handle
            .submit_tiered(
                Algorithm::LpCta,
                focal.clone(),
                2,
                QueryTier::approximate(budget),
            )
            .wait()
            .expect("tiered approx");
        assert!(!tiered_approx.is_exact());
        for (threshold, expect_exact) in [(f64::INFINITY, true), (0.0, false)] {
            let routed = handle
                .submit_tiered(
                    Algorithm::LpCta,
                    focal.clone(),
                    2,
                    QueryTier::Auto {
                        budget,
                        cost_threshold: threshold,
                    },
                )
                .wait()
                .expect("auto");
            assert_eq!(routed.is_exact(), expect_exact);
        }

        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.exact_queries, 3, "submit + tiered exact + auto-exact");
        assert_eq!(
            stats.approx_queries, 3,
            "submit_approx + tiered approx + auto-approx"
        );
        assert_eq!(
            stats.exact_queries + stats.approx_queries,
            stats.queries,
            "per-tier counters must add up to the total"
        );
        assert_eq!(stats.auto_routed_exact, 1);
        assert_eq!(stats.auto_routed_approx, 1);
        assert!(stats.auto_routed_exact <= stats.exact_queries);
        assert!(stats.auto_routed_approx <= stats.approx_queries);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn approx_submissions_batch_separately_from_exact_ones() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);
        // Interleaved same-(k,budget) approximate and same-(algorithm,k)
        // exact submissions: the greedy drain groups them into one sweep and
        // one run_batch.  Submit everything before waiting so the dispatcher
        // sees the whole burst at once.
        let mut approx_tickets = Vec::new();
        let mut exact_tickets = Vec::new();
        for i in 0..4 {
            let focal = vec![0.4 + 0.05 * i as f64, 0.5, 0.6];
            approx_tickets.push(handle.submit_approx(focal.clone(), 3, budget));
            exact_tickets.push(handle.submit(focal, 3));
        }
        for t in approx_tickets {
            t.wait().expect("approx query");
        }
        for t in exact_tickets {
            t.wait().expect("exact query");
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 8);
        assert_eq!(stats.exact_queries, 4);
        assert_eq!(stats.approx_queries, 4);
        assert!(
            stats.batches <= 4,
            "the burst must batch (got {} batches), not run one-by-one",
            stats.batches
        );
    }

    #[test]
    fn approx_estimates_match_direct_engine_estimates() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.08, 0.9);
        // The dispatcher's seed stream starts at a fixed constant, so the
        // first sweep is reproducible against a direct engine call.
        let est = handle
            .submit_approx(vec![0.5, 0.5, 0.7], 3, budget)
            .wait()
            .expect("approx");
        let direct = demo_engine(2)
            .run_approx_batch(&[vec![0.5, 0.5, 0.7]], 3, &budget, 0x5EED_AB5E)
            .pop()
            .unwrap();
        assert_eq!(est.impact, direct.impact);
        assert_eq!(est.samples, direct.samples);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.approx_queries, 1);
    }

    #[test]
    fn invalid_approx_requests_are_rejected_not_fatal() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);
        assert_eq!(
            handle
                .submit_approx(vec![0.5, 0.5, 0.7], 0, budget)
                .wait()
                .unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle
                .submit_approx(vec![0.5, 0.5], 2, budget)
                .wait()
                .unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .subscribe_approx(vec![f64::NAN, 0.5, 0.7], 2, budget)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        // RTOPK on 3-D data: rejected for exact-capable tiers, but a purely
        // approximate request never consults the algorithm, so it passes.
        assert!(handle
            .submit_tiered(
                Algorithm::Rtopk,
                vec![0.5, 0.5, 0.7],
                2,
                QueryTier::approximate(budget)
            )
            .wait()
            .is_ok());
        assert_eq!(
            handle
                .submit_tiered(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2, QueryTier::Exact)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.rejections.total(), stats.rejected);
    }

    #[test]
    fn pathological_budgets_are_rejected_not_sampled() {
        use kspr::ErrorBudget;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        // Too fine: the Hoeffding sample count would exceed the server cap
        // (and, unchecked, would try to materialize gigabytes of samples).
        let too_fine = ErrorBudget {
            epsilon: 1e-5,
            confidence: 0.95,
        };
        assert_eq!(
            handle
                .submit_approx(vec![0.5, 0.5, 0.7], 2, too_fine)
                .wait()
                .unwrap_err(),
            ServeError::InvalidBudget
        );
        // Malformed: the public fields bypass ErrorBudget::new's checks.
        for bad in [
            ErrorBudget {
                epsilon: -0.1,
                confidence: 0.9,
            },
            ErrorBudget {
                epsilon: f64::NAN,
                confidence: 0.9,
            },
            ErrorBudget {
                epsilon: 0.1,
                confidence: 1.0,
            },
        ] {
            assert_eq!(
                handle
                    .submit_tiered(
                        Algorithm::LpCta,
                        vec![0.5, 0.5, 0.7],
                        2,
                        QueryTier::approximate(bad)
                    )
                    .wait()
                    .unwrap_err(),
                ServeError::InvalidBudget
            );
        }
        assert_eq!(
            handle
                .subscribe_approx(vec![0.5, 0.5, 0.7], 2, too_fine)
                .wait()
                .unwrap_err(),
            ServeError::InvalidBudget
        );
        // A sane budget still serves afterwards.
        let ok = handle
            .submit_approx(vec![0.5, 0.5, 0.7], 2, ErrorBudget::new(0.1, 0.9))
            .wait();
        assert!(ok.is_ok(), "the server must survive budget rejections");
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 5);
        assert_eq!(stats.rejections.invalid_budget, 5);
        assert_eq!(stats.rejections.total(), stats.rejected);
        assert_eq!(stats.approx_queries, 1);
    }

    #[test]
    fn approx_subscriptions_redraw_only_when_the_impact_can_move() {
        use kspr::ErrorBudget;
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let budget = ErrorBudget::new(0.1, 0.9);
        let sub = handle
            .subscribe_approx(vec![0.5, 0.5], 1, budget)
            .wait()
            .expect("subscribe");
        assert_eq!(sub.initial().impact, 1.0, "no competitor: certain top-1");

        // A dominator definitely moves the impact: the estimate is redrawn.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let delta = sub.recv().expect("dominator insert notifies");
        assert_eq!(delta.query, sub.id());
        assert_eq!(delta.before.impact, 1.0);
        assert_eq!(delta.after.impact, 0.0, "a dominator ends every top-1 hope");

        // An update the focal record dominates is witnessed away: no
        // notification, counted as unaffected.
        let invisible = handle.insert(vec![0.1, 0.1]).wait().expect("insert");
        assert_eq!(handle.delete(invisible).wait(), Ok(true));
        // Serialize behind the updates before polling.
        assert_eq!(handle.approx_subscriptions().wait(), Ok(1));
        assert!(
            sub.poll().is_empty(),
            "impact-preserving updates must not redraw"
        );

        // Deleting the dominator moves the impact back; redrawn again.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        let delta = sub.recv().expect("dominator delete notifies");
        assert_eq!(delta.after.impact, 1.0);

        drop(sub);
        assert_eq!(handle.approx_subscriptions().wait(), Ok(0), "drop frees");
        let (_, stats) = server.shutdown();
        assert_eq!(stats.approx_subscriptions, 1);
        assert_eq!(stats.approx_notifications, 2);
        assert_eq!(
            stats.approx_watch_unaffected, 2,
            "the invisible insert + delete classified away"
        );
    }

    #[test]
    fn update_bursts_share_one_maintenance_pass_within_the_window() {
        use kspr::ErrorBudget;
        let server = Server::start(
            ShardedEngine::empty(
                2,
                KsprConfig::default()
                    .with_shards(2)
                    .with_monitor_batch_window(4),
            ),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let sub = handle
            .subscribe(vec![0.9, 0.9], 1)
            .wait()
            .expect("subscribe");
        // A live competitor, so the approximate registration below actually
        // samples (an empty pool short-circuits without work).
        handle.insert(vec![0.5, 0.5]).wait().expect("first insert");
        // Block the dispatcher on an expensive approximate registration
        // (hundreds of thousands of samples) so the update burst below is
        // fully queued before the dispatcher sees its first insert.
        let blocker = handle.subscribe_approx(vec![0.95, 0.95], 1, ErrorBudget::new(0.002, 0.99));
        let tickets: Vec<_> = (0..8)
            .map(|i| handle.insert(vec![0.1 + 0.01 * i as f64, 0.2]))
            .collect();
        let approx_sub = blocker.wait().expect("approx subscribe");
        for t in tickets {
            t.wait().expect("burst insert");
        }
        // Every burst insert is dominated by the standing focal points, so
        // both registries classify them away without result changes.
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        assert!(
            sub.poll().is_empty(),
            "focal-dominated inserts never notify"
        );
        drop(approx_sub);
        drop(sub);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.updates, 9);
        assert_eq!(
            stats.update_batches, 3,
            "1 single + the 8 queued updates drained in window-4 batches"
        );
        assert_eq!(stats.largest_update_batch, 4, "the window caps the drain");
        assert_eq!(stats.monitor.batches, 3);
        assert_eq!(stats.monitor.batched_updates, 9);
        assert_eq!(stats.monitor.classified(), 9);
        assert_eq!(stats.monitor.unaffected, 9);
        assert_eq!(stats.notifications, 0);
    }

    #[test]
    fn window_one_restores_per_update_maintenance() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_monitor_batch_window(1)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let tickets: Vec<_> = (0..6)
            .map(|i| handle.insert(vec![0.2 + 0.1 * i as f64, 0.3]))
            .collect();
        for t in tickets {
            t.wait().expect("insert");
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.updates, 6);
        assert_eq!(stats.update_batches, 6, "window 1 never coalesces");
        assert_eq!(stats.largest_update_batch, 1);
    }

    #[test]
    fn compaction_triggers_in_the_dispatcher_and_preserves_ids() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let ids: Vec<RecordId> = (0..8)
            .map(|i| {
                handle
                    .insert(vec![0.3 + 0.05 * i as f64, 0.8 - 0.05 * i as f64])
                    .wait()
                    .expect("insert")
            })
            .collect();
        let sub = handle
            .subscribe(vec![0.55, 0.55], 2)
            .wait()
            .expect("subscribe");
        // Five of eight slots die: past the 50% threshold the dispatcher
        // compacts, and the standing query stays maintained across the
        // rewrite.
        for &id in &ids[..5] {
            assert_eq!(handle.delete(id).wait(), Ok(true));
        }
        // A compacted-away id stays dead; a surviving one still routes.
        assert_eq!(handle.delete(ids[0]).wait(), Ok(false));
        assert_eq!(
            handle.delete(ids[5]).wait(),
            Ok(true),
            "a surviving id must outlive compaction"
        );
        let direct = handle
            .submit(vec![0.55, 0.55], 2)
            .wait()
            .expect("direct query");
        let mut regions = sub.initial().num_regions();
        for delta in sub.poll() {
            regions = delta.regions_after;
        }
        assert_eq!(
            regions,
            direct.num_regions(),
            "the standing result stays maintained across compaction"
        );
        let (engine, stats) = server.shutdown();
        assert_eq!(
            stats.compactions, 1,
            "exactly the fifth delete crossed the threshold"
        );
        assert_eq!(engine.len(), 2);
        assert_eq!(
            engine.tombstone_count(),
            1,
            "only the post-compaction delete leaves a tombstone"
        );
    }

    #[test]
    fn tickets_resolve_to_shutdown_after_shutdown() {
        let server = Server::start(demo_engine(1), ServeOptions::default());
        let handle = server.handle();
        drop(server); // Drop joins the dispatcher (an orderly shutdown).
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 2).wait().unwrap_err(),
            ServeError::Shutdown,
            "post-shutdown submissions resolve explicitly, they never hang"
        );
        assert_eq!(
            handle.insert(vec![0.5, 0.5, 0.7]).wait().unwrap_err(),
            ServeError::Shutdown
        );
        assert_eq!(
            handle.subscriptions().wait().unwrap_err(),
            ServeError::Shutdown
        );
        assert_eq!(
            handle.subscribe(vec![0.5, 0.5, 0.7], 2).wait().unwrap_err(),
            ServeError::Shutdown
        );
        assert_eq!(handle.stats().wait().unwrap_err(), ServeError::Shutdown);
    }

    #[test]
    fn queued_requests_behind_a_shutdown_are_drained_not_hung() {
        use crate::error::Ticket as T;
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        // Hold the dispatcher busy on an expensive approximate registration
        // so everything below is queued before it reads another message.
        let blocker = handle.subscribe_approx(
            vec![0.95, 0.95, 0.95],
            1,
            kspr::ErrorBudget::new(0.002, 0.99),
        );
        // Reproduce the shutdown race the handle-side flag cannot close: a
        // request that slips into the channel *behind* the shutdown message
        // (the flag check and the send are not one atomic step).  The
        // dispatcher must drain and resolve it, never leave it hanging.
        server.tx.send(Msg::Shutdown).unwrap();
        let (tx, query) = T::new();
        server
            .tx
            .send(Msg::Query(QueryJob {
                algorithm: Algorithm::LpCta,
                focal: vec![0.5, 0.5, 0.7],
                k: 2,
                tier: QueryTier::Exact,
                stamp: handle.stamp(),
                sink: Sink::Exact(tx),
                trace: RequestTrace::start(),
            }))
            .unwrap();
        let (tx, insert) = T::new();
        server
            .tx
            .send(Msg::Insert {
                values: vec![0.5, 0.5, 0.7],
                tx,
                trace: RequestTrace::start(),
            })
            .unwrap();
        assert_eq!(query.wait().unwrap_err(), ServeError::Shutdown);
        assert_eq!(insert.wait().unwrap_err(), ServeError::Shutdown);
        drop(blocker);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejections.shutdown, 2);
        assert_eq!(stats.rejections.total(), stats.rejected);
        assert_eq!(stats.updates, 0, "the drained insert was never applied");
    }

    #[test]
    fn admission_degrades_tiered_queries_past_the_watermark() {
        let mut options = ServeOptions::default();
        options.admission.degrade_watermark = 0; // every query is "past" it
        let server = Server::start(demo_engine(2), options);
        let handle = server.handle();
        // An exact-capable tiered query is answered approximately instead.
        let degraded = handle
            .submit_tiered(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2, QueryTier::Exact)
            .wait()
            .expect("degraded query");
        assert!(
            !degraded.is_exact(),
            "past the watermark, exact-capable tiers degrade to the sampler"
        );
        // A plain exact submission has no approximate sink to degrade into:
        // it still runs exactly (degradation never changes a result type).
        let exact = handle
            .submit(vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("plain exact query");
        assert!(exact.num_regions() >= 1);
        // An already-approximate tier has nothing to degrade.
        let approx = handle
            .submit_tiered(
                Algorithm::LpCta,
                vec![0.5, 0.5, 0.7],
                2,
                QueryTier::approximate(kspr::ErrorBudget::new(0.1, 0.9)),
            )
            .wait()
            .expect("approx query");
        assert!(!approx.is_exact());
        let (_, stats) = server.shutdown();
        assert_eq!(stats.degraded_to_approx, 1, "only the tiered exact query");
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.exact_queries, 1);
        assert_eq!(stats.approx_queries, 2);
        assert_eq!(stats.rejected, 0, "degradation is not rejection");
    }

    #[test]
    fn admission_rejects_queries_past_the_hard_limit() {
        let mut options = ServeOptions::default();
        options.admission.hard_limit = 0; // every query is "past" it
        let server = Server::start(demo_engine(2), options);
        let handle = server.handle();
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 2).wait().unwrap_err(),
            ServeError::Overloaded
        );
        assert_eq!(
            handle
                .submit_tiered(Algorithm::LpCta, vec![0.5, 0.5, 0.7], 2, QueryTier::Exact)
                .wait()
                .unwrap_err(),
            ServeError::Overloaded
        );
        // Load shedding drops queries, never updates or registrations.
        let id = handle.insert(vec![0.6, 0.6, 0.6]).wait().expect("insert");
        assert_eq!(handle.delete(id).wait(), Ok(true));
        let sub = handle
            .subscribe(vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("subscribe");
        drop(sub);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.rejections.overloaded, 2);
        assert_eq!(stats.rejections.total(), stats.rejected);
        assert_eq!(stats.queries, 0);
        assert_eq!(stats.updates, 2);
        assert_eq!(stats.subscriptions, 1);
    }

    #[test]
    fn admission_enforces_per_client_quotas_in_isolation() {
        let mut options = ServeOptions::default();
        options.admission.client_quota = 1;
        let server = Server::start(demo_engine(2), options);
        let handle = server.handle();
        // Hold the dispatcher busy so both submissions below are stamped
        // while queued: the second exceeds its client's in-flight quota.
        let blocker = handle.subscribe_approx(
            vec![0.95, 0.95, 0.95],
            1,
            kspr::ErrorBudget::new(0.002, 0.99),
        );
        let first = handle.submit(vec![0.5, 0.5, 0.7], 2);
        let second = handle.submit(vec![0.5, 0.5, 0.7], 2);
        // A forked client has its own quota: its query is untouched by the
        // first client's backlog.
        let neighbour = handle.fork_client().submit(vec![0.5, 0.5, 0.7], 2);
        assert!(first.wait().is_ok(), "within quota");
        assert_eq!(second.wait().unwrap_err(), ServeError::QuotaExceeded);
        assert!(neighbour.wait().is_ok(), "quotas are per client");
        drop(blocker.wait().expect("approx subscribe"));
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejections.quota_exceeded, 1);
        assert_eq!(stats.rejections.total(), stats.rejected);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn live_stats_are_served_in_request_order() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        handle.submit(vec![0.5, 0.5, 0.7], 2).wait().expect("query");
        let live = handle.stats().wait().expect("live stats");
        assert_eq!(live.queries, 1);
        let (_, after) = server.shutdown();
        assert_eq!(after.queries, 1);
    }
}
