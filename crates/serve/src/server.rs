//! The serving front-end: a request queue feeding a dispatcher that batches
//! queries into [`ShardedEngine::run_batch`] and applies updates in arrival
//! order.
//!
//! [`Server::start`] moves a [`ShardedEngine`] onto a dispatcher thread and
//! returns a handle factory.  Clients talk to the engine exclusively through
//! cloneable [`ServeHandle`]s:
//!
//! * [`ServeHandle::submit`] enqueues one query and returns a [`Ticket`] —
//!   a future-like receiver resolved when the dispatcher answers;
//! * [`ServeHandle::submit_many`] enqueues a whole batch at once;
//! * [`ServeHandle::insert`] / [`ServeHandle::delete`] enqueue updates,
//!   serialized with the queries around them (a query submitted after an
//!   insert sees the inserted record).
//!
//! The dispatcher drains the queue greedily: consecutive pending queries are
//! grouped by `(algorithm, k)` and answered through one
//! [`ShardedEngine::run_batch`] call each — the batched-dequeue pattern —
//! while the shared candidate engine and the per-shard prep caches carry over
//! between batches.  Invalid requests (`k == 0`, arity mismatch, non-finite
//! focal values) are rejected with a [`ServeError`] instead of panicking the
//! serving thread; [`ServeStats`] counts every rejection per error variant.
//!
//! # Standing queries
//!
//! [`ServeHandle::subscribe`] registers a long-lived query with the
//! dispatcher's [`kspr_monitor::Monitor`] and returns a [`Subscription`].
//! After every update the dispatcher classifies each standing query as
//! unaffected / patchable / must-rerun (see the `kspr-monitor` crate docs),
//! maintains it accordingly, and pushes a [`ResultDelta`] to the
//! subscription whenever its result actually changed.  Because the monitor
//! runs on the dispatcher thread, updates and notifications stay serialized
//! with the query stream: a notification always reflects exactly the updates
//! acknowledged before it.  Dropping a [`Subscription`] unregisters the
//! standing query (no maintenance state leaks from a long-lived server).
//! If a maintenance pass itself panics (after the update was committed and
//! acknowledged), the registry is invalidated rather than served stale:
//! every subscription's channel closes and clients re-subscribe.

use crate::sharded::ShardedEngine;
use kspr::{Algorithm, KsprResult, RecordId};
use kspr_monitor::{Monitor, MonitorStats, QueryId, RegisterError, ResultDelta};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Why a request was rejected (or lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `k` must be at least 1.
    InvalidK,
    /// The focal record / inserted record does not match the dataset arity.
    ArityMismatch {
        /// The dataset arity.
        expected: usize,
        /// The request's arity.
        got: usize,
    },
    /// The request contains a NaN or infinite value.
    NonFinite,
    /// The requested algorithm cannot run on this dataset (RTOPK is
    /// 2-dimensional only).
    UnsupportedAlgorithm,
    /// The query panicked inside the engine; the server recovered and keeps
    /// serving (the engine caches rebuild themselves after a poisoning).
    QueryFailed,
    /// An update panicked inside the engine.  Unlike queries, a half-applied
    /// update is not rebuildable in place, so the server stops serving
    /// (subsequent tickets resolve [`ServeError::ServerClosed`] and
    /// [`Server::shutdown`] returns normally) rather than risk corrupt
    /// answers.
    UpdateFailed,
    /// The server shut down before (or while) answering.
    ServerClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidK => write!(f, "k must be at least 1"),
            ServeError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: got {got} attributes, dataset has {expected}"
                )
            }
            ServeError::NonFinite => write!(f, "values must be finite"),
            ServeError::UnsupportedAlgorithm => {
                write!(f, "the algorithm does not support this dataset's arity")
            }
            ServeError::QueryFailed => write!(f, "the query panicked inside the engine"),
            ServeError::UpdateFailed => {
                write!(
                    f,
                    "an update panicked inside the engine; the server stopped"
                )
            }
            ServeError::ServerClosed => write!(f, "the server has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A pending response: resolves once the dispatcher has processed the
/// request.  Dropping a ticket discards the response.
pub struct Ticket<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> Ticket<T> {
    fn new() -> (mpsc::Sender<Result<T, ServeError>>, Self) {
        let (tx, rx) = mpsc::channel();
        (tx, Ticket { rx })
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ServerClosed))
    }
}

/// One enqueued query.
struct QueryJob {
    algorithm: Algorithm,
    focal: Vec<f64>,
    k: usize,
    tx: mpsc::Sender<Result<KsprResult, ServeError>>,
}

enum Msg {
    Query(QueryJob),
    Batch(Vec<QueryJob>),
    Insert {
        values: Vec<f64>,
        tx: mpsc::Sender<Result<RecordId, ServeError>>,
    },
    Delete {
        id: RecordId,
        tx: mpsc::Sender<Result<bool, ServeError>>,
    },
    Subscribe {
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
        deltas: mpsc::Sender<ResultDelta>,
        tx: mpsc::Sender<Result<(QueryId, KsprResult), ServeError>>,
    },
    Unsubscribe {
        id: QueryId,
        /// `None` for the fire-and-forget unsubscribe of `Subscription::drop`.
        tx: Option<mpsc::Sender<Result<bool, ServeError>>>,
    },
    Subscriptions {
        tx: mpsc::Sender<Result<usize, ServeError>>,
    },
    Shutdown,
}

/// Per-[`ServeError`]-variant rejection counters (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectionStats {
    /// Requests with `k == 0`.
    pub invalid_k: u64,
    /// Requests whose arity does not match the dataset.
    pub arity_mismatch: u64,
    /// Requests containing NaN / infinite values.
    pub non_finite: u64,
    /// Requests for an algorithm the dataset (or the monitor) cannot serve.
    pub unsupported_algorithm: u64,
    /// Queries lost to an engine panic (the server kept serving).
    pub query_failed: u64,
    /// Updates lost to an engine panic (the server stopped).
    pub update_failed: u64,
    /// Requests that raced the shutdown (normally unreachable: the
    /// dispatcher never *answers* with this variant, clients synthesize it
    /// when the channel is gone).
    pub server_closed: u64,
}

impl RejectionStats {
    /// Total rejections across all variants.
    pub fn total(&self) -> u64 {
        self.invalid_k
            + self.arity_mismatch
            + self.non_finite
            + self.unsupported_algorithm
            + self.query_failed
            + self.update_failed
            + self.server_closed
    }

    /// Counts one rejection under its variant.
    fn count(&mut self, err: &ServeError) {
        match err {
            ServeError::InvalidK => self.invalid_k += 1,
            ServeError::ArityMismatch { .. } => self.arity_mismatch += 1,
            ServeError::NonFinite => self.non_finite += 1,
            ServeError::UnsupportedAlgorithm => self.unsupported_algorithm += 1,
            ServeError::QueryFailed => self.query_failed += 1,
            ServeError::UpdateFailed => self.update_failed += 1,
            ServeError::ServerClosed => self.server_closed += 1,
        }
    }
}

/// Serving-side counters, returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Requests rejected with a [`ServeError`] (total; always equals
    /// [`RejectionStats::total`] of `rejections`).
    pub rejected: u64,
    /// Rejections broken down by error variant.
    pub rejections: RejectionStats,
    /// `run_batch` invocations (every batch answers >= 1 query).
    pub batches: u64,
    /// Largest query batch executed at once.
    pub largest_batch: usize,
    /// Updates (inserts + deletes) applied.
    pub updates: u64,
    /// Standing queries registered over the server's lifetime.
    pub subscriptions: u64,
    /// [`ResultDelta`] notifications delivered to subscribers.
    pub notifications: u64,
    /// Standing-query maintenance passes that panicked after a committed
    /// update.  Each one invalidated the registry (subscribers must
    /// re-subscribe); the update itself succeeded, so these are *not*
    /// rejections.
    pub maintenance_failures: u64,
    /// Standing-query classification counters (see `kspr-monitor`).
    pub monitor: MonitorStats,
}

impl ServeStats {
    /// Counts one rejection (total + per-variant).
    fn reject(&mut self, err: &ServeError) {
        self.rejected += 1;
        self.rejections.count(err);
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Algorithm used by [`ServeHandle::submit`] (override per request with
    /// [`ServeHandle::submit_with`]).
    pub algorithm: Algorithm,
    /// Maximum number of queries merged into one `run_batch` call when
    /// draining the queue.  (An explicit [`ServeHandle::submit_many`] batch
    /// is always answered through a single call, whatever its size.)
    pub batch_limit: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::LpCta,
            batch_limit: 64,
        }
    }
}

/// A cloneable client handle onto a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
}

impl ServeHandle {
    /// Enqueues one query with the server's default algorithm.
    pub fn submit(&self, focal: Vec<f64>, k: usize) -> Ticket<KsprResult> {
        self.submit_with(self.algorithm, focal, k)
    }

    /// Enqueues one query with an explicit algorithm.
    pub fn submit_with(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> Ticket<KsprResult> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Query(QueryJob {
            algorithm,
            focal,
            k,
            tx,
        }));
        ticket
    }

    /// Enqueues a whole batch of same-`k` queries at once; the dispatcher
    /// answers them through a single [`ShardedEngine::run_batch`] call.
    pub fn submit_many(&self, focals: Vec<Vec<f64>>, k: usize) -> Vec<Ticket<KsprResult>> {
        let mut jobs = Vec::with_capacity(focals.len());
        let mut tickets = Vec::with_capacity(focals.len());
        for focal in focals {
            let (tx, ticket) = Ticket::new();
            jobs.push(QueryJob {
                algorithm: self.algorithm,
                focal,
                k,
                tx,
            });
            tickets.push(ticket);
        }
        let _ = self.tx.send(Msg::Batch(jobs));
        tickets
    }

    /// Enqueues an insert; resolves to the new record's global id.
    pub fn insert(&self, values: Vec<f64>) -> Ticket<RecordId> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Insert { values, tx });
        ticket
    }

    /// Enqueues a delete; resolves to whether a live record was removed.
    pub fn delete(&self, id: RecordId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Delete { id, tx });
        ticket
    }

    /// Registers a standing query with the server's default algorithm;
    /// resolves to a [`Subscription`] that yields a [`ResultDelta`] after
    /// every update that changed the query's result.
    pub fn subscribe(&self, focal: Vec<f64>, k: usize) -> SubscribeTicket {
        self.subscribe_with(self.algorithm, focal, k)
    }

    /// Registers a standing query with an explicit algorithm (CellTree
    /// policies only; the sweep baselines resolve to
    /// [`ServeError::UnsupportedAlgorithm`]).
    pub fn subscribe_with(
        &self,
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
    ) -> SubscribeTicket {
        let (delta_tx, delta_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let _ = self.tx.send(Msg::Subscribe {
            algorithm,
            focal,
            k,
            deltas: delta_tx,
            tx,
        });
        SubscribeTicket {
            rx,
            deltas: delta_rx,
            control: self.tx.clone(),
        }
    }

    /// Unregisters a standing query by id; resolves to whether it was still
    /// registered.  (Dropping the [`Subscription`] unregisters implicitly.)
    pub fn unsubscribe(&self, id: QueryId) -> Ticket<bool> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Unsubscribe { id, tx: Some(tx) });
        ticket
    }

    /// Number of currently registered standing queries (registry telemetry;
    /// also the leak check for [`Subscription`] drops).
    pub fn subscriptions(&self) -> Ticket<usize> {
        let (tx, ticket) = Ticket::new();
        let _ = self.tx.send(Msg::Subscriptions { tx });
        ticket
    }
}

/// A pending [`Subscription`]: resolves once the dispatcher has registered
/// (and initially answered) the standing query.
pub struct SubscribeTicket {
    rx: mpsc::Receiver<Result<(QueryId, KsprResult), ServeError>>,
    deltas: mpsc::Receiver<ResultDelta>,
    control: mpsc::Sender<Msg>,
}

impl SubscribeTicket {
    /// Blocks until the standing query is registered (or rejected).
    pub fn wait(self) -> Result<Subscription, ServeError> {
        match self.rx.recv() {
            Ok(Ok((id, initial))) => Ok(Subscription {
                id,
                initial,
                deltas: self.deltas,
                control: self.control,
            }),
            Ok(Err(err)) => Err(err),
            Err(mpsc::RecvError) => Err(ServeError::ServerClosed),
        }
    }
}

/// A live standing query: holds the initial result and receives a
/// [`ResultDelta`] for every update batch that changed it.
///
/// Dropping the subscription unregisters the standing query with the
/// dispatcher, freeing its maintenance state — a long-lived [`Server`] never
/// accumulates state for subscribers that went away.
pub struct Subscription {
    id: QueryId,
    initial: KsprResult,
    deltas: mpsc::Receiver<ResultDelta>,
    control: mpsc::Sender<Msg>,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("initial_regions", &self.initial.num_regions())
            .finish_non_exhaustive()
    }
}

impl Subscription {
    /// The standing query's registry id (usable with
    /// [`ServeHandle::unsubscribe`]).
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The result at registration time; later states are communicated as
    /// deltas.
    pub fn initial(&self) -> &KsprResult {
        &self.initial
    }

    /// Drains every notification delivered so far without blocking.
    pub fn poll(&self) -> Vec<ResultDelta> {
        let mut out = Vec::new();
        while let Ok(delta) = self.deltas.try_recv() {
            out.push(delta);
        }
        out
    }

    /// Blocks until the next notification.  `None` means this subscription
    /// will never be notified again: either the server shut down, or a
    /// maintenance pass failed and the dispatcher invalidated the standing
    /// registry (see the module docs) — in the latter case the server is
    /// still serving and re-subscribing resumes watching.
    pub fn recv(&self) -> Option<ResultDelta> {
        self.deltas.recv().ok()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Fire-and-forget: if the server is already gone the registry died
        // with it.
        let _ = self.control.send(Msg::Unsubscribe {
            id: self.id,
            tx: None,
        });
    }
}

/// A running serving loop that owns a [`ShardedEngine`].
pub struct Server {
    tx: mpsc::Sender<Msg>,
    algorithm: Algorithm,
    join: Option<JoinHandle<(ShardedEngine, ServeStats)>>,
}

impl Server {
    /// Moves `engine` onto a dispatcher thread and starts serving.
    pub fn start(engine: ShardedEngine, options: ServeOptions) -> Self {
        assert!(options.batch_limit >= 1, "batch limit must be at least 1");
        let (tx, rx) = mpsc::channel();
        let join = std::thread::spawn(move || dispatch(engine, rx, options.batch_limit));
        Self {
            tx,
            algorithm: options.algorithm,
            join: Some(join),
        }
    }

    /// A new client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            tx: self.tx.clone(),
            algorithm: self.algorithm,
        }
    }

    /// Stops the dispatcher (after it drains requests already dequeued) and
    /// returns the engine with the serving counters.
    pub fn shutdown(mut self) -> (ShardedEngine, ServeStats) {
        let _ = self.tx.send(Msg::Shutdown);
        self.join
            .take()
            .expect("shutdown consumes the only join handle")
            .join()
            .expect("the dispatcher thread panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = join.join();
        }
    }
}

/// Maps a core ingest violation to the request-level error.
fn ingest_error(err: kspr::IngestError) -> ServeError {
    match err {
        // Unreachable here (the engine arity is always >= 1, so an empty row
        // surfaces as an arity mismatch first), kept for exhaustiveness.
        kspr::IngestError::Empty => ServeError::ArityMismatch {
            expected: 0,
            got: 0,
        },
        kspr::IngestError::ArityMismatch { expected, got } => {
            ServeError::ArityMismatch { expected, got }
        }
        kspr::IngestError::NonFinite { .. } => ServeError::NonFinite,
    }
}

/// Validates a query against the engine's arity rules (the focal record must
/// satisfy the same shape rules as ingested records).
fn validate_query(engine: &ShardedEngine, job: &QueryJob) -> Result<(), ServeError> {
    if job.k == 0 {
        return Err(ServeError::InvalidK);
    }
    if job.algorithm == Algorithm::Rtopk && engine.dim() != 2 {
        return Err(ServeError::UnsupportedAlgorithm);
    }
    kspr::check_record(&job.focal, Some(engine.dim())).map_err(ingest_error)
}

/// Validates an insert payload.
fn validate_insert(engine: &ShardedEngine, values: &[f64]) -> Result<(), ServeError> {
    kspr::check_record(values, Some(engine.dim())).map_err(ingest_error)
}

/// Executes a batch of dequeued queries: rejects invalid jobs, groups the
/// valid ones by `(algorithm, k)` and answers each group with one
/// `run_batch` call.
fn run_jobs(engine: &ShardedEngine, jobs: Vec<QueryJob>, stats: &mut ServeStats) {
    let mut groups: Vec<((Algorithm, usize), Vec<QueryJob>)> = Vec::new();
    for job in jobs {
        if let Err(err) = validate_query(engine, &job) {
            stats.reject(&err);
            let _ = job.tx.send(Err(err));
            continue;
        }
        let key = (job.algorithm, job.k);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, group)) => group.push(job),
            None => groups.push((key, vec![job])),
        }
    }
    for ((algorithm, k), group) in groups {
        let (focals, txs): (Vec<Vec<f64>>, Vec<_>) =
            group.into_iter().map(|j| (j.focal, j.tx)).unzip();
        // Defense in depth: a panic inside the engine must not take the
        // dispatcher thread (and with it every pending ticket) down.  The
        // engine's caches recover from lock poisoning by rebuilding, so
        // serving continues after a failed batch.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.run_batch(algorithm, &focals, k)
        }));
        match outcome {
            Ok(results) => {
                stats.batches += 1;
                stats.queries += focals.len() as u64;
                stats.largest_batch = stats.largest_batch.max(focals.len());
                for (tx, result) in txs.into_iter().zip(results) {
                    let _ = tx.send(Ok(result));
                }
            }
            Err(_) => {
                for tx in txs {
                    stats.reject(&ServeError::QueryFailed);
                    let _ = tx.send(Err(ServeError::QueryFailed));
                }
            }
        }
    }
}

/// Maps a standing-query registration failure to the request-level error.
fn register_error(err: RegisterError) -> ServeError {
    match err {
        RegisterError::InvalidK => ServeError::InvalidK,
        RegisterError::Focal(err) => ingest_error(err),
        RegisterError::UnsupportedAlgorithm => ServeError::UnsupportedAlgorithm,
    }
}

/// Delivers update notifications to their subscribers.  A send failure means
/// the subscription was dropped but its unsubscribe message is still queued;
/// the notification is simply discarded.
fn notify(
    subscribers: &HashMap<QueryId, mpsc::Sender<ResultDelta>>,
    deltas: Vec<ResultDelta>,
    stats: &mut ServeStats,
) {
    for delta in deltas {
        if let Some(tx) = subscribers.get(&delta.query) {
            if tx.send(delta).is_ok() {
                stats.notifications += 1;
            }
        }
    }
}

/// Runs the standing-query maintenance for one *already committed and
/// acknowledged* update and delivers the notifications.
///
/// A panic inside classification (a standing query's rerun tripping an
/// engine bug) is the query-panic class — the engine caches recover and the
/// update itself is fine — but the maintenance pass may have stopped half
/// way, leaving some standing queries with stale bookkeeping that would
/// silently misclassify every later update.  Rather than stopping the
/// server (the update succeeded) or serving stale standing results, the
/// whole registry is invalidated: every subscription's channel closes (its
/// next `recv`/`poll` reports the disconnect) and clients re-subscribe to
/// resume watching.
fn maintain_standing(
    monitor: &mut Monitor,
    subscribers: &mut HashMap<QueryId, mpsc::Sender<ResultDelta>>,
    stats: &mut ServeStats,
    apply: impl FnOnce(&mut Monitor) -> Vec<ResultDelta>,
) {
    if monitor.is_empty() {
        return;
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| apply(monitor))) {
        Ok(deltas) => notify(subscribers, deltas, stats),
        Err(_) => {
            // Not a rejection — no client request failed; track separately.
            stats.maintenance_failures += 1;
            monitor.clear();
            subscribers.clear();
        }
    }
}

/// The dispatcher loop: drain the queue, batch consecutive queries, apply
/// updates in arrival order, and maintain the standing-query registry.
fn dispatch(
    mut engine: ShardedEngine,
    rx: mpsc::Receiver<Msg>,
    batch_limit: usize,
) -> (ShardedEngine, ServeStats) {
    let mut stats = ServeStats::default();
    let mut carry: VecDeque<Msg> = VecDeque::new();
    let mut monitor = Monitor::new();
    let mut subscribers: HashMap<QueryId, mpsc::Sender<ResultDelta>> = HashMap::new();
    loop {
        let msg = match carry.pop_front() {
            Some(msg) => msg,
            None => match rx.recv() {
                Ok(msg) => msg,
                // Every handle (and the Server) is gone: stop serving.
                Err(mpsc::RecvError) => break,
            },
        };
        match msg {
            Msg::Shutdown => break,
            Msg::Insert { values, tx } => match validate_insert(&engine, &values) {
                Ok(()) => {
                    // The monitor needs the inserted values after the engine
                    // consumed them; only pay the clone when someone watches.
                    let watched = (!monitor.is_empty()).then(|| values.clone());
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.insert(values)
                    }));
                    match outcome {
                        Ok(id) => {
                            stats.updates += 1;
                            let _ = tx.send(Ok(id));
                            // The monitor runs on the dispatcher thread, so
                            // the standing results it patches are serialized
                            // with the update stream.  It is guarded
                            // separately from the engine update: the insert
                            // is committed and acknowledged above, so a
                            // classification panic must not be reported as
                            // UpdateFailed (losing the id) nor stop serving.
                            if let Some(values) = watched {
                                maintain_standing(
                                    &mut monitor,
                                    &mut subscribers,
                                    &mut stats,
                                    |monitor| monitor.apply_insert(&engine, &values),
                                );
                            }
                        }
                        Err(_) => {
                            // A panic mid-update may have left shard state
                            // half-applied; stop serving cleanly instead of
                            // risking corrupt answers (see UpdateFailed).
                            stats.reject(&ServeError::UpdateFailed);
                            let _ = tx.send(Err(ServeError::UpdateFailed));
                            break;
                        }
                    }
                }
                Err(err) => {
                    stats.reject(&err);
                    let _ = tx.send(Err(err));
                }
            },
            Msg::Delete { id, tx } => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    engine.delete_returning(id)
                }));
                match outcome {
                    Ok(removed) => {
                        stats.updates += 1;
                        let _ = tx.send(Ok(removed.is_some()));
                        if let Some(values) = removed {
                            maintain_standing(
                                &mut monitor,
                                &mut subscribers,
                                &mut stats,
                                |monitor| monitor.apply_delete(&engine, &values),
                            );
                        }
                    }
                    Err(_) => {
                        stats.reject(&ServeError::UpdateFailed);
                        let _ = tx.send(Err(ServeError::UpdateFailed));
                        break;
                    }
                }
            }
            Msg::Subscribe {
                algorithm,
                focal,
                k,
                deltas,
                tx,
            } => {
                // Registration runs the initial query; guard it like any
                // other query (the caches recover, serving continues).
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    monitor.register(&engine, algorithm, focal, k)
                }));
                match outcome {
                    Ok(Ok(id)) => {
                        stats.subscriptions += 1;
                        let initial = monitor
                            .result(id)
                            .expect("freshly registered query has a result")
                            .clone();
                        subscribers.insert(id, deltas);
                        let _ = tx.send(Ok((id, initial)));
                    }
                    Ok(Err(err)) => {
                        let err = register_error(err);
                        stats.reject(&err);
                        let _ = tx.send(Err(err));
                    }
                    Err(_) => {
                        stats.reject(&ServeError::QueryFailed);
                        let _ = tx.send(Err(ServeError::QueryFailed));
                    }
                }
            }
            Msg::Unsubscribe { id, tx } => {
                let removed = monitor.unregister(id);
                subscribers.remove(&id);
                if let Some(tx) = tx {
                    let _ = tx.send(Ok(removed));
                }
            }
            Msg::Subscriptions { tx } => {
                let _ = tx.send(Ok(monitor.len()));
            }
            Msg::Query(job) => {
                // Batched dequeue: greedily pull further *consecutive*
                // queries (updates act as barriers, preserving FIFO
                // semantics between queries and updates).
                let mut batch = vec![job];
                while batch.len() < batch_limit {
                    match rx.try_recv() {
                        Ok(Msg::Query(next)) => batch.push(next),
                        Ok(other) => {
                            // A Batch keeps its own identity (absorbing it
                            // here could blow past `batch_limit`); updates
                            // act as barriers.  Either way FIFO between the
                            // drained queries and what follows is preserved.
                            carry.push_back(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                run_jobs(&engine, batch, &mut stats);
            }
            Msg::Batch(jobs) => run_jobs(&engine, jobs, &mut stats),
        }
    }
    stats.monitor = monitor.stats();
    (engine, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::KsprConfig;

    fn demo_engine(shards: usize) -> ShardedEngine {
        ShardedEngine::new(
            vec![
                vec![0.3, 0.8, 0.8],
                vec![0.9, 0.4, 0.4],
                vec![0.8, 0.3, 0.4],
                vec![0.4, 0.3, 0.6],
            ],
            KsprConfig::default().with_shards(shards),
        )
    }

    #[test]
    fn submit_answers_queries_and_counts_them() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let a = handle.submit(vec![0.5, 0.5, 0.7], 3);
        let b = handle.submit_with(Algorithm::Pcta, vec![0.6, 0.6, 0.5], 2);
        let ra = a.wait().expect("query a");
        let rb = b.wait().expect("query b");
        assert!(ra.num_regions() >= 1);
        assert!(rb.num_regions() >= 1);
        let (engine, stats) = server.shutdown();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.rejected, 0);
        assert_eq!(
            stats.batches, 2,
            "distinct (algorithm, k) pairs never merge"
        );
        assert_eq!(engine.len(), 4);
    }

    #[test]
    fn submit_many_runs_as_one_batch() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let focals: Vec<Vec<f64>> = (0..6)
            .map(|i| vec![0.4 + 0.05 * i as f64, 0.5, 0.6])
            .collect();
        let tickets = handle.submit_many(focals.clone(), 3);
        let results: Vec<KsprResult> = tickets
            .into_iter()
            .map(|t| t.wait().expect("batched query"))
            .collect();
        // Batched answers equal direct engine answers, in order.
        let oracle = demo_engine(2);
        let expected = oracle.run_batch(Algorithm::LpCta, &focals, 3);
        for (got, want) in results.iter().zip(&expected) {
            assert_eq!(got.num_regions(), want.num_regions());
        }
        let (_, stats) = server.shutdown();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.largest_batch, 6, "one run_batch served all six");
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn invalid_requests_are_rejected_not_fatal() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 0).wait().unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle.submit(vec![0.5, 0.5], 2).wait().unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .submit(vec![0.5, f64::NAN, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        assert_eq!(
            handle.insert(vec![0.5, f64::INFINITY, 0.7]).wait(),
            Err(ServeError::NonFinite)
        );
        assert_eq!(
            handle.insert(vec![0.5]).wait(),
            Err(ServeError::ArityMismatch {
                expected: 3,
                got: 1
            })
        );
        // RTOPK is 2-D only; on 3-D data it must be rejected up front, not
        // allowed to panic the dispatcher thread.
        assert_eq!(
            handle
                .submit_with(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        // The server is still healthy afterwards.
        let ok = handle.submit(vec![0.5, 0.5, 0.7], 3).wait();
        assert!(ok.expect("server must survive rejections").num_regions() >= 1);
        let (_, stats) = server.shutdown();
        assert_eq!(stats.rejected, 6);
        assert_eq!(stats.queries, 1);
        // Rejections are attributed to their error variant.
        assert_eq!(stats.rejections.invalid_k, 1);
        assert_eq!(stats.rejections.arity_mismatch, 2, "query + insert");
        assert_eq!(stats.rejections.non_finite, 2, "query + insert");
        assert_eq!(stats.rejections.unsupported_algorithm, 1);
        assert_eq!(stats.rejections.query_failed, 0);
        assert_eq!(
            stats.rejections.total(),
            stats.rejected,
            "per-variant counters must add up to the total"
        );
    }

    #[test]
    fn updates_are_serialized_with_queries() {
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        // Empty dataset: whole preference space.
        let empty = handle
            .submit(vec![0.5, 0.5], 1)
            .wait()
            .expect("empty query");
        assert_eq!(empty.num_regions(), 1);

        // Insert a dominator; a query submitted afterwards must see it.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let beaten = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(beaten.num_regions(), 0, "the dominator blocks top-1");

        // Delete it again (emptying the shard): back to whole space.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        assert_eq!(handle.delete(id).wait(), Ok(false));
        let restored = handle.submit(vec![0.5, 0.5], 1).wait().expect("query");
        assert_eq!(restored.num_regions(), 1);

        let (engine, stats) = server.shutdown();
        assert!(engine.is_empty());
        assert_eq!(stats.updates, 3, "insert + two deletes (one a no-op)");
    }

    #[test]
    fn subscriptions_stream_deltas_serialized_with_updates() {
        use kspr_monitor::UpdateClass;
        let server = Server::start(
            ShardedEngine::empty(2, KsprConfig::default().with_shards(2)),
            ServeOptions::default(),
        );
        let handle = server.handle();
        let sub = handle
            .subscribe(vec![0.5, 0.5], 1)
            .wait()
            .expect("subscribe");
        assert_eq!(sub.initial().num_regions(), 1, "no competitor: whole space");

        // A dominator empties the standing result in place; the notification
        // reflects exactly the acknowledged update.
        let id = handle.insert(vec![0.9, 0.9]).wait().expect("insert");
        let delta = sub.recv().expect("dominator insert notifies");
        assert_eq!(delta.query, sub.id());
        assert_eq!(delta.class, UpdateClass::Patched);
        assert_eq!(delta.regions_before, 1);
        assert_eq!(delta.regions_after, 0);
        assert_eq!(delta.regions_removed(), 1);

        // Deleting it re-runs the standing query and restores the result.
        assert_eq!(handle.delete(id).wait(), Ok(true));
        let delta = sub.recv().expect("dominator delete notifies");
        assert_eq!(delta.class, UpdateClass::Rerun);
        assert_eq!(delta.regions_after, 1);

        // An invisible update (dominated by the focal record) is silent.
        let id = handle.insert(vec![0.1, 0.1]).wait().expect("insert");
        assert_eq!(handle.delete(id).wait(), Ok(true));
        // Serialize behind the updates before polling.
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        assert!(sub.poll().is_empty(), "unchanged results must not notify");

        // Dropping the subscription unregisters the standing query: the
        // registry (and its maintenance state) returns to zero.
        drop(sub);
        assert_eq!(handle.subscriptions().wait(), Ok(0));

        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 1);
        assert_eq!(stats.notifications, 2);
        assert_eq!(stats.updates, 4);
        assert_eq!(
            stats.monitor.classified(),
            4,
            "one classification per update while subscribed"
        );
        assert_eq!(stats.monitor.patched, 1);
        assert_eq!(stats.monitor.reruns, 1);
        assert_eq!(stats.monitor.unaffected, 2);
    }

    #[test]
    fn unsubscribe_frees_the_registry() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let a = handle
            .subscribe(vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("subscribe a");
        let b = handle
            .subscribe_with(Algorithm::Pcta, vec![0.6, 0.6, 0.5], 3)
            .wait()
            .expect("subscribe b");
        assert_ne!(a.id(), b.id());
        assert_eq!(handle.subscriptions().wait(), Ok(2));
        assert_eq!(handle.unsubscribe(a.id()).wait(), Ok(true));
        assert_eq!(
            handle.unsubscribe(a.id()).wait(),
            Ok(false),
            "double unsubscribe reports the query as gone"
        );
        assert_eq!(handle.subscriptions().wait(), Ok(1));
        drop(b);
        assert_eq!(handle.subscriptions().wait(), Ok(0), "drop unregisters");
        drop(a); // late drop after an explicit unsubscribe is harmless
        assert_eq!(handle.subscriptions().wait(), Ok(0));
        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 2);
    }

    #[test]
    fn invalid_subscriptions_are_rejected_and_counted() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        assert_eq!(
            handle.subscribe(vec![0.5, 0.5, 0.7], 0).wait().unwrap_err(),
            ServeError::InvalidK
        );
        assert_eq!(
            handle.subscribe(vec![0.5, 0.5], 2).wait().unwrap_err(),
            ServeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert_eq!(
            handle
                .subscribe(vec![0.5, f64::NAN, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::NonFinite
        );
        // The sweep baselines have no maintenance hooks.
        assert_eq!(
            handle
                .subscribe_with(Algorithm::Rtopk, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .unwrap_err(),
            ServeError::UnsupportedAlgorithm
        );
        let (_, stats) = server.shutdown();
        assert_eq!(stats.subscriptions, 0);
        assert_eq!(stats.rejected, 4);
        assert_eq!(stats.rejections.invalid_k, 1);
        assert_eq!(stats.rejections.arity_mismatch, 1);
        assert_eq!(stats.rejections.non_finite, 1);
        assert_eq!(stats.rejections.unsupported_algorithm, 1);
        assert_eq!(stats.rejections.total(), stats.rejected);
    }

    #[test]
    fn subscription_results_match_direct_queries_across_updates() {
        let server = Server::start(demo_engine(2), ServeOptions::default());
        let handle = server.handle();
        let sub = handle
            .subscribe_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("subscribe");
        let direct = handle
            .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
            .wait()
            .expect("query");
        assert_eq!(sub.initial().num_regions(), direct.num_regions());
        assert_eq!(sub.initial().rank_signature(), direct.rank_signature());

        // Stream a few updates; after each, the maintained result (initial +
        // applied deltas) must agree with a direct query on region count.
        // The direct query doubles as a serialization barrier: once it is
        // answered, every notification for the preceding update has been
        // delivered, so `poll` cannot race the dispatcher.
        let mut current = sub.initial().num_regions();
        for values in [vec![0.6, 0.6, 0.8], vec![0.2, 0.9, 0.6]] {
            let id = handle.insert(values).wait().expect("insert");
            let direct = handle
                .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .expect("query");
            for delta in sub.poll() {
                current = delta.regions_after;
            }
            assert_eq!(current, direct.num_regions(), "after insert");
            assert_eq!(handle.delete(id).wait(), Ok(true));
            let direct = handle
                .submit_with(Algorithm::KSkyband, vec![0.5, 0.5, 0.7], 2)
                .wait()
                .expect("query");
            for delta in sub.poll() {
                current = delta.regions_after;
            }
            assert_eq!(current, direct.num_regions(), "after delete");
        }
    }

    #[test]
    fn tickets_resolve_to_server_closed_after_shutdown() {
        let server = Server::start(demo_engine(1), ServeOptions::default());
        let handle = server.handle();
        drop(server); // Drop joins the dispatcher.
        assert_eq!(
            handle.submit(vec![0.5, 0.5, 0.7], 2).wait().unwrap_err(),
            ServeError::ServerClosed
        );
    }
}
