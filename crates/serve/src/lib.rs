//! # kspr-serve — sharded batch serving for the kSPR engine
//!
//! The `kspr` crate answers kSPR queries through a single
//! [`kspr::QueryEngine`] over a single dataset copy.  This crate turns that
//! library call into a **service**:
//!
//! * [`ShardedEngine`] partitions the dataset (round-robin or by R-tree
//!   subtrees) into a pool of `QueryEngine` shards.  Updates route to the
//!   owning shard and patch its R-tree and shared-prep cache incrementally;
//!   queries fan out over the per-shard k-skybands and run on a merged,
//!   cached candidate engine.  The merge is result-preserving — see the
//!   correctness argument in the [`sharded`] module docs.
//! * [`Server`] / [`ServeHandle`] put a request queue in front of the
//!   sharded engine: clients `submit` queries (receiving [`Ticket`]s they
//!   can wait on), the dispatcher batches consecutive requests into
//!   [`ShardedEngine::run_batch`] calls, and updates are serialized with the
//!   queries around them.  Malformed requests (`k == 0`, arity mismatches,
//!   non-finite values) come back as [`ServeError`]s instead of panicking
//!   the serving thread, counted per variant in [`ServeStats`].
//! * [`ServeHandle::subscribe`] turns a query into a **standing query**: the
//!   dispatcher keeps its result correct across updates through the
//!   `kspr-monitor` classifier (unaffected / patched in place / re-run) and
//!   pushes a [`ResultDelta`] to the [`Subscription`] after every update
//!   that changed it.  Dropping the subscription unregisters the query.
//! * The **approximate tier** (`kspr-approx`) is wired through every entry
//!   point: [`ServeHandle::submit_approx`] answers with a budgeted
//!   market-impact estimate (consecutive approximate submissions batch into
//!   one shared sampling sweep, separately from exact queries),
//!   [`ServeHandle::submit_tiered`] accepts a per-request [`kspr::QueryTier`]
//!   (`Auto` is routed by the dispatcher's arrangement-cost estimate and
//!   counted in [`ServeStats`]), and [`ServeHandle::subscribe_approx`] keeps
//!   a standing estimate honest across updates by re-drawing it only when an
//!   update possibly moved the true impact.
//!
//! The service itself is layered (each layer its own module):
//!
//! * **wire** ([`net::NetServer`] + the `kspr-wire` codec) — a blocking TCP
//!   front-end; each connection is its own admission client.
//! * **admission** ([`AdmissionOptions`]) — queries are stamped with the
//!   pending-queue depth and their client's in-flight count at enqueue and
//!   judged at dispatch: past the degradation watermark, tier-dispatched
//!   queries are downgraded to the approximate tier; past the hard limit
//!   (or a per-client quota) they are rejected with
//!   [`ServeError::Overloaded`] / [`ServeError::QuotaExceeded`].
//! * **dispatch** — the single-threaded core: update serialization, query
//!   batching, standing-query maintenance.
//! * **durability** (`kspr-durable`) — [`Server::start_durable`] commits
//!   every applied update to a CRC-framed WAL before acknowledging it and
//!   installs epoch snapshots; [`Server::recover`] rebuilds engine and
//!   registry bit-identically after a crash.
//!
//! ```
//! use kspr::{Algorithm, KsprConfig};
//! use kspr_serve::{ServeOptions, Server, ShardedEngine};
//!
//! let engine = ShardedEngine::new(
//!     vec![
//!         vec![0.3, 0.8, 0.8],
//!         vec![0.9, 0.4, 0.4],
//!         vec![0.8, 0.3, 0.4],
//!         vec![0.4, 0.3, 0.6],
//!     ],
//!     KsprConfig::default().with_shards(2),
//! );
//! let server = Server::start(engine, ServeOptions::default());
//! let handle = server.handle();
//!
//! // Queries resolve through tickets; updates are first-class requests.
//! let pending = handle.submit(vec![0.5, 0.5, 0.7], 3);
//! let id = handle.insert(vec![0.7, 0.7, 0.7]).wait().unwrap();
//! let result = pending.wait().unwrap();
//! assert!(result.num_regions() >= 1);
//! assert!(handle.delete(id).wait().unwrap());
//!
//! let (engine, stats) = server.shutdown();
//! assert_eq!(stats.queries, 1);
//! assert_eq!(stats.updates, 2);
//! assert_eq!(engine.len(), 4);
//! ```

pub mod admission;
mod batch;
mod dispatch;
mod error;
pub mod net;
mod persist;
pub mod server;
pub mod sharded;
mod stats;
mod subscription;
mod telemetry;

pub use admission::AdmissionOptions;
pub use batch::MAX_APPROX_SAMPLES;
pub use error::{ServeError, Ticket};
pub use kspr_approx::TieredResult;
pub use kspr_monitor::{QueryId, ResultDelta, UpdateClass};
pub use kspr_telemetry::{
    HistogramSnapshot, MetricsSnapshot, Stage, StageTimings, TraceId, TraceRecord,
};
pub use net::NetServer;
pub use persist::RecoverError;
pub use server::{ServeHandle, ServeOptions, Server};
pub use sharded::{ShardStrategy, ShardedEngine};
pub use stats::{RejectionStats, ServeStats, REJECTION_VARIANTS};
pub use subscription::{
    ApproxDelta, ApproxSubscribeTicket, ApproxSubscription, ApproxWatchId, SubscribeTicket,
    Subscription, MAX_PENDING_DELTAS,
};
pub use telemetry::{SlowQuery, FLIGHT_RECORDER_CAPACITY, SLOW_LOG_CAPACITY};
