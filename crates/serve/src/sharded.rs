//! The sharded kSPR engine: one dataset partitioned across a pool of
//! [`QueryEngine`] shards, answered through a result-preserving merge.
//!
//! # Architecture
//!
//! The dataset is partitioned into `S` shards — either round-robin or by
//! R-tree subtrees ([`ShardStrategy`]) — and each shard owns a full
//! [`QueryEngine`]: its own record partition, its own incrementally
//! maintained R-tree, and its own per-`k` [`kspr::SharedPrep`] cache.
//! Updates route to the owning shard ([`ShardedEngine::insert`] round-robins
//! over shards, [`ShardedEngine::delete`] follows the global-id map), so the
//! per-update maintenance cost — including the `O(shard)` promotion scan a
//! band-member delete needs — is bounded by the shard size, not the dataset
//! size.
//!
//! # The merge, and why it preserves results
//!
//! A query fans out to every shard's preprocessing pipeline and merges the
//! per-shard outputs into a global **candidate engine**:
//!
//! 1. every shard exposes its dataset-level k-skyband (cached, incrementally
//!    patched across updates) through [`QueryEngine::shared_prep_for`];
//! 2. the per-shard bands are merged — deduplicated by global record id and
//!    re-sorted into global id order — into one small candidate dataset;
//! 3. the query (or query batch) runs on a `QueryEngine` over that candidate
//!    dataset, sharing it across all queries until the next update.
//!
//! The merge is *result-preserving*: the kSPR result over the candidate union
//! is geometrically identical to the result over the full dataset, because a
//! record `y` excluded from its shard's band has at least `k` dominators
//! inside that band (the skyband witness property), all of which are
//! candidates.  Wherever `y` outscores the focal record, so do its `k`
//! dominators, hence the focal record is already out of the top-`k` there; on
//! the flip side, inside any reported region no excluded record can outscore
//! the focal record, so neither the regions, their ranks, nor the
//! empty/whole-space classification can change.  (The same argument bounds
//! the focal record's dominator count: it reaches `k` within the candidate
//! union iff it does in the full dataset.)  The
//! `shard_consistency` property test in the umbrella crate checks this
//! equivalence under random insert/delete/query interleavings.
//!
//! With a single shard the engine skips the merge entirely and passes
//! queries straight to the shard's `QueryEngine`, making the `shards = 1`
//! configuration bit-for-bit identical to the plain engine.

use kspr::{
    Algorithm, ApproxImpact, ApproxOptions, Dataset, DatasetStore, ErrorBudget, KsprConfig,
    KsprResult, PreferenceSpace, QueryEngine, QueryStats, QueryTier, RecordId,
};
use kspr_approx::{arrangement_cost, pool_estimates, ApproxEngine, PartialEstimate, TieredResult};
use kspr_durable::SlotState;
use kspr_spatial::{AggregateRTree, Record};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// How the initial dataset is partitioned across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Record `i` goes to shard `i % S`.  Spreads any data distribution
    /// evenly, so shard bands stay balanced.
    #[default]
    RoundRobin,
    /// Records are split along the STR tile order of a bulk-loaded R-tree
    /// ([`AggregateRTree::partition_subtrees`]): each shard holds a
    /// spatially contiguous slab of the dataset.
    Subtrees,
}

/// One engine shard: the engine itself (lazily created — a shard that has
/// never held a record has none) and the local-to-global id mapping.
struct Shard {
    engine: Option<QueryEngine>,
    /// `globals[local_id]` is the global id of the shard's record slot
    /// `local_id` (slots are dense and never reused, mirroring the store).
    globals: Vec<RecordId>,
}

/// The merged candidate engines, keyed by `k` and invalidated whenever any
/// shard's epoch moves.
#[derive(Default)]
struct MergedCache {
    /// Per-shard epochs the cached engines were built against (`None` for a
    /// shard that does not exist yet).
    epochs: Vec<Option<u64>>,
    engines: HashMap<usize, Arc<QueryEngine>>,
}

/// A pool of [`QueryEngine`] shards over one partitioned dataset, with
/// update routing and a result-preserving query merge (see the module docs).
pub struct ShardedEngine {
    shards: Vec<Shard>,
    /// `locs[global_id]` is the owning `(shard, local_id)` of a record.
    locs: Vec<(usize, usize)>,
    dim: usize,
    config: KsprConfig,
    /// Round-robin cursor for insert routing.
    next_shard: usize,
    merged: Mutex<MergedCache>,
}

impl ShardedEngine {
    /// Partitions `raw` into [`KsprConfig::shards`] shards with the default
    /// strategy and builds one engine per (non-empty) shard.
    ///
    /// # Panics
    /// Panics if `raw` is empty (use [`ShardedEngine::empty`] to start with
    /// no records), if rows have inconsistent arities, or if any value is
    /// non-finite.
    pub fn new(raw: Vec<Vec<f64>>, config: KsprConfig) -> Self {
        Self::with_strategy(raw, config, ShardStrategy::default())
    }

    /// Like [`ShardedEngine::new`] with an explicit partitioning strategy.
    pub fn with_strategy(raw: Vec<Vec<f64>>, config: KsprConfig, strategy: ShardStrategy) -> Self {
        assert!(
            !raw.is_empty(),
            "cannot partition an empty dataset; use ShardedEngine::empty"
        );
        let dim = raw[0].len();
        for (id, row) in raw.iter().enumerate() {
            kspr::dataset::validate_record(row, Some(dim), id);
        }
        let s = config.shards;
        assert!(s >= 1, "at least one shard is required");

        // Global id -> shard assignment.
        let groups: Vec<Vec<RecordId>> = match strategy {
            ShardStrategy::RoundRobin => {
                let mut groups = vec![Vec::new(); s];
                for (i, group) in (0..raw.len()).map(|i| (i, i % s)) {
                    groups[group].push(i);
                }
                groups
            }
            ShardStrategy::Subtrees => {
                let records = Record::from_raw(raw.clone());
                AggregateRTree::bulk_load(records, config.rtree_fanout).partition_subtrees(s)
            }
        };

        let mut locs = vec![(usize::MAX, usize::MAX); raw.len()];
        let mut shards = Vec::with_capacity(s);
        for (shard_idx, group) in groups.into_iter().enumerate() {
            for (local, &global) in group.iter().enumerate() {
                locs[global] = (shard_idx, local);
            }
            let engine = if group.is_empty() {
                None
            } else {
                let rows: Vec<Vec<f64>> = group.iter().map(|&g| raw[g].clone()).collect();
                Some(QueryEngine::with_store(
                    DatasetStore::from_raw(rows),
                    config.clone(),
                ))
            };
            shards.push(Shard {
                engine,
                globals: group,
            });
        }
        debug_assert!(locs.iter().all(|&(s, _)| s != usize::MAX));

        Self {
            shards,
            locs,
            dim,
            config,
            next_shard: raw.len() % s,
            merged: Mutex::new(MergedCache::default()),
        }
    }

    /// An engine with no records yet: `dim` fixes the arity every later
    /// insert and query must match.
    pub fn empty(dim: usize, config: KsprConfig) -> Self {
        assert!(dim >= 1, "the dataset arity must be at least 1");
        let s = config.shards;
        assert!(s >= 1, "at least one shard is required");
        Self {
            shards: (0..s)
                .map(|_| Shard {
                    engine: None,
                    globals: Vec::new(),
                })
                .collect(),
            locs: Vec::new(),
            dim,
            config,
            next_shard: 0,
            merged: Mutex::new(MergedCache::default()),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of live records across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.engine.as_ref())
            .map(|e| e.dataset().len())
            .sum()
    }

    /// True iff no live record exists in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dataset arity.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configuration shared by every shard.
    pub fn config(&self) -> &KsprConfig {
        &self.config
    }

    /// Live record count per shard (serving telemetry).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.engine.as_ref().map_or(0, |e| e.dataset().len()))
            .collect()
    }

    /// Number of tombstoned record slots across all shards (deleted records
    /// whose slots are retained for global-id stability).
    pub fn tombstone_count(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.engine.as_ref())
            .map(|e| e.dataset().tombstone_count())
            .sum()
    }

    /// Fraction of record slots that still hold tombstoned *storage*, in
    /// `[0, 1)` (0.0 before any record exists).  The serving dispatcher
    /// triggers [`ShardedEngine::compact`] once this exceeds 50%, which
    /// resets the ratio to zero without disturbing any live global id.
    pub fn tombstone_ratio(&self) -> f64 {
        let slots = self.locs.len();
        if slots == 0 {
            0.0
        } else {
            self.tombstone_count() as f64 / slots as f64
        }
    }

    /// Rewrites every shard that holds tombstoned slots down to its live
    /// records, returning how many dead slots were reclaimed.
    ///
    /// Global ids are **stable across compaction**: a live record keeps the
    /// id clients (and standing-query bookkeeping) already hold, a
    /// compacted-away id keeps answering "never existed / already deleted"
    /// forever, and fresh inserts keep extending the never-reused id space.
    /// Only the shard-local storage is rewritten — each affected shard gets
    /// a fresh [`QueryEngine`] over its live records with dense local ids,
    /// and the global→local routing table is remapped in place.  Because no
    /// live record changes, every query answer (and every maintained
    /// standing result) is identical before and after.
    pub fn compact(&mut self) -> usize {
        let removed = self.tombstone_count();
        if removed == 0 {
            return 0;
        }
        for (shard_idx, shard) in self.shards.iter_mut().enumerate() {
            let Some(engine) = &shard.engine else {
                continue;
            };
            if engine.dataset().tombstone_count() == 0 {
                continue;
            }
            let mut globals = Vec::new();
            let mut rows = Vec::new();
            for (local, &global) in shard.globals.iter().enumerate() {
                if engine.dataset().is_live(local) {
                    globals.push(global);
                    rows.push(engine.dataset().values(local).to_vec());
                } else {
                    // The global id stays allocated (ids are never reused)
                    // but no longer routes anywhere.
                    self.locs[global] = (usize::MAX, usize::MAX);
                }
            }
            for (local, &global) in globals.iter().enumerate() {
                self.locs[global] = (shard_idx, local);
            }
            shard.engine = if rows.is_empty() {
                None
            } else {
                Some(QueryEngine::with_store(
                    DatasetStore::from_raw(rows),
                    self.config.clone(),
                ))
            };
            shard.globals = globals;
        }
        // The rebuilt engines restart their epoch counters, so the epoch
        // comparison alone could mistake a fresh engine for a pre-compaction
        // snapshot that still contained the deleted records; drop the merged
        // cache outright.
        let cache = self
            .merged
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        cache.engines.clear();
        cache.epochs.clear();
        removed
    }

    // -----------------------------------------------------------------------
    // Durability: logical state export / restore
    // -----------------------------------------------------------------------

    /// Exports the durable slot table: one [`SlotState`] per global id, in
    /// id order.  Together with [`ShardedEngine::export_epochs`] and
    /// [`ShardedEngine::routing_cursor`] this is the engine's full logical
    /// state — what [`ShardedEngine::from_slots`] rebuilds from.
    pub fn export_slots(&self) -> Vec<SlotState> {
        self.locs
            .iter()
            .map(|&(shard_idx, local)| {
                if shard_idx == usize::MAX {
                    return SlotState::Compacted;
                }
                let engine = self.shards[shard_idx]
                    .engine
                    .as_ref()
                    .expect("a routed slot's shard has an engine");
                let values = engine.dataset().values(local).to_vec();
                if engine.dataset().is_live(local) {
                    SlotState::Live {
                        shard: shard_idx as u32,
                        values,
                    }
                } else {
                    SlotState::Tombstone {
                        shard: shard_idx as u32,
                        values,
                    }
                }
            })
            .collect()
    }

    /// Per-shard dataset epochs (`0` for a shard that holds no engine).
    pub fn export_epochs(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.engine.as_ref().map_or(0, |e| e.store().epoch()))
            .collect()
    }

    /// The round-robin insert cursor (the shard the next insert routes to).
    pub fn routing_cursor(&self) -> usize {
        self.next_shard
    }

    /// Rebuilds an engine from state captured by [`ShardedEngine::export_slots`]
    /// / [`ShardedEngine::export_epochs`] / [`ShardedEngine::routing_cursor`].
    ///
    /// Each shard's store is re-created over its slots in global-id order
    /// (live rows and tombstoned rows alike, the latter re-deleted so
    /// tombstone accounting survives), then its dataset epoch is restored, so
    /// the rebuilt pool routes updates identically and answers queries
    /// bit-identically to the exported one: query results are deterministic
    /// functions of the live record set (the `shard_consistency` invariant),
    /// and the id maps, cursor and epochs are reproduced exactly.
    ///
    /// # Panics
    /// Panics on structurally invalid state (a slot routed to a shard index
    /// `>= num_shards`, non-finite values, arity mismatches).
    pub fn from_slots(
        dim: usize,
        config: KsprConfig,
        num_shards: usize,
        next_shard: usize,
        shard_epochs: &[u64],
        slots: &[SlotState],
    ) -> Self {
        assert!(dim >= 1, "the dataset arity must be at least 1");
        assert!(num_shards >= 1, "at least one shard is required");
        assert!(
            next_shard < num_shards,
            "the routing cursor must name a shard"
        );
        let config = config.with_shards(num_shards);

        struct Build {
            rows: Vec<Vec<f64>>,
            globals: Vec<RecordId>,
            dead: Vec<usize>,
        }
        let mut builds: Vec<Build> = (0..num_shards)
            .map(|_| Build {
                rows: Vec::new(),
                globals: Vec::new(),
                dead: Vec::new(),
            })
            .collect();
        let mut locs = vec![(usize::MAX, usize::MAX); slots.len()];
        for (global, slot) in slots.iter().enumerate() {
            let (shard_idx, values, live) = match slot {
                SlotState::Live { shard, values } => (*shard as usize, values, true),
                SlotState::Tombstone { shard, values } => (*shard as usize, values, false),
                SlotState::Compacted => continue,
            };
            assert!(shard_idx < num_shards, "slot routed to a missing shard");
            let build = &mut builds[shard_idx];
            let local = build.globals.len();
            locs[global] = (shard_idx, local);
            build.globals.push(global);
            build.rows.push(values.clone());
            if !live {
                build.dead.push(local);
            }
        }

        let shards = builds
            .into_iter()
            .enumerate()
            .map(|(shard_idx, build)| {
                let engine = if build.rows.is_empty() {
                    None
                } else {
                    let mut engine =
                        QueryEngine::with_store(DatasetStore::from_raw(build.rows), config.clone());
                    for local in build.dead {
                        engine.delete_returning(local);
                    }
                    engine.restore_epoch(shard_epochs.get(shard_idx).copied().unwrap_or(0));
                    Some(engine)
                };
                Shard {
                    engine,
                    globals: build.globals,
                }
            })
            .collect();

        Self {
            shards,
            locs,
            dim,
            config,
            next_shard,
            merged: Mutex::new(MergedCache::default()),
        }
    }

    /// Number of live records (across all shards) dominating `values`,
    /// early-exiting once `limit` is reached — the sharded analogue of
    /// [`QueryEngine::count_dominating`], used by the standing-query monitor
    /// to witness irrelevant updates away.
    pub fn count_dominating(&self, values: &[f64], limit: usize) -> usize {
        let mut total = 0usize;
        for shard in &self.shards {
            if let Some(engine) = &shard.engine {
                total += engine.count_dominating(values, limit.saturating_sub(total));
                if total >= limit {
                    return total;
                }
            }
        }
        total
    }

    /// Size of the candidate set a `k`-query would run against (`0` when no
    /// live record exists).  Builds (and caches) the merged engine on a cold
    /// cache; note that when an engine built for a *larger* `k` is already
    /// cached, queries for `k` are served from that superset (equally
    /// correct, see the module docs) and this reports the superset's size —
    /// the value reflects what actually runs, not the minimal `k`-union.
    pub fn merged_candidates(&self, k: usize) -> usize {
        self.merged_engine(k).map_or(0, |e| e.dataset().len())
    }

    // -----------------------------------------------------------------------
    // Updates
    // -----------------------------------------------------------------------

    /// Inserts a record into the next shard (round-robin) and returns its
    /// global id.  The owning shard patches its R-tree and shared-prep cache
    /// incrementally; the other shards are untouched.
    ///
    /// # Panics
    /// Panics if `values` does not match the arity or contains a non-finite
    /// value.
    pub fn insert(&mut self, values: Vec<f64>) -> RecordId {
        kspr::dataset::validate_record(&values, Some(self.dim), self.locs.len());
        let shard_idx = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards.len();
        let shard = &mut self.shards[shard_idx];
        let local = match &mut shard.engine {
            Some(engine) => engine.insert(values),
            None => {
                shard.engine = Some(QueryEngine::with_store(
                    DatasetStore::from_raw(vec![values]),
                    self.config.clone(),
                ));
                0
            }
        };
        debug_assert_eq!(local, shard.globals.len(), "shard ids are dense");
        let global = self.locs.len();
        shard.globals.push(global);
        self.locs.push((shard_idx, local));
        global
    }

    /// Deletes the record with the given global id, returning `false` if it
    /// never existed or was already deleted.  Routed to the owning shard.
    pub fn delete(&mut self, id: RecordId) -> bool {
        self.delete_returning(id).is_some()
    }

    /// Like [`ShardedEngine::delete`], but returns the removed record's
    /// attribute values — the delete hook the standing-query monitor needs
    /// (mirrors [`QueryEngine::delete_returning`]).
    pub fn delete_returning(&mut self, id: RecordId) -> Option<Vec<f64>> {
        let &(shard_idx, local) = self.locs.get(id)?;
        if shard_idx == usize::MAX {
            // The slot was tombstoned and its storage compacted away.
            return None;
        }
        self.shards[shard_idx]
            .engine
            .as_mut()
            .and_then(|engine| engine.delete_returning(local))
    }

    // -----------------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------------

    /// Runs one kSPR query across the shard pool.
    ///
    /// # Panics
    /// Panics if `k == 0` or the focal arity does not match the dataset.
    pub fn run(&self, algorithm: Algorithm, focal: &[f64], k: usize) -> KsprResult {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            focal.len() == self.dim,
            "focal record arity must match the dataset"
        );
        if let Some(single) = self.single_shard_engine() {
            return single.run(algorithm, focal, k);
        }
        match self.merged_engine(k) {
            Some(engine) => engine.run(algorithm, focal, k),
            None => self.no_competitor_result(focal),
        }
    }

    /// Runs a batch of queries (shared candidate engine, parallel workers via
    /// [`QueryEngine::run_batch`]); results are in input order and identical
    /// to running [`ShardedEngine::run`] once per focal record.
    pub fn run_batch(
        &self,
        algorithm: Algorithm,
        focals: &[Vec<f64>],
        k: usize,
    ) -> Vec<KsprResult> {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            focals.iter().all(|f| f.len() == self.dim),
            "focal record arity must match the dataset"
        );
        if let Some(single) = self.single_shard_engine() {
            return single.run_batch(algorithm, focals, k);
        }
        match self.merged_engine(k) {
            Some(engine) => engine.run_batch(algorithm, focals, k),
            None => focals
                .iter()
                .map(|f| self.no_competitor_result(f))
                .collect(),
        }
    }

    // -----------------------------------------------------------------------
    // The approximate tier
    // -----------------------------------------------------------------------

    /// Estimates the market impact of every focal record to `budget` by
    /// fanning the sampling work across the shard pool (see
    /// [`ShardedEngine::run_approx_batch_with`]).
    pub fn run_approx_batch(
        &self,
        focals: &[Vec<f64>],
        k: usize,
        budget: &ErrorBudget,
        seed: u64,
    ) -> Vec<ApproxImpact> {
        self.run_approx_batch_with(focals, k, budget, seed, &ApproxOptions::default())
    }

    /// The approximate tier of the sharded engine: the total sample budget
    /// is **allocated across shards proportionally to their live-record
    /// counts** (each shard's worker draws its own independent sub-stream;
    /// the split shards the sampling *work* and keeps each shard's partial
    /// estimate meaningful telemetry — it cannot change the pooled
    /// distribution, since every sub-stream is i.i.d. uniform), every probe
    /// runs against the **merged candidate snapshot** — the union of
    /// per-shard k-skybands, the same result-preserving candidate set the
    /// exact merge queries (top-`k` membership is pointwise identical on
    /// it, so the estimator stays unbiased for the full-dataset impact) —
    /// and the per-shard partial estimates **merge by pooling**:
    /// hit and sample counts sum, and the combined Hoeffding interval is
    /// taken over the pooled sample count, so the reported half-width meets
    /// the budget exactly as a single-stream estimate would.
    ///
    /// The candidate snapshot is epoch-consistent (a reference-counted
    /// dataset handle; updates copy-on-write), so an insert or delete
    /// landing mid-flight can never skew an estimate half-way through its
    /// stream.  With no live competitor every preference is trivially a hit:
    /// the estimate is exactly `1.0` (the hit sketch is not materialized in
    /// that case).
    ///
    /// # Panics
    /// Panics if `k == 0` or any focal arity does not match the dataset.
    pub fn run_approx_batch_with(
        &self,
        focals: &[Vec<f64>],
        k: usize,
        budget: &ErrorBudget,
        seed: u64,
        options: &ApproxOptions,
    ) -> Vec<ApproxImpact> {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            focals.iter().all(|f| f.len() == self.dim),
            "focal record arity must match the dataset"
        );
        let total_samples = budget.samples();
        // Both arms go through `from_engine`: it samples the configured
        // preference space (`KsprConfig::space` — the original-space pools
        // must not draw from the transformed simplex) and restricts probes
        // to the engine's cached k-skyband.  For the merged engine that band
        // is the band *of the union*, a further result-preserving pruning on
        // top of the union itself.
        let sampler = match self.single_shard_engine() {
            Some(engine) => Some(ApproxEngine::from_engine(engine, k)),
            None => self
                .merged_engine(k)
                .map(|engine| ApproxEngine::from_engine(&engine, k)),
        };
        let sampler = match sampler {
            Some(sampler) if sampler.num_candidates() > 0 => sampler,
            _ => {
                // No live competitor anywhere: the focal record is top-1 for
                // every preference, with zero estimation error.
                let half_width = budget.half_width(total_samples);
                return focals
                    .iter()
                    .map(|_| ApproxImpact {
                        impact: 1.0,
                        half_width,
                        samples: total_samples,
                        hits: Vec::new(),
                    })
                    .collect();
            }
        };

        let allocation = self.allocate_samples(total_samples);
        let partials: Vec<PartialEstimate> = allocation
            .par_iter()
            .map(|&(shard, samples)| {
                sampler.sample_batch(focals, samples, Self::shard_seed(seed, shard), options)
            })
            .collect();
        pool_estimates(partials, budget.confidence)
    }

    /// Splits `total` samples across the shards proportionally to their
    /// live-record counts (shards with no live record draw nothing; rounding
    /// remainders go to the earliest contributing shards, so the allocation
    /// always sums to `total`).  A pool with no live record at all assigns
    /// everything to shard 0 — the caller has already short-circuited the
    /// no-competitor answer by then, this only keeps the split total.
    fn allocate_samples(&self, total: usize) -> Vec<(usize, usize)> {
        let sizes = self.shard_sizes();
        let live_total: usize = sizes.iter().sum();
        if live_total == 0 {
            return vec![(0, total)];
        }
        let mut allocation: Vec<(usize, usize)> = sizes
            .iter()
            .enumerate()
            .filter(|&(_, &live)| live > 0)
            .map(|(shard, &live)| (shard, total * live / live_total))
            .collect();
        let assigned: usize = allocation.iter().map(|&(_, n)| n).sum();
        for slot in 0..(total - assigned) {
            let idx = slot % allocation.len();
            allocation[idx].1 += 1;
        }
        allocation.retain(|&(_, n)| n > 0);
        allocation
    }

    /// Per-shard sample-stream seed.  Shard 0 keeps the caller's seed, so a
    /// single-shard pool draws the exact stream a plain [`ApproxEngine`]
    /// would.
    fn shard_seed(seed: u64, shard: usize) -> u64 {
        seed.wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The `Auto`-tier arrangement-cost estimate at rank threshold `k`: the
    /// cell-count bound `candidates^work_dim` of the merged candidate set
    /// (the single-shard pool asks its engine directly) — `0.0` with no live
    /// record.
    pub fn estimated_cost(&self, k: usize) -> f64 {
        if let Some(single) = self.single_shard_engine() {
            return kspr_approx::estimated_cost(single, k);
        }
        let candidates = self.merged_candidates(k);
        if candidates == 0 {
            return 0.0;
        }
        let work_dim = PreferenceSpace::new(self.dim, self.config.space).work_dim();
        arrangement_cost(candidates, work_dim)
    }

    /// True iff an `Auto`-tier query at rank threshold `k` runs on the exact
    /// engine under `cost_threshold` (see [`QueryTier::Auto`]).
    pub fn auto_routes_exact(&self, k: usize, cost_threshold: f64) -> bool {
        self.estimated_cost(k) <= cost_threshold
    }

    /// Answers a batch through an explicit [`QueryTier`]: `Exact` is a pure
    /// passthrough to [`ShardedEngine::run_batch`], `Approximate` samples to
    /// the budget ([`ShardedEngine::run_approx_batch`]), and `Auto` routes
    /// the whole batch by [`ShardedEngine::auto_routes_exact`] (the decision
    /// is focal-independent).  `seed` drives the sampler only.
    pub fn run_tiered_batch(
        &self,
        algorithm: Algorithm,
        focals: &[Vec<f64>],
        k: usize,
        tier: QueryTier,
        seed: u64,
    ) -> Vec<TieredResult> {
        let budget = tier.resolve(|| self.estimated_cost(k));
        match budget {
            None => self
                .run_batch(algorithm, focals, k)
                .into_iter()
                .map(TieredResult::Exact)
                .collect(),
            Some(budget) => self
                .run_approx_batch(focals, k, &budget, seed)
                .into_iter()
                .map(TieredResult::Approximate)
                .collect(),
        }
    }

    /// The pass-through engine of the `shards = 1` configuration, if any.
    fn single_shard_engine(&self) -> Option<&QueryEngine> {
        match &self.shards[..] {
            [only] => only.engine.as_ref(),
            _ => None,
        }
    }

    /// The result of a query against zero live records: the focal record is
    /// trivially top-1 everywhere.
    fn no_competitor_result(&self, focal: &[f64]) -> KsprResult {
        let space = PreferenceSpace::new(focal.len(), self.config.space);
        let mut result = KsprResult::whole_space(space, 1, QueryStats::new());
        if self.config.finalize {
            result.finalize();
        }
        result
    }

    /// Fetches (or builds) the merged candidate engine for rank threshold
    /// `k`: the union of the per-shard k-skybands, deduplicated by global id
    /// and indexed as a fresh dataset.  Returns `None` when no shard holds a
    /// live record.  Cached until any shard's epoch moves.
    fn merged_engine(&self, k: usize) -> Option<Arc<QueryEngine>> {
        let epochs: Vec<Option<u64>> = self
            .shards
            .iter()
            .map(|s| s.engine.as_ref().map(|e| e.store().epoch()))
            .collect();
        // Poison recovery mirrors the engine's prep cache: the merged engines
        // are rebuildable, so a panicking query must not lock serving up.
        let mut cache = self.merged.lock().unwrap_or_else(PoisonError::into_inner);
        if cache.epochs != epochs {
            cache.engines.clear();
            cache.epochs = epochs;
        }
        if let Some(engine) = cache.engines.get(&k) {
            return Some(Arc::clone(engine));
        }
        // An engine built for a larger k serves k as well: its candidate set
        // is a *superset* of the k-union, and the witness argument (module
        // docs) only needs every excluded record to keep >= k dominators
        // among the candidates — which it has, since exclusion from a
        // k'-band (k' > k) already implies >= k' >= k in-band dominators.
        // Pick the tightest such engine to keep the candidate set small.
        if let Some((_, engine)) = cache
            .engines
            .iter()
            .filter(|(&cached_k, _)| cached_k > k)
            .min_by_key(|(&cached_k, _)| cached_k)
        {
            return Some(Arc::clone(engine));
        }

        // Fan out: every shard contributes its (cached, incrementally
        // patched) k-skyband, translated to global ids.
        let mut members: Vec<(RecordId, Vec<f64>)> = self
            .shards
            .par_iter()
            .map(|shard| {
                let Some(engine) = &shard.engine else {
                    return Vec::new();
                };
                if engine.dataset().is_empty() {
                    return Vec::new();
                }
                engine
                    .shared_prep_for(k)
                    .skyband()
                    .iter()
                    .map(|&local| {
                        (
                            shard.globals[local],
                            engine.dataset().values(local).to_vec(),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flatten()
            .collect();
        if members.is_empty() {
            return None;
        }
        // Global id order keeps the candidate dataset deterministic no matter
        // how records are spread over shards.
        members.sort_by_key(|&(global, _)| global);
        let raw: Vec<Vec<f64>> = members.into_iter().map(|(_, values)| values).collect();
        let engine = Arc::new(QueryEngine::new(&Dataset::new(raw), self.config.clone()));
        if cache.engines.len() >= self.config.merged_cache_cap {
            // Evict only the largest cached k — it holds the biggest
            // candidate set — and keep the other hot entries warm (a full
            // clear would force every k to rebuild on its next query).  The
            // cap is [`KsprConfig::merged_cache_cap`].
            if let Some(&evict) = cache.engines.keys().max() {
                cache.engines.remove(&evict);
            }
        }
        cache.engines.insert(k, Arc::clone(&engine));
        Some(engine)
    }
}

/// The sharded engine drives the standing-query monitor exactly like a
/// single [`QueryEngine`]: queries run through the (result-preserving)
/// merged candidate engine, and the dominance-delta probe fans out over the
/// per-shard R-trees.
impl kspr_monitor::MonitorEngine for ShardedEngine {
    fn dim(&self) -> usize {
        ShardedEngine::dim(self)
    }

    fn run_query(&self, algorithm: Algorithm, focal: &[f64], k: usize) -> KsprResult {
        self.run(algorithm, focal, k)
    }

    fn count_dominating(&self, values: &[f64], limit: usize) -> usize {
        ShardedEngine::count_dominating(self, values, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr::naive;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_raw(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(0.01..0.99)).collect())
            .collect()
    }

    /// Sharded and single-engine results must agree: same region count and
    /// the same classification of sampled preference vectors.
    fn assert_equivalent(sharded: &KsprResult, single: &KsprResult, ctx: &str) {
        assert_eq!(sharded.num_regions(), single.num_regions(), "{ctx}");
        for w in naive::sample_weights(&single.space, 32, 99) {
            assert_eq!(sharded.contains(&w), single.contains(&w), "{ctx} at {w:?}");
        }
    }

    #[test]
    fn sharded_matches_single_engine_for_both_strategies() {
        let raw = random_raw(120, 3, 5);
        let k = 3;
        let single = QueryEngine::new(&Dataset::new(raw.clone()), KsprConfig::default());
        let focals = vec![
            raw[7].clone(),
            raw[41].clone(),
            vec![0.95, 0.95, 0.95],
            vec![0.02, 0.02, 0.02],
        ];
        for strategy in [ShardStrategy::RoundRobin, ShardStrategy::Subtrees] {
            for shards in [2, 3, 4] {
                let sharded = ShardedEngine::with_strategy(
                    raw.clone(),
                    KsprConfig::default().with_shards(shards),
                    strategy,
                );
                for alg in [
                    Algorithm::Cta,
                    Algorithm::Pcta,
                    Algorithm::LpCta,
                    Algorithm::KSkyband,
                ] {
                    let batch = sharded.run_batch(alg, &focals, k);
                    for (focal, got) in focals.iter().zip(&batch) {
                        let want = single.run(alg, focal, k);
                        assert_equivalent(got, &want, &format!("{strategy:?} S={shards} {alg:?}"));
                    }
                }
            }
        }
    }

    #[test]
    fn merged_candidates_is_a_small_union_of_shard_bands() {
        let raw = random_raw(400, 3, 9);
        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(4));
        let k = 4;
        let candidates = sharded.merged_candidates(k);
        assert!(candidates > 0);
        assert!(
            candidates < raw.len() / 2,
            "the candidate union ({candidates}) must prune most of n={}",
            raw.len()
        );
        // The union contains the dataset-level band (the merge's correctness
        // backbone: every global band member is in its shard's band).
        let single = QueryEngine::new(&Dataset::new(raw), KsprConfig::default());
        assert!(candidates >= single.shared_prep_for(k).skyband().len());
    }

    #[test]
    fn merged_cache_reuses_larger_k_and_stays_bounded() {
        let raw = random_raw(100, 3, 17);
        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(3));
        let single = QueryEngine::new(&Dataset::new(raw), KsprConfig::default());
        let focal = vec![0.7, 0.7, 0.7];
        // Query a large k first; every smaller k is then served from the same
        // candidate engine (a superset of its own union) — results must still
        // match the single engine exactly.
        let _ = sharded.run(Algorithm::LpCta, &focal, 4);
        assert_eq!(sharded.merged.lock().unwrap().engines.len(), 1);
        for k in 1..=4 {
            assert_equivalent(
                &sharded.run(Algorithm::LpCta, &focal, k),
                &single.run(Algorithm::LpCta, &focal, k),
                &format!("k={k} via larger-k candidate engine"),
            );
        }
        assert_eq!(
            sharded.merged.lock().unwrap().engines.len(),
            1,
            "k' <= k must reuse the cached engine, not build new ones"
        );
        // A sweep over many distinct (ascending) k values stays bounded by
        // the configured cap.  Queries through merged_candidates only
        // exercise the cache, not a full query, which keeps this cheap.
        let cap = sharded.config().merged_cache_cap;
        for k in 5..=(2 * cap) {
            let _ = sharded.merged_candidates(k);
        }
        assert!(
            sharded.merged.lock().unwrap().engines.len() <= cap,
            "client-supplied k must not grow the merged cache without bound"
        );
    }

    /// Cached k values of the merged candidate cache, sorted.
    fn cached_ks(sharded: &ShardedEngine) -> Vec<usize> {
        let mut ks: Vec<usize> = sharded
            .merged
            .lock()
            .unwrap()
            .engines
            .keys()
            .copied()
            .collect();
        ks.sort_unstable();
        ks
    }

    #[test]
    fn merged_cache_cap_is_configurable_and_evicts_largest_first() {
        let raw = random_raw(80, 3, 19);
        let sharded = ShardedEngine::new(
            raw,
            KsprConfig::default()
                .with_shards(3)
                .with_merged_cache_cap(3),
        );
        for k in [2, 3, 4] {
            let _ = sharded.merged_candidates(k);
        }
        assert_eq!(cached_ks(&sharded), vec![2, 3, 4]);
        // A fourth distinct k evicts the largest cached k (the biggest
        // candidate set), never the small hot entries.
        let _ = sharded.merged_candidates(5);
        assert_eq!(cached_ks(&sharded), vec![2, 3, 5], "k=4 must be evicted");
        let _ = sharded.merged_candidates(10);
        assert_eq!(cached_ks(&sharded), vec![2, 3, 10], "k=5 must be evicted");
        // A k below a cached larger k reuses the superset engine: no build,
        // no eviction.
        let _ = sharded.merged_candidates(4);
        assert_eq!(cached_ks(&sharded), vec![2, 3, 10]);
    }

    #[test]
    fn approx_batch_pools_the_full_sample_budget() {
        use kspr::ErrorBudget;
        let raw = random_raw(200, 3, 41);
        let budget = ErrorBudget::new(0.08, 0.9);
        // raw values lie in (0.01, 0.99): the second focal dominates every
        // record, the third is dominated by all of them.
        let focals = vec![raw[7].clone(), vec![0.995; 3], vec![0.005; 3]];
        for shards in [1usize, 2, 4] {
            let sharded =
                ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(shards));
            let estimates = sharded.run_approx_batch(&focals, 4, &budget, 31);
            assert_eq!(estimates.len(), focals.len());
            for est in &estimates {
                assert_eq!(
                    est.samples,
                    budget.samples(),
                    "pooled sample count must meet the budget at {shards} shards"
                );
                assert!(est.half_width <= budget.epsilon + 1e-12);
                assert!((0.0..=1.0).contains(&est.impact));
            }
            // Deterministic per seed.
            let again = sharded.run_approx_batch(&focals, 4, &budget, 31);
            for (a, b) in estimates.iter().zip(&again) {
                assert_eq!(a.impact, b.impact);
            }
            // A dominated focal has impact ~0; an unbeatable one ~1.
            assert_eq!(estimates[1].impact, 1.0, "dominator of everything");
            assert_eq!(estimates[2].impact, 0.0, "dominated by everything");
        }
    }

    #[test]
    fn single_shard_approx_matches_the_plain_sampler_bit_for_bit() {
        use kspr::ErrorBudget;
        use kspr_approx::ApproxEngine;
        let raw = random_raw(150, 3, 43);
        let budget = ErrorBudget::new(0.1, 0.9);
        let focals = vec![raw[3].clone(), raw[60].clone()];
        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default());
        let single = QueryEngine::new(&Dataset::new(raw), KsprConfig::default());
        let want = ApproxEngine::from_engine(&single, 5).estimate_batch(&focals, &budget, 77);
        let got = sharded.run_approx_batch(&focals, 5, &budget, 77);
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.impact, b.impact, "shards=1 must be a passthrough");
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn sharded_approx_interval_covers_the_exact_impact() {
        use kspr::ErrorBudget;
        let raw = random_raw(250, 3, 47);
        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(3));
        let single = QueryEngine::new(&Dataset::new(raw.clone()), KsprConfig::default());
        let k = 5;
        let focals = vec![raw[11].clone(), raw[101].clone()];
        let estimates = sharded.run_approx_batch(&focals, k, &ErrorBudget::new(0.05, 0.99), 53);
        for (focal, est) in focals.iter().zip(&estimates) {
            let exact = single.run(Algorithm::LpCta, focal, k);
            // d = 3 => 2 working dimensions: polygon areas are exact.
            let truth = exact.total_volume(0, 0) / exact.space.volume();
            assert!(
                est.covers(truth),
                "interval [{}, {}] misses exact impact {truth}",
                est.lower(),
                est.upper()
            );
        }
    }

    #[test]
    fn multi_shard_approx_samples_the_configured_space() {
        use kspr::ErrorBudget;
        // One competitor (0.9, 0.1) against focal (0.6, 0.6): the focal
        // record is top-1 iff w1 < 0.625.  Under the transformed space
        // (w1 uniform on (0, 1)) the impact is 0.625; under the original
        // space (w = w1/(w1+w2) for a uniform unit square) it is
        // P(w1 < (5/3)·w2) = 0.7.  A sampler drawing from the wrong space
        // lands ~0.075 away — outside an epsilon = 0.02 interval.
        let raw = vec![vec![0.9, 0.1], vec![0.2, 0.1], vec![0.1, 0.15]];
        let focal = vec![0.6, 0.6];
        let budget = ErrorBudget::new(0.02, 0.99);
        for shards in [1usize, 2, 3] {
            let transformed =
                ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(shards));
            let est = transformed
                .run_approx_batch(std::slice::from_ref(&focal), 1, &budget, 5)
                .pop()
                .unwrap();
            assert!(
                est.covers(0.625),
                "{shards} shards, transformed: [{}, {}] misses 0.625",
                est.lower(),
                est.upper()
            );
            let original = ShardedEngine::new(
                raw.clone(),
                KsprConfig::original_space().with_shards(shards),
            );
            let est = original
                .run_approx_batch(std::slice::from_ref(&focal), 1, &budget, 5)
                .pop()
                .unwrap();
            assert!(
                est.covers(0.7),
                "{shards} shards, original space: [{}, {}] misses 0.7",
                est.lower(),
                est.upper()
            );
        }
    }

    #[test]
    fn approx_batch_on_an_empty_pool_reports_certain_impact_one() {
        use kspr::ErrorBudget;
        let mut sharded = ShardedEngine::empty(2, KsprConfig::default().with_shards(2));
        let budget = ErrorBudget::new(0.1, 0.9);
        let est = sharded
            .run_approx_batch(&[vec![0.5, 0.5]], 1, &budget, 3)
            .pop()
            .unwrap();
        assert_eq!(est.impact, 1.0);
        // Populate and empty again: still served.
        let id = sharded.insert(vec![0.9, 0.9]);
        let est = sharded
            .run_approx_batch(&[vec![0.5, 0.5]], 1, &budget, 3)
            .pop()
            .unwrap();
        assert_eq!(est.impact, 0.0, "a live dominator ends every top-1 hope");
        assert!(sharded.delete(id));
        let est = sharded
            .run_approx_batch(&[vec![0.5, 0.5]], 1, &budget, 3)
            .pop()
            .unwrap();
        assert_eq!(est.impact, 1.0);
    }

    #[test]
    fn sample_allocation_is_proportional_and_complete() {
        let raw = random_raw(90, 3, 59);
        let mut sharded = ShardedEngine::new(raw, KsprConfig::default().with_shards(3));
        // Skew the shards: delete most of shard 0's records (global ids
        // 0, 3, 6, ... under round-robin).
        for id in (0..60).step_by(3) {
            assert!(sharded.delete(id));
        }
        let total = 1_000;
        let allocation = sharded.allocate_samples(total);
        let sizes = sharded.shard_sizes();
        let live_total: usize = sizes.iter().sum();
        assert_eq!(
            allocation.iter().map(|&(_, n)| n).sum::<usize>(),
            total,
            "every sample must be allocated"
        );
        for &(shard, n) in &allocation {
            let expected = total as f64 * sizes[shard] as f64 / live_total as f64;
            assert!(
                (n as f64 - expected).abs() <= allocation.len() as f64,
                "shard {shard}: allocated {n}, proportional share {expected}"
            );
        }
    }

    #[test]
    fn tiered_batch_routes_per_tier() {
        use kspr::{ErrorBudget, QueryTier};
        let raw = random_raw(120, 3, 61);
        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(2));
        let focals = vec![raw[5].clone()];
        let k = 3;
        let budget = ErrorBudget::new(0.1, 0.9);

        let exact = sharded.run_tiered_batch(Algorithm::LpCta, &focals, k, QueryTier::Exact, 1);
        assert!(exact[0].is_exact());
        assert_eq!(
            exact[0].as_exact().unwrap().num_regions(),
            sharded.run(Algorithm::LpCta, &focals[0], k).num_regions()
        );

        let approx = sharded.run_tiered_batch(
            Algorithm::LpCta,
            &focals,
            k,
            QueryTier::approximate(budget),
            1,
        );
        assert!(!approx[0].is_exact());

        // Auto: extreme thresholds force each side, and the cost estimate
        // grows with k.
        assert!(sharded.auto_routes_exact(k, f64::INFINITY));
        assert!(!sharded.auto_routes_exact(k, 0.0));
        assert!(sharded.estimated_cost(2) <= sharded.estimated_cost(8));
        for (threshold, expect_exact) in [(f64::INFINITY, true), (0.0, false)] {
            let routed = sharded.run_tiered_batch(
                Algorithm::LpCta,
                &focals,
                k,
                QueryTier::Auto {
                    budget,
                    cost_threshold: threshold,
                },
                1,
            );
            assert_eq!(routed[0].is_exact(), expect_exact);
        }
    }

    #[test]
    fn updates_route_to_owning_shards_and_invalidate_the_merge() {
        let raw = random_raw(60, 3, 11);
        let mut sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(3));
        let mut mirror = raw;
        let focal = vec![0.6, 0.6, 0.6];
        let k = 3;

        let id = sharded.insert(vec![0.97, 0.96, 0.95]);
        assert_eq!(id, mirror.len());
        mirror.push(vec![0.97, 0.96, 0.95]);
        let single = QueryEngine::new(&Dataset::new(mirror.clone()), KsprConfig::default());
        assert_equivalent(
            &sharded.run(Algorithm::LpCta, &focal, k),
            &single.run(Algorithm::LpCta, &focal, k),
            "after insert",
        );

        assert!(sharded.delete(id));
        assert!(!sharded.delete(id), "double delete must fail");
        assert!(!sharded.delete(9_999), "unknown id must fail");
        mirror.pop();
        let single = QueryEngine::new(&Dataset::new(mirror), KsprConfig::default());
        assert_equivalent(
            &sharded.run(Algorithm::LpCta, &focal, k),
            &single.run(Algorithm::LpCta, &focal, k),
            "after delete",
        );
        assert_eq!(sharded.len(), 60);
        assert_eq!(sharded.shard_sizes().iter().sum::<usize>(), 60);
    }

    #[test]
    fn delete_returning_routes_to_the_owning_shard() {
        let raw = random_raw(30, 3, 21);
        let mut sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(3));
        assert_eq!(sharded.delete_returning(7), Some(raw[7].clone()));
        assert_eq!(sharded.delete_returning(7), None, "double delete");
        assert_eq!(sharded.delete_returning(999), None, "unknown id");
        let id = sharded.insert(vec![0.5, 0.5, 0.5]);
        assert_eq!(sharded.delete_returning(id), Some(vec![0.5, 0.5, 0.5]));
        assert_eq!(sharded.len(), 29, "30 initial - 2 deletes + 1 insert");
    }

    #[test]
    fn count_dominating_sums_over_shards() {
        let raw = random_raw(150, 3, 23);
        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(4));
        let probe = vec![0.4, 0.4, 0.4];
        let expected = raw
            .iter()
            .filter(|r| kspr_spatial::dominates(r, &probe))
            .count();
        assert_eq!(sharded.count_dominating(&probe, usize::MAX), expected);
        assert!(expected > 2, "probe must be dominated in this workload");
        assert!(sharded.count_dominating(&probe, 2) >= 2);
        assert_eq!(sharded.count_dominating(&probe, 0), 0);
    }

    #[test]
    fn tombstone_stats_aggregate_over_shards() {
        let raw = random_raw(20, 2, 25);
        let mut sharded = ShardedEngine::new(raw, KsprConfig::default().with_shards(3));
        assert_eq!(sharded.tombstone_count(), 0);
        assert_eq!(sharded.tombstone_ratio(), 0.0);
        for id in 0..10 {
            assert!(sharded.delete(id));
        }
        assert_eq!(sharded.tombstone_count(), 10);
        assert!((sharded.tombstone_ratio() - 0.5).abs() < 1e-12);
        // The empty engine reports 0.0 rather than dividing by zero.
        let empty = ShardedEngine::empty(2, KsprConfig::default().with_shards(2));
        assert_eq!(empty.tombstone_ratio(), 0.0);
    }

    #[test]
    fn compaction_drops_tombstones_and_preserves_surviving_ids() {
        let raw = random_raw(60, 3, 33);
        let mut sharded = ShardedEngine::new(raw.clone(), KsprConfig::default().with_shards(3));
        assert_eq!(sharded.compact(), 0, "nothing to reclaim yet");
        for id in 0..40 {
            assert!(sharded.delete(id));
        }
        assert!(sharded.tombstone_ratio() > 0.5);
        // Warm the merged cache so compaction must invalidate it rather than
        // serve a pre-compaction snapshot from a colliding epoch.
        let focal = vec![0.6, 0.6, 0.6];
        let before = sharded.run(Algorithm::LpCta, &focal, 3);

        assert_eq!(sharded.compact(), 40);
        assert_eq!(sharded.tombstone_count(), 0);
        assert_eq!(sharded.tombstone_ratio(), 0.0);
        assert_eq!(sharded.len(), 20);

        // No live record changed, so results are untouched.
        let after = sharded.run(Algorithm::LpCta, &focal, 3);
        assert_eq!(before.num_regions(), after.num_regions());
        assert_eq!(before.rank_signature(), after.rank_signature());
        let single = QueryEngine::new(&Dataset::new(raw[40..].to_vec()), KsprConfig::default());
        assert_equivalent(
            &after,
            &single.run(Algorithm::LpCta, &focal, 3),
            "post-compaction",
        );

        // Surviving global ids still route to their records...
        assert_eq!(sharded.delete_returning(47), Some(raw[47].clone()));
        // ...compacted-away ids stay dead...
        assert_eq!(sharded.delete_returning(3), None);
        assert!(!sharded.delete(3));
        // ...and fresh inserts keep extending the never-reused id space.
        assert_eq!(sharded.insert(vec![0.5, 0.5, 0.5]), 60);
        assert_eq!(sharded.len(), 20, "60 - 40 compacted - 1 delete + 1 insert");
    }

    #[test]
    fn single_shard_is_a_passthrough() {
        let raw = random_raw(40, 3, 13);
        let sharded = ShardedEngine::new(raw.clone(), KsprConfig::default());
        assert_eq!(sharded.num_shards(), 1);
        let single = QueryEngine::new(&Dataset::new(raw.clone()), KsprConfig::default());
        let focal = raw[11].clone();
        for alg in [Algorithm::Cta, Algorithm::LpCta] {
            let a = sharded.run(alg, &focal, 3);
            let b = single.run(alg, &focal, 3);
            // Bit-for-bit identical execution, not just equivalent results.
            assert_eq!(a.num_regions(), b.num_regions());
            assert_eq!(a.stats.processed_records, b.stats.processed_records);
            assert_eq!(a.stats.celltree_nodes, b.stats.celltree_nodes);
        }
    }

    #[test]
    fn empty_engine_and_emptied_shards_answer_whole_space() {
        let mut sharded = ShardedEngine::empty(2, KsprConfig::default().with_shards(2));
        assert!(sharded.is_empty());
        let result = sharded.run(Algorithm::LpCta, &[0.5, 0.5], 2);
        assert_eq!(result.num_regions(), 1);
        assert!(result.contains_full_weight(&[0.5, 0.5]));

        // Populate, then delete everything again: still serving.  (With one
        // of the two records beating the focal record on either side of
        // w = 0.5, top-1 is unreachable but top-2 always holds.)
        let a = sharded.insert(vec![0.9, 0.1]);
        let b = sharded.insert(vec![0.1, 0.9]);
        assert_eq!(
            sharded.run(Algorithm::LpCta, &[0.5, 0.5], 1).num_regions(),
            0
        );
        assert!(sharded.run(Algorithm::LpCta, &[0.5, 0.5], 2).num_regions() >= 1);
        assert!(sharded.delete(a));
        assert!(sharded.delete(b));
        assert!(sharded.is_empty());
        let result = sharded.run(Algorithm::LpCta, &[0.5, 0.5], 1);
        assert_eq!(result.num_regions(), 1, "no competitor left: whole space");
    }

    #[test]
    #[should_panic(expected = "non-finite attribute value")]
    fn insert_rejects_non_finite_values() {
        let mut sharded = ShardedEngine::empty(2, KsprConfig::default().with_shards(2));
        sharded.insert(vec![0.5, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn run_rejects_zero_k() {
        let sharded = ShardedEngine::new(vec![vec![0.4, 0.6]], KsprConfig::default());
        sharded.run(Algorithm::LpCta, &[0.5, 0.5], 0);
    }
}
