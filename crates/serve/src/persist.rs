//! The durability layer: WAL appends while serving, snapshots at epoch
//! boundaries, and crash recovery.
//!
//! While a durable server runs, the dispatcher routes every applied update
//! through [`Persist`]: records are staged per update, committed (one
//! write + fsync) per drained batch *before* the batch's tickets are
//! acknowledged, so an acknowledged update is always replayable.  After a
//! compaction — which renumbers nothing but drops slots the WAL's ids
//! refer to — and at clean shutdown the dispatcher installs a fresh epoch
//! snapshot, truncating the WAL.
//!
//! [`recover_state`] inverts the pipeline: snapshot → engine via
//! [`ShardedEngine::from_slots`], then WAL replay.  Replayed inserts assert
//! the rebuilt engine assigns the logged id (any divergence means the
//! snapshot/WAL pair is inconsistent and is reported, never papered over),
//! and standing queries are re-registered *after* the dataset replay so
//! their maintained results equal fresh re-runs — the bit-identical
//! recovery guarantee.

use crate::ShardedEngine;
use kspr::KsprConfig;
use kspr_durable::{DurableError, DurableStore, Registration, SnapshotState, WalRecord, WalWriter};
use kspr_monitor::Monitor;
use std::collections::BTreeMap;

/// The dispatcher's handle on the durable directory: a store plus its open
/// WAL writer.
pub(crate) struct Persist {
    store: DurableStore,
    writer: WalWriter,
    sync: bool,
}

impl Persist {
    /// Opens the WAL writer over `store`.
    pub(crate) fn open(store: DurableStore, sync: bool) -> std::io::Result<Self> {
        let writer = store.wal_writer(sync)?;
        Ok(Self {
            store,
            writer,
            sync,
        })
    }

    /// Stages one record for the next commit.
    pub(crate) fn append(&mut self, record: &WalRecord) {
        self.writer.append(record);
    }

    /// Commits (write + fsync) everything staged.  A no-op when nothing is
    /// staged.
    pub(crate) fn commit(&mut self) -> std::io::Result<()> {
        self.writer.commit()
    }

    /// Bytes of WAL committed since the current epoch's snapshot (telemetry:
    /// the `kspr_wal_bytes` gauge).
    pub(crate) fn wal_bytes(&self) -> u64 {
        self.writer.bytes()
    }

    /// Duration of the most recent [`Persist::commit`], nanoseconds.
    pub(crate) fn last_commit_nanos(&self) -> u64 {
        self.writer.last_commit_nanos()
    }

    /// Whether commits fsync (telemetry: the `kspr_wal_fsyncs` counter only
    /// counts synced commits).
    pub(crate) fn synced(&self) -> bool {
        self.sync
    }

    /// The store's current snapshot epoch (telemetry: the
    /// `kspr_snapshot_epoch` gauge).
    pub(crate) fn snapshot_epoch(&self) -> u64 {
        self.store.snapshot_epoch()
    }

    /// Installs `state` as the new epoch snapshot and truncates the WAL.
    ///
    /// Truncation reuses the WAL path with a fresh file, which invalidates
    /// this writer's append offset — so the writer is reopened afterwards.
    /// Only called from a quiesced point (no staged records), which the
    /// reopen would otherwise silently discard.
    pub(crate) fn install(&mut self, state: &SnapshotState) -> std::io::Result<()> {
        self.store.install_snapshot(state)?;
        self.writer = self.store.wal_writer(self.sync)?;
        Ok(())
    }
}

/// Captures the engine's and the registry's logical state as a snapshot.
pub(crate) fn snapshot_of(engine: &ShardedEngine, monitor: &Monitor) -> SnapshotState {
    SnapshotState {
        dim: engine.dim(),
        num_shards: engine.num_shards(),
        next_shard: engine.routing_cursor(),
        shard_epochs: engine.export_epochs(),
        slots: engine.export_slots(),
        monitor_next_id: monitor.next_id(),
        registrations: monitor
            .queries()
            .map(|(id, query)| Registration {
                id,
                algorithm: query.algorithm(),
                focal: query.focal().to_vec(),
                k: query.k(),
            })
            .collect(),
    }
}

/// Why [`crate::Server::recover`] failed.
#[derive(Debug)]
pub enum RecoverError {
    /// The durable directory is unreadable, missing its snapshot, or holds a
    /// corrupt snapshot.
    Durable(DurableError),
    /// Snapshot + WAL replay diverged from the logged history (e.g. a
    /// replayed insert was assigned a different id, or a logged standing
    /// query no longer registers).  The directory does not describe a state
    /// this engine can reach, so recovery refuses to serve from it.
    Diverged(&'static str),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Durable(err) => write!(f, "durable state unreadable: {err}"),
            RecoverError::Diverged(what) => {
                write!(f, "snapshot + WAL replay diverged: {what}")
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Durable(err) => Some(err),
            RecoverError::Diverged(_) => None,
        }
    }
}

impl From<DurableError> for RecoverError {
    fn from(err: DurableError) -> Self {
        RecoverError::Durable(err)
    }
}

impl From<std::io::Error> for RecoverError {
    fn from(err: std::io::Error) -> Self {
        RecoverError::Durable(DurableError::Io(err))
    }
}

/// Rebuilds the engine and the standing-query registry from `store`'s
/// snapshot plus its committed WAL tail.
pub(crate) fn recover_state(
    store: &DurableStore,
    config: KsprConfig,
) -> Result<(ShardedEngine, Monitor), RecoverError> {
    let recovered = store.load()?;
    let Some(snapshot) = recovered.snapshot else {
        return Err(DurableError::MissingSnapshot(store.snapshot_path()).into());
    };
    let mut engine = ShardedEngine::from_slots(
        snapshot.dim,
        config,
        snapshot.num_shards,
        snapshot.next_shard,
        &snapshot.shard_epochs,
        &snapshot.slots,
    );

    // Dataset replay first; registrations are collected and registered once
    // the record set is final, so every standing query's maintained result
    // is computed against exactly the recovered dataset (bit-identical to a
    // fresh re-run — the engines are deterministic functions of the live
    // record set).
    let mut registrations: BTreeMap<u64, Registration> = snapshot
        .registrations
        .into_iter()
        .map(|reg| (reg.id, reg))
        .collect();
    let mut next_id = snapshot.monitor_next_id;
    for record in recovered.wal {
        match record {
            WalRecord::Insert { id, values } => {
                if engine.insert(values) != id {
                    return Err(RecoverError::Diverged(
                        "a replayed insert was assigned a different id",
                    ));
                }
            }
            WalRecord::Delete { id } => {
                if engine.delete_returning(id).is_none() {
                    return Err(RecoverError::Diverged(
                        "a replayed delete named a record that does not exist",
                    ));
                }
            }
            WalRecord::Subscribe {
                id,
                algorithm,
                focal,
                k,
            } => {
                next_id = next_id.max(id + 1);
                registrations.insert(
                    id,
                    Registration {
                        id,
                        algorithm,
                        focal,
                        k,
                    },
                );
            }
            WalRecord::Unsubscribe { id } => {
                if registrations.remove(&id).is_none() {
                    return Err(RecoverError::Diverged(
                        "a replayed unsubscribe named an unknown standing query",
                    ));
                }
            }
        }
    }

    let mut monitor = Monitor::new();
    for (id, reg) in registrations {
        monitor
            .register_at(&engine, id, reg.algorithm, reg.focal, reg.k)
            .map_err(|_| RecoverError::Diverged("a logged standing query no longer registers"))?;
    }
    monitor.restore_next_id(next_id);
    Ok((engine, monitor))
}
