//! Request-level errors and the [`Ticket`] future the serving layers
//! resolve.

use kspr_monitor::RegisterError;
use std::sync::mpsc;

/// Why a request was rejected (or lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `k` must be at least 1.
    InvalidK,
    /// The focal record / inserted record does not match the dataset arity.
    ArityMismatch {
        /// The dataset arity.
        expected: usize,
        /// The request's arity.
        got: usize,
    },
    /// The request contains a NaN or infinite value.
    NonFinite,
    /// The request's [`kspr::ErrorBudget`] is malformed (`epsilon` /
    /// `confidence` outside `(0, 1)`) or finer than the server is willing to
    /// sample for (its Hoeffding sample count exceeds
    /// [`crate::MAX_APPROX_SAMPLES`]).
    InvalidBudget,
    /// The requested algorithm cannot run on this dataset (RTOPK is
    /// 2-dimensional only).
    UnsupportedAlgorithm,
    /// The query panicked inside the engine; the server recovered and keeps
    /// serving (the engine caches rebuild themselves after a poisoning).
    QueryFailed,
    /// An update panicked inside the engine (or its WAL commit failed).
    /// Unlike queries, a half-applied update is not rebuildable in place, so
    /// the server stops serving (subsequent tickets resolve
    /// [`ServeError::ServerClosed`] and [`crate::Server::shutdown`] returns
    /// normally) rather than risk corrupt answers.
    UpdateFailed,
    /// Admission control rejected the query: the pending queue was past its
    /// hard depth limit when the request arrived (see
    /// [`crate::AdmissionOptions::hard_limit`]).
    Overloaded,
    /// Admission control rejected the query: this client already had its
    /// full quota of queries in flight (see
    /// [`crate::AdmissionOptions::client_quota`]).
    QuotaExceeded,
    /// The request was still pending when [`crate::Server::shutdown`] ran;
    /// the dispatcher drained and explicitly resolved it instead of letting
    /// the ticket observe a dead channel.
    Shutdown,
    /// The server shut down before (or while) answering.
    ServerClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidK => write!(f, "k must be at least 1"),
            ServeError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: got {got} attributes, dataset has {expected}"
                )
            }
            ServeError::NonFinite => write!(f, "values must be finite"),
            ServeError::InvalidBudget => {
                write!(
                    f,
                    "the error budget is malformed or finer than the server samples for"
                )
            }
            ServeError::UnsupportedAlgorithm => {
                write!(f, "the algorithm does not support this dataset's arity")
            }
            ServeError::QueryFailed => write!(f, "the query panicked inside the engine"),
            ServeError::UpdateFailed => {
                write!(
                    f,
                    "an update failed to apply or persist; the server stopped"
                )
            }
            ServeError::Overloaded => {
                write!(f, "the server's pending queue is past its hard limit")
            }
            ServeError::QuotaExceeded => {
                write!(f, "this client's in-flight query quota is exhausted")
            }
            ServeError::Shutdown => {
                write!(f, "the server shut down with this request still pending")
            }
            ServeError::ServerClosed => write!(f, "the server has shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A pending response: resolves once the dispatcher has processed the
/// request.  Dropping a ticket discards the response.
pub struct Ticket<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> Ticket<T> {
    pub(crate) fn new() -> (mpsc::Sender<Result<T, ServeError>>, Self) {
        let (tx, rx) = mpsc::channel();
        (tx, Ticket { rx })
    }

    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ServerClosed))
    }
}

/// Maps a core ingest violation to the request-level error.
pub(crate) fn ingest_error(err: kspr::IngestError) -> ServeError {
    match err {
        // Unreachable here (the engine arity is always >= 1, so an empty row
        // surfaces as an arity mismatch first), kept for exhaustiveness.
        kspr::IngestError::Empty => ServeError::ArityMismatch {
            expected: 0,
            got: 0,
        },
        kspr::IngestError::ArityMismatch { expected, got } => {
            ServeError::ArityMismatch { expected, got }
        }
        kspr::IngestError::NonFinite { .. } => ServeError::NonFinite,
    }
}

/// Maps a standing-query registration failure to the request-level error.
pub(crate) fn register_error(err: RegisterError) -> ServeError {
    match err {
        RegisterError::InvalidK => ServeError::InvalidK,
        RegisterError::Focal(err) => ingest_error(err),
        RegisterError::UnsupportedAlgorithm => ServeError::UnsupportedAlgorithm,
        // Client registrations always allocate fresh ids; a duplicate can
        // only come from the recovery path, which reports it before a
        // server ever starts.
        RegisterError::DuplicateId => ServeError::QueryFailed,
    }
}
