//! The dispatch core: one thread owning the engine, draining the request
//! queue, and orchestrating the other layers.
//!
//! The loop itself stays small — it only decides *order*: updates apply in
//! arrival order, consecutive queries batch (see the `batch` module),
//! standing-query maintenance runs once per drained update batch, and the
//! durability hooks (see the `persist` module) commit every applied update
//! to the WAL *before* its ticket is acknowledged.  At shutdown every
//! request still queued is drained and resolved with
//! [`ServeError::Shutdown`] instead of left to observe a dead channel.

use crate::batch::{run_jobs, validate_budget, validate_insert, QueryJob};
use crate::error::{ingest_error, register_error, ServeError};
use crate::persist::{snapshot_of, Persist};
use crate::stats::ServeStats;
use crate::subscription::{ApproxDelta, ApproxStanding, ApproxWatchId, DeltaPush, DeltaQueue};
use crate::telemetry::{LiveStats, ServeMetrics};
use crate::ShardedEngine;
use kspr::{Algorithm, ApproxImpact, ErrorBudget, KsprResult, RecordId};
use kspr_durable::WalRecord;
use kspr_monitor::{update_preserves_impact, Monitor, QueryId, ResultDelta, UpdateKind};
use kspr_telemetry::{RequestTrace, Stage};
use std::collections::{HashMap, VecDeque};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// The request-queue protocol between [`crate::ServeHandle`]s and the
/// dispatcher.
pub(crate) enum Msg {
    Query(QueryJob),
    Batch(Vec<QueryJob>),
    Insert {
        values: Vec<f64>,
        tx: mpsc::Sender<Result<RecordId, ServeError>>,
        trace: RequestTrace,
    },
    Delete {
        id: RecordId,
        tx: mpsc::Sender<Result<bool, ServeError>>,
        trace: RequestTrace,
    },
    Subscribe {
        algorithm: Algorithm,
        focal: Vec<f64>,
        k: usize,
        deltas: Arc<DeltaQueue>,
        tx: mpsc::Sender<Result<(QueryId, KsprResult), ServeError>>,
    },
    Unsubscribe {
        id: QueryId,
        /// `None` for the fire-and-forget unsubscribe of `Subscription::drop`.
        tx: Option<mpsc::Sender<Result<bool, ServeError>>>,
    },
    Subscriptions {
        tx: mpsc::Sender<Result<usize, ServeError>>,
    },
    SubscribeApprox {
        focal: Vec<f64>,
        k: usize,
        budget: ErrorBudget,
        deltas: mpsc::Sender<ApproxDelta>,
        tx: mpsc::Sender<Result<(ApproxWatchId, ApproxImpact), ServeError>>,
    },
    UnsubscribeApprox {
        id: ApproxWatchId,
        /// `None` for the fire-and-forget unsubscribe of
        /// `ApproxSubscription::drop`.
        tx: Option<mpsc::Sender<Result<bool, ServeError>>>,
    },
    ApproxSubscriptions {
        tx: mpsc::Sender<Result<usize, ServeError>>,
    },
    Stats {
        tx: mpsc::Sender<Result<ServeStats, ServeError>>,
    },
    Shutdown,
}

/// Resolves every pending response channel of `msg` with `err` and returns
/// how many requests were rejected (a batch counts each of its queries).
/// Used by the shutdown drain and by handles whose enqueue raced the
/// shutdown.
pub(crate) fn reject_msg(msg: Msg, err: &ServeError) -> u64 {
    match msg {
        Msg::Query(job) => {
            job.sink.reject(err.clone());
            1
        }
        Msg::Batch(jobs) => {
            let n = jobs.len() as u64;
            for job in jobs {
                job.sink.reject(err.clone());
            }
            n
        }
        Msg::Insert { tx, .. } => {
            let _ = tx.send(Err(err.clone()));
            1
        }
        Msg::Delete { tx, .. } => {
            let _ = tx.send(Err(err.clone()));
            1
        }
        Msg::Subscribe { deltas, tx, .. } => {
            deltas.close();
            let _ = tx.send(Err(err.clone()));
            1
        }
        Msg::Unsubscribe { tx, .. } => match tx {
            Some(tx) => {
                let _ = tx.send(Err(err.clone()));
                1
            }
            None => 0,
        },
        Msg::Subscriptions { tx } => {
            let _ = tx.send(Err(err.clone()));
            1
        }
        Msg::SubscribeApprox { tx, .. } => {
            let _ = tx.send(Err(err.clone()));
            1
        }
        Msg::UnsubscribeApprox { tx, .. } => match tx {
            Some(tx) => {
                let _ = tx.send(Err(err.clone()));
                1
            }
            None => 0,
        },
        Msg::ApproxSubscriptions { tx } => {
            let _ = tx.send(Err(err.clone()));
            1
        }
        Msg::Stats { tx } => {
            let _ = tx.send(Err(err.clone()));
            1
        }
        Msg::Shutdown => 0,
    }
}

/// What [`crate::Server`] hands the dispatcher thread: the tuning knobs,
/// the (possibly recovered) standing-query registry, and the durability
/// hook.
pub(crate) struct DispatchConfig {
    pub(crate) batch_limit: usize,
    pub(crate) admission: crate::admission::AdmissionOptions,
    pub(crate) persist: Option<Persist>,
    pub(crate) monitor: Monitor,
    /// The atomic counter mirror shared with every [`crate::ServeHandle`].
    pub(crate) live: Arc<LiveStats>,
    /// The latency histograms, WAL gauges, and slow-query log.
    pub(crate) metrics: Arc<ServeMetrics>,
}

/// Delivers update notifications to their subscribers.  A queue at its
/// pending cap coalesces the notification instead of growing (see
/// [`crate::MAX_PENDING_DELTAS`]); a closed queue means the subscription was
/// dropped but its unsubscribe message is still in flight, and the
/// notification is simply discarded.
fn notify(
    subscribers: &HashMap<QueryId, Arc<DeltaQueue>>,
    deltas: Vec<ResultDelta>,
    live: &LiveStats,
) {
    for delta in deltas {
        if let Some(queue) = subscribers.get(&delta.query) {
            match queue.push(delta) {
                DeltaPush::Queued => live.notifications.inc(),
                DeltaPush::Coalesced => {
                    live.notifications.inc();
                    live.deltas_coalesced.inc();
                }
                DeltaPush::Closed => {}
            }
        }
    }
}

/// Runs the standing-query maintenance for one *already committed and
/// acknowledged* update and delivers the notifications.
///
/// A panic inside classification (a standing query's rerun tripping an
/// engine bug) is the query-panic class — the engine caches recover and the
/// update itself is fine — but the maintenance pass may have stopped half
/// way, leaving some standing queries with stale bookkeeping that would
/// silently misclassify every later update.  Rather than stopping the
/// server (the update succeeded) or serving stale standing results, the
/// whole registry is invalidated: every subscription's channel closes (its
/// next `recv`/`poll` reports the disconnect) and clients re-subscribe to
/// resume watching.
fn maintain_standing(
    monitor: &mut Monitor,
    subscribers: &mut HashMap<QueryId, Arc<DeltaQueue>>,
    live: &LiveStats,
    apply: impl FnOnce(&mut Monitor) -> Vec<ResultDelta>,
) {
    if monitor.is_empty() {
        return;
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| apply(monitor))) {
        Ok(deltas) => notify(subscribers, deltas, live),
        Err(_) => {
            // Not a rejection — no client request failed; track separately.
            live.maintenance_failures.inc();
            monitor.clear();
            for queue in subscribers.values() {
                queue.close();
            }
            subscribers.clear();
        }
    }
}

/// Maintains every **approximate** standing query for one committed update:
/// an update the witness classifier proves impact-preserving leaves the held
/// estimate untouched (it is still a valid draw for the unchanged truth);
/// anything else redraws the estimate against the post-update state and
/// pushes an [`ApproxDelta`].  A panic inside the re-estimation invalidates
/// the approximate registry exactly like the exact registry (subscribers
/// re-subscribe), since a half-maintained watch set would silently serve
/// stale estimates.
fn maintain_approx_watch(
    engine: &ShardedEngine,
    watch: &mut HashMap<ApproxWatchId, ApproxStanding>,
    live: &LiveStats,
    values: &[f64],
    approx_seed: &mut u64,
) {
    if watch.is_empty() {
        return;
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut updates: Vec<(ApproxWatchId, ApproxImpact)> = Vec::new();
        let mut unaffected = 0u64;
        // Deterministic maintenance order (ids are dense and never reused).
        let mut ids: Vec<ApproxWatchId> = watch.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let standing = &watch[&id];
            if update_preserves_impact(engine, &standing.focal, standing.k, values) {
                unaffected += 1;
                continue;
            }
            let seed = *approx_seed;
            *approx_seed = approx_seed.wrapping_add(1);
            let fresh = engine
                .run_approx_batch(
                    std::slice::from_ref(&standing.focal),
                    standing.k,
                    &standing.budget,
                    seed,
                )
                .pop()
                .expect("one focal in, one estimate out");
            updates.push((id, fresh));
        }
        (updates, unaffected)
    }));
    match outcome {
        Ok((updates, unaffected)) => {
            live.approx_watch_unaffected.add(unaffected);
            for (id, fresh) in updates {
                let standing = watch.get_mut(&id).expect("maintained id is registered");
                let before = std::mem::replace(&mut standing.estimate, fresh.clone());
                let delta = ApproxDelta {
                    query: id,
                    before,
                    after: fresh,
                };
                if standing.deltas.send(delta).is_ok() {
                    live.approx_notifications.inc();
                }
            }
        }
        Err(_) => {
            live.maintenance_failures.inc();
            watch.clear();
        }
    }
}

/// An applied-but-unacknowledged update of the current batch: the ticket is
/// resolved only after the batch's WAL commit succeeds, so an acknowledged
/// update is always replayable.  (On a non-durable server the commit is a
/// no-op and the staging just defers the sends to the end of the batch.)
enum StagedAck {
    Insert(
        mpsc::Sender<Result<RecordId, ServeError>>,
        RecordId,
        RequestTrace,
    ),
    Delete(mpsc::Sender<Result<bool, ServeError>>, bool, RequestTrace),
}

/// The stages an update passes through (queries own the admission and
/// batch-assembly stages; the WAL stage only exists on a durable server).
const UPDATE_STAGES: [Stage; 3] = [Stage::Queue, Stage::Engine, Stage::Ack];
const DURABLE_UPDATE_STAGES: [Stage; 4] =
    [Stage::Queue, Stage::Engine, Stage::WalCommit, Stage::Ack];

/// Closes out an update's trace at acknowledgement time: everything between
/// the Engine stamp and now was the batch's WAL commit (durable servers),
/// then the ack itself.  Recorded — stage histograms and, for traced
/// updates, the flight recorder — *before* the ack is sent.
fn finish_update_trace(mut trace: RequestTrace, metrics: &ServeMetrics, durable: bool) {
    let recorded: &[Stage] = if durable {
        trace.stamp(Stage::WalCommit);
        &DURABLE_UPDATE_STAGES
    } else {
        &UPDATE_STAGES
    };
    trace.stamp(Stage::Ack);
    metrics.record_stages(&trace.timings(), recorded);
    let total_ns = trace.total_nanos();
    metrics.finish_trace(trace, total_ns);
}

impl StagedAck {
    /// Acknowledges the applied update.
    fn resolve(self, live: &LiveStats, metrics: &ServeMetrics, durable: bool) {
        live.updates.inc();
        match self {
            StagedAck::Insert(tx, id, trace) => {
                finish_update_trace(trace, metrics, durable);
                drop(tx.send(Ok(id)));
            }
            StagedAck::Delete(tx, removed, trace) => {
                finish_update_trace(trace, metrics, durable);
                drop(tx.send(Ok(removed)));
            }
        }
    }

    /// Fails the applied-but-uncommitted update (its WAL commit failed; the
    /// server stops, so the in-memory application is never observable).
    fn fail(self, live: &LiveStats) {
        live.reject(&ServeError::UpdateFailed);
        match self {
            StagedAck::Insert(tx, _, _) => drop(tx.send(Err(ServeError::UpdateFailed))),
            StagedAck::Delete(tx, _, _) => drop(tx.send(Err(ServeError::UpdateFailed))),
        }
    }
}

/// The dispatcher loop: drain the queue, batch consecutive queries, apply
/// updates in arrival order (committing them to the WAL on a durable
/// server), and maintain the standing-query registry.
pub(crate) fn dispatch(
    mut engine: ShardedEngine,
    rx: mpsc::Receiver<Msg>,
    config: DispatchConfig,
) -> (ShardedEngine, ServeStats) {
    let DispatchConfig {
        batch_limit,
        admission,
        mut persist,
        mut monitor,
        live,
        metrics,
    } = config;
    let mut carry: VecDeque<Msg> = VecDeque::new();
    let mut subscribers: HashMap<QueryId, Arc<DeltaQueue>> = HashMap::new();
    let mut approx_watch: HashMap<ApproxWatchId, ApproxStanding> = HashMap::new();
    let mut next_approx_id: ApproxWatchId = 0;
    // Seed stream of the sampling tier: one fresh seed per sweep, so
    // estimates are deterministic per server run without ever reusing a
    // sample stream.
    let mut approx_seed: u64 = 0x5EED_AB5E;
    // Set when the engine (or the WAL) is no longer trustworthy: the loop
    // stops *without* draining, so late requests observe the dead channel.
    let mut update_failed = false;
    // Set on an orderly stop: the loop drains the queue and resolves every
    // pending request with `ServeError::Shutdown`.
    let mut shutting_down = false;
    loop {
        let msg = match carry.pop_front() {
            Some(msg) => msg,
            None => match rx.recv() {
                Ok(msg) => msg,
                // Every handle (and the Server) is gone: stop serving.
                Err(mpsc::RecvError) => break,
            },
        };
        match msg {
            Msg::Shutdown => {
                shutting_down = true;
                break;
            }
            update @ (Msg::Insert { .. } | Msg::Delete { .. }) => {
                // Batched update dequeue, mirroring the query batching
                // below: greedily pull further *already-queued* consecutive
                // updates — never waiting for more to arrive — up to the
                // maintenance batching window, so a burst of updates shares
                // one standing-query maintenance pass and **one WAL commit**
                // (the fsync batching of `kspr-durable`).
                let window = engine.config().monitor_batch_window;
                let mut pending = vec![update];
                while pending.len() < window {
                    match rx.try_recv() {
                        Ok(next @ (Msg::Insert { .. } | Msg::Delete { .. })) => {
                            pending.push(next);
                        }
                        Ok(other) => {
                            carry.push_back(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                // The monitor needs every update's values after the engine
                // consumed them; only pay the clones when someone watches.
                // (Only updates are processed until the maintenance pass
                // below, so the registries cannot change mid-batch.)
                let watched = !monitor.is_empty() || !approx_watch.is_empty();
                let mut batch: Vec<(UpdateKind, Vec<f64>)> = Vec::new();
                let mut acks: Vec<StagedAck> = Vec::new();
                for msg in pending {
                    match msg {
                        Msg::Insert {
                            values,
                            tx,
                            mut trace,
                        } => match validate_insert(&engine, &values) {
                            Ok(()) => {
                                trace.stamp(Stage::Queue);
                                let kept = watched.then(|| values.clone());
                                let logged = persist.is_some().then(|| values.clone());
                                let outcome =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        engine.insert(values)
                                    }));
                                match outcome {
                                    Ok(id) => {
                                        trace.stamp(Stage::Engine);
                                        if let (Some(persist), Some(values)) =
                                            (persist.as_mut(), logged)
                                        {
                                            persist.append(&WalRecord::Insert { id, values });
                                        }
                                        acks.push(StagedAck::Insert(tx, id, trace));
                                        if let Some(values) = kept {
                                            batch.push((UpdateKind::Insert, values));
                                        }
                                    }
                                    Err(_) => {
                                        // A panic mid-update may have left
                                        // shard state half-applied; stop
                                        // serving cleanly instead of risking
                                        // corrupt answers (see UpdateFailed).
                                        live.reject(&ServeError::UpdateFailed);
                                        let _ = tx.send(Err(ServeError::UpdateFailed));
                                        update_failed = true;
                                    }
                                }
                            }
                            Err(err) => {
                                live.reject(&err);
                                let _ = tx.send(Err(err));
                            }
                        },
                        Msg::Delete { id, tx, mut trace } => {
                            trace.stamp(Stage::Queue);
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    engine.delete_returning(id)
                                }));
                            match outcome {
                                Ok(removed) => {
                                    trace.stamp(Stage::Engine);
                                    // A no-op delete changes no state, so it
                                    // is acknowledged but never logged.
                                    if removed.is_some() {
                                        if let Some(persist) = persist.as_mut() {
                                            persist.append(&WalRecord::Delete { id });
                                        }
                                    }
                                    acks.push(StagedAck::Delete(tx, removed.is_some(), trace));
                                    match removed {
                                        Some(values) if watched => {
                                            batch.push((UpdateKind::Delete, values));
                                        }
                                        _ => {}
                                    }
                                }
                                Err(_) => {
                                    live.reject(&ServeError::UpdateFailed);
                                    let _ = tx.send(Err(ServeError::UpdateFailed));
                                    update_failed = true;
                                }
                            }
                        }
                        _ => unreachable!("only updates are drained into an update batch"),
                    }
                    if update_failed {
                        break;
                    }
                }
                // One durable write for the whole drained batch, *before*
                // any ticket is acknowledged: an acknowledged update is
                // always replayable.  A failed commit fails the whole
                // batch's staged acks (their in-memory application is never
                // observable — the server stops) and stops serving.
                let applied = acks.len();
                let durable = persist.is_some();
                if let Some(persist) = persist.as_mut() {
                    if !acks.is_empty() {
                        match persist.commit() {
                            Ok(()) => {
                                live.wal_commits.inc();
                                metrics.wal_committed(
                                    persist.wal_bytes(),
                                    persist.last_commit_nanos(),
                                    persist.synced(),
                                );
                            }
                            Err(_) => {
                                for ack in acks.drain(..) {
                                    ack.fail(&live);
                                }
                                update_failed = true;
                            }
                        }
                    }
                }
                for ack in acks {
                    ack.resolve(&live, &metrics, durable);
                }
                if update_failed {
                    break;
                }
                if applied > 0 {
                    live.update_batches.inc();
                    live.largest_update_batch.record(applied);
                }
                if !batch.is_empty() {
                    // The monitor runs on the dispatcher thread, so the
                    // standing results it patches stay serialized with the
                    // update stream.  It is guarded separately from the
                    // engine updates: the batch is committed and
                    // acknowledged above, so a classification panic must
                    // not be reported as UpdateFailed (losing the ids) nor
                    // stop serving.  One maintenance pass covers the whole
                    // drained batch.
                    let pass = Instant::now();
                    maintain_standing(&mut monitor, &mut subscribers, &live, |monitor| {
                        monitor.apply_batch(&engine, &batch)
                    });
                    for (_, values) in &batch {
                        maintain_approx_watch(
                            &engine,
                            &mut approx_watch,
                            &live,
                            values,
                            &mut approx_seed,
                        );
                    }
                    // The pass is timed from outside (the Notify stage has
                    // no single request to trace), and the refreshed
                    // monitor stats are published for non-blocking reads.
                    metrics.record_maintenance(pass.elapsed());
                    live.set_monitor(monitor.stats());
                }
                // Background compaction: once dead record slots exceed half
                // the id space, rewrite the shards down to their live
                // records (global ids survive — see ShardedEngine::compact,
                // and live data is untouched, so maintained standing
                // results stay exact).  As an engine mutation it gets the
                // update panic contract: a half-compacted pool must not
                // keep serving.  On a durable server a compaction is an
                // epoch boundary: a fresh snapshot is installed and the WAL
                // truncated, bounding replay work.
                if engine.tombstone_ratio() > 0.5 {
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.compact()));
                    match outcome {
                        Ok(_) => {
                            live.compactions.inc();
                            if let Some(persist) = persist.as_mut() {
                                match persist.install(&snapshot_of(&engine, &monitor)) {
                                    Ok(()) => {
                                        live.snapshots.inc();
                                        metrics.snapshot_installed(
                                            persist.wal_bytes(),
                                            persist.snapshot_epoch(),
                                        );
                                    }
                                    Err(_) => {
                                        // The durable directory is no longer
                                        // writable; refuse to keep acknowledging
                                        // updates that could not be replayed.
                                        live.reject(&ServeError::UpdateFailed);
                                        update_failed = true;
                                        break;
                                    }
                                }
                            }
                        }
                        Err(_) => {
                            live.reject(&ServeError::UpdateFailed);
                            update_failed = true;
                            break;
                        }
                    }
                }
            }
            Msg::Subscribe {
                algorithm,
                focal,
                k,
                deltas,
                tx,
            } => {
                // Registration runs the initial query; guard it like any
                // other query (the caches recover, serving continues).
                let logged = persist.is_some().then(|| focal.clone());
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    monitor.register(&engine, algorithm, focal, k)
                }));
                match outcome {
                    Ok(Ok(id)) => {
                        // Registry changes are durable like updates: log,
                        // commit, only then acknowledge.
                        let mut committed = true;
                        if let (Some(persist), Some(focal)) = (persist.as_mut(), logged) {
                            persist.append(&WalRecord::Subscribe {
                                id,
                                algorithm,
                                focal,
                                k,
                            });
                            match persist.commit() {
                                Ok(()) => {
                                    live.wal_commits.inc();
                                    metrics.wal_committed(
                                        persist.wal_bytes(),
                                        persist.last_commit_nanos(),
                                        persist.synced(),
                                    );
                                }
                                Err(_) => committed = false,
                            }
                        }
                        if committed {
                            live.subscriptions.inc();
                            let initial = monitor
                                .result(id)
                                .expect("freshly registered query has a result")
                                .clone();
                            subscribers.insert(id, deltas);
                            let _ = tx.send(Ok((id, initial)));
                        } else {
                            monitor.unregister(id);
                            live.reject(&ServeError::UpdateFailed);
                            let _ = tx.send(Err(ServeError::UpdateFailed));
                            update_failed = true;
                            break;
                        }
                    }
                    Ok(Err(err)) => {
                        let err = register_error(err);
                        live.reject(&err);
                        let _ = tx.send(Err(err));
                    }
                    Err(_) => {
                        live.reject(&ServeError::QueryFailed);
                        let _ = tx.send(Err(ServeError::QueryFailed));
                    }
                }
            }
            Msg::Unsubscribe { id, tx } => {
                let removed = monitor.unregister(id);
                if let Some(queue) = subscribers.remove(&id) {
                    // Wake a receiver still blocked on the dead stream.
                    queue.close();
                }
                let mut committed = true;
                if removed {
                    if let Some(persist) = persist.as_mut() {
                        persist.append(&WalRecord::Unsubscribe { id });
                        match persist.commit() {
                            Ok(()) => {
                                live.wal_commits.inc();
                                metrics.wal_committed(
                                    persist.wal_bytes(),
                                    persist.last_commit_nanos(),
                                    persist.synced(),
                                );
                            }
                            Err(_) => committed = false,
                        }
                    }
                }
                if committed {
                    if let Some(tx) = tx {
                        let _ = tx.send(Ok(removed));
                    }
                } else {
                    live.reject(&ServeError::UpdateFailed);
                    if let Some(tx) = tx {
                        let _ = tx.send(Err(ServeError::UpdateFailed));
                    }
                    update_failed = true;
                    break;
                }
            }
            Msg::Subscriptions { tx } => {
                let _ = tx.send(Ok(monitor.len()));
            }
            Msg::SubscribeApprox {
                focal,
                k,
                budget,
                deltas,
                tx,
            } => {
                let valid = if k == 0 {
                    Err(ServeError::InvalidK)
                } else {
                    validate_budget(&budget).and_then(|()| {
                        kspr::check_record(&focal, Some(engine.dim())).map_err(ingest_error)
                    })
                };
                match valid {
                    Ok(()) => {
                        let seed = approx_seed;
                        approx_seed = approx_seed.wrapping_add(1);
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                engine
                                    .run_approx_batch(
                                        std::slice::from_ref(&focal),
                                        k,
                                        &budget,
                                        seed,
                                    )
                                    .pop()
                                    .expect("one focal in, one estimate out")
                            }));
                        match outcome {
                            Ok(initial) => {
                                // Approximate watches are deliberately *not*
                                // durable: an estimate is only valid for the
                                // sample stream that drew it, and a recovered
                                // server starts a fresh stream — clients
                                // re-subscribe after a crash.
                                let id = next_approx_id;
                                next_approx_id += 1;
                                live.approx_subscriptions.inc();
                                approx_watch.insert(
                                    id,
                                    ApproxStanding {
                                        focal,
                                        k,
                                        budget,
                                        estimate: initial.clone(),
                                        deltas,
                                    },
                                );
                                let _ = tx.send(Ok((id, initial)));
                            }
                            Err(_) => {
                                live.reject(&ServeError::QueryFailed);
                                let _ = tx.send(Err(ServeError::QueryFailed));
                            }
                        }
                    }
                    Err(err) => {
                        live.reject(&err);
                        let _ = tx.send(Err(err));
                    }
                }
            }
            Msg::UnsubscribeApprox { id, tx } => {
                let removed = approx_watch.remove(&id).is_some();
                if let Some(tx) = tx {
                    let _ = tx.send(Ok(removed));
                }
            }
            Msg::ApproxSubscriptions { tx } => {
                let _ = tx.send(Ok(approx_watch.len()));
            }
            Msg::Stats { tx } => {
                let mut snapshot = live.snapshot();
                snapshot.monitor = monitor.stats();
                let _ = tx.send(Ok(snapshot));
            }
            Msg::Query(job) => {
                // Batched dequeue: greedily pull further *consecutive*
                // queries (updates act as barriers, preserving FIFO
                // semantics between queries and updates).
                let mut batch = vec![job];
                while batch.len() < batch_limit {
                    match rx.try_recv() {
                        Ok(Msg::Query(next)) => batch.push(next),
                        Ok(other) => {
                            // A Batch keeps its own identity (absorbing it
                            // here could blow past `batch_limit`); updates
                            // act as barriers.  Either way FIFO between the
                            // drained queries and what follows is preserved.
                            carry.push_back(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                run_jobs(
                    &engine,
                    batch,
                    &admission,
                    &live,
                    &metrics,
                    &mut approx_seed,
                );
            }
            Msg::Batch(jobs) => {
                run_jobs(&engine, jobs, &admission, &live, &metrics, &mut approx_seed)
            }
        }
    }
    if !update_failed {
        // Orderly stop: resolve everything still queued with an explicit
        // `Shutdown` instead of letting tickets observe a dead channel.
        // (The handles' closing flag was set before `Msg::Shutdown` was
        // sent, so nothing new is enqueued behind this drain; `carry` holds
        // messages already dequeued but deferred by the batching.)
        let mut drained = carry;
        while let Ok(msg) = rx.try_recv() {
            drained.push_back(msg);
        }
        for msg in drained {
            for _ in 0..reject_msg(msg, &ServeError::Shutdown) {
                live.reject(&ServeError::Shutdown);
            }
        }
        // A clean shutdown is an epoch boundary: persist the final state so
        // the next start replays nothing.  (Nothing is staged here — every
        // commit happens before its batch is acknowledged.)
        if shutting_down {
            if let Some(persist) = persist.as_mut() {
                if persist
                    .commit()
                    .and_then(|()| persist.install(&snapshot_of(&engine, &monitor)))
                    .is_ok()
                {
                    live.snapshots.inc();
                    metrics.snapshot_installed(persist.wal_bytes(), persist.snapshot_epoch());
                }
            }
        }
    }
    // Wake receivers still blocked on their delta streams before the
    // dispatcher state drops.
    for queue in subscribers.values() {
        queue.close();
    }
    live.set_monitor(monitor.stats());
    (engine, live.snapshot())
}
