//! Preference-space geometry for the kSPR reproduction.
//!
//! The kSPR algorithms model the interaction between a focal record `p` and a
//! competing record `r` as a hyperplane `S(r) = S(p)` in *preference space*
//! (the space of weight vectors).  This crate provides:
//!
//! * [`space`] — the two working spaces of the paper: the **transformed**
//!   preference space of Section 3.2 (dimensionality `d - 1`, obtained from
//!   the normalization `Σ w_i = 1`) and the **original** space of Appendix C.
//! * [`hyperplane`] — the record → hyperplane mapping and signed halfspaces.
//! * [`system`] — constraint systems assembled from halfspaces plus the space
//!   boundary, with LP-backed feasibility tests and score-bound optimization.
//! * [`polytope`] — the `qhull` substitute: exact vertex enumeration of a cell
//!   from its bounding halfspaces, plus area/volume computation used for the
//!   market-impact measure discussed in the paper's introduction.
//! * [`linalg`] — small dense linear-system solving used by the vertex
//!   enumeration.

pub mod hyperplane;
pub mod linalg;
pub mod polytope;
pub mod space;
pub mod system;

pub use hyperplane::{Halfspace, Hyperplane, PlaneKind, Sign};
pub use polytope::Polytope;
pub use space::{PreferenceSpace, Space};
pub use system::ConstraintSystem;

/// Numerical tolerance for geometric predicates.
pub const GEOM_EPS: f64 = 1e-9;

/// Computes the dot product of two slices.
///
/// # Panics
/// Panics (in debug builds) if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
