//! The two preference spaces used by the paper.
//!
//! * **Transformed space** (Section 3.2): because weight vectors are
//!   normalized (`Σ w_i = 1`, `w_i > 0`), the last weight is implied and the
//!   algorithms work in the `(d-1)`-dimensional space of `w_1 … w_{d-1}`,
//!   bounded by `w_j > 0` and `Σ w_j < 1`.
//! * **Original space** (Appendix C): the full `d`-dimensional space with
//!   `w_i > 0`.  Every record-vs-focal hyperplane passes through the origin,
//!   so cells are polyhedral cones; for LP purposes the space is additionally
//!   capped by `w_i ≤ 1`, which does not change any score comparison because
//!   rankings are invariant to positive scaling of `w`.

use kspr_lp::{LinearConstraint, Relation};
use rand::Rng;

/// Which preference space the algorithms operate in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Space {
    /// The `(d-1)`-dimensional transformed space of Section 3.2 (default).
    #[default]
    Transformed,
    /// The full `d`-dimensional space of Appendix C.
    Original,
}

/// A concrete preference space for records with `data_dim` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreferenceSpace {
    /// Number of data attributes `d`.
    pub data_dim: usize,
    /// Transformed or original space.
    pub space: Space,
}

impl PreferenceSpace {
    /// The transformed `(d-1)`-dimensional space for `d`-dimensional records.
    ///
    /// # Panics
    /// Panics if `data_dim < 2`; a one-attribute dataset has no preference
    /// trade-off to analyse.
    pub fn transformed(data_dim: usize) -> Self {
        assert!(data_dim >= 2, "kSPR needs at least two data attributes");
        Self {
            data_dim,
            space: Space::Transformed,
        }
    }

    /// The original `d`-dimensional space for `d`-dimensional records.
    pub fn original(data_dim: usize) -> Self {
        assert!(data_dim >= 2, "kSPR needs at least two data attributes");
        Self {
            data_dim,
            space: Space::Original,
        }
    }

    /// Creates the space of the requested kind.
    pub fn new(data_dim: usize, space: Space) -> Self {
        match space {
            Space::Transformed => Self::transformed(data_dim),
            Space::Original => Self::original(data_dim),
        }
    }

    /// Dimensionality of the working space (`d-1` for transformed, `d` for original).
    pub fn work_dim(&self) -> usize {
        match self.space {
            Space::Transformed => self.data_dim - 1,
            Space::Original => self.data_dim,
        }
    }

    /// Strict boundary constraints of the space (`Ψ_S` in the paper's
    /// pseudocode): `w_j > 0`, `w_j < 1` and, in the transformed space,
    /// `Σ w_j < 1`.
    pub fn boundary_constraints(&self) -> Vec<LinearConstraint> {
        let dim = self.work_dim();
        let mut out = Vec::with_capacity(2 * dim + 1);
        for j in 0..dim {
            let mut coeffs = vec![0.0; dim];
            coeffs[j] = 1.0;
            out.push(LinearConstraint::new(
                coeffs.clone(),
                Relation::Greater,
                0.0,
            ));
            out.push(LinearConstraint::new(coeffs, Relation::Less, 1.0));
        }
        if self.space == Space::Transformed {
            out.push(LinearConstraint::new(vec![1.0; dim], Relation::Less, 1.0));
        }
        out
    }

    /// True iff `w` (a working-space point) lies strictly inside the space.
    pub fn contains(&self, w: &[f64]) -> bool {
        if w.len() != self.work_dim() {
            return false;
        }
        let all_in_unit = w.iter().all(|&x| x > 0.0 && x < 1.0);
        match self.space {
            Space::Transformed => all_in_unit && w.iter().sum::<f64>() < 1.0,
            Space::Original => all_in_unit,
        }
    }

    /// Lifts a working-space point to a full, normalized `d`-dimensional
    /// weight vector (`Σ w_i = 1`).
    ///
    /// In the transformed space the implied last weight `w_d = 1 - Σ w_j` is
    /// appended; in the original space the vector is normalized by its sum
    /// (score rankings are invariant to that scaling).
    pub fn to_full_weight(&self, w: &[f64]) -> Vec<f64> {
        assert_eq!(
            w.len(),
            self.work_dim(),
            "working-space point arity mismatch"
        );
        match self.space {
            Space::Transformed => {
                let mut full = w.to_vec();
                let last = 1.0 - w.iter().sum::<f64>();
                full.push(last);
                full
            }
            Space::Original => {
                let sum: f64 = w.iter().sum();
                if sum <= 0.0 {
                    return vec![1.0 / self.data_dim as f64; self.data_dim];
                }
                w.iter().map(|&x| x / sum).collect()
            }
        }
    }

    /// Projects a full `d`-dimensional weight vector into the working space.
    pub fn from_full_weight(&self, w: &[f64]) -> Vec<f64> {
        assert_eq!(w.len(), self.data_dim, "full weight vector arity mismatch");
        match self.space {
            Space::Transformed => w[..self.data_dim - 1].to_vec(),
            Space::Original => w.to_vec(),
        }
    }

    /// The exact volume of the working space.
    ///
    /// The transformed space is the open simplex `{w > 0, Σ w < 1}` of volume
    /// `1 / d'!`; the original space is the open unit hypercube of volume 1.
    pub fn volume(&self) -> f64 {
        match self.space {
            Space::Transformed => {
                let mut fact = 1.0;
                for i in 1..=self.work_dim() {
                    fact *= i as f64;
                }
                1.0 / fact
            }
            Space::Original => 1.0,
        }
    }

    /// The centroid of the working space (a convenient canonical weight
    /// vector, e.g. for examples and sanity checks).
    pub fn centroid(&self) -> Vec<f64> {
        let dim = self.work_dim();
        match self.space {
            Space::Transformed => vec![1.0 / (dim as f64 + 1.0); dim],
            Space::Original => vec![0.5; dim],
        }
    }

    /// Draws one point uniformly from the (open) working space.
    ///
    /// The transformed space is the open simplex `{w > 0, Σ w < 1}`: the
    /// point is generated *directly* through the exponential-spacings
    /// construction (normalize `d'+1` iid `Exp(1)` draws and drop the last
    /// coordinate — a `Dirichlet(1, …, 1)` marginal, which is uniform on the
    /// simplex), so no sample is ever rejected.  Rejection against the cube,
    /// as the brute-force oracles do, keeps only a `1/d'!` fraction — at
    /// `d = 6` that is one sample in 120, which would dominate the cost of
    /// the Monte-Carlo query tier this method feeds.  The original space is
    /// the open unit cube, sampled coordinate-wise.  Boundary points (a
    /// measure-zero event under `f64` rounding) are redrawn, so the result
    /// always satisfies [`PreferenceSpace::contains`].
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let dim = self.work_dim();
        loop {
            let point: Vec<f64> = match self.space {
                Space::Transformed => {
                    // -ln of (0, 1] values: Exp(1) spacings.
                    let exps: Vec<f64> = (0..=dim)
                        .map(|_| -(1.0 - rng.gen_range(0.0..1.0f64)).ln())
                        .collect();
                    let total: f64 = exps.iter().sum();
                    exps[..dim].iter().map(|&e| e / total).collect()
                }
                Space::Original => (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect(),
            };
            if self.contains(&point) {
                return point;
            }
        }
    }

    /// Draws `n` points uniformly from the working space (see
    /// [`PreferenceSpace::sample`]).
    pub fn sample_many<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_space_dimensions() {
        let s = PreferenceSpace::transformed(4);
        assert_eq!(s.work_dim(), 3);
        assert_eq!(s.data_dim, 4);
    }

    #[test]
    fn original_space_dimensions() {
        let s = PreferenceSpace::original(4);
        assert_eq!(s.work_dim(), 4);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_attribute() {
        PreferenceSpace::transformed(1);
    }

    #[test]
    fn boundary_constraint_counts() {
        let t = PreferenceSpace::transformed(4);
        assert_eq!(t.boundary_constraints().len(), 2 * 3 + 1);
        let o = PreferenceSpace::original(4);
        assert_eq!(o.boundary_constraints().len(), 2 * 4);
    }

    #[test]
    fn containment_checks() {
        let t = PreferenceSpace::transformed(3);
        assert!(t.contains(&[0.3, 0.3]));
        assert!(!t.contains(&[0.6, 0.6])); // sum > 1
        assert!(!t.contains(&[0.0, 0.5])); // boundary
        assert!(!t.contains(&[0.5])); // wrong arity

        let o = PreferenceSpace::original(3);
        assert!(o.contains(&[0.6, 0.6, 0.9]));
        assert!(!o.contains(&[1.1, 0.5, 0.5]));
    }

    #[test]
    fn full_weight_round_trip_transformed() {
        let t = PreferenceSpace::transformed(3);
        let full = t.to_full_weight(&[0.2, 0.3]);
        assert_eq!(full.len(), 3);
        assert!((full.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((full[2] - 0.5).abs() < 1e-12);
        assert_eq!(t.from_full_weight(&full), vec![0.2, 0.3]);
    }

    #[test]
    fn full_weight_normalizes_original() {
        let o = PreferenceSpace::original(2);
        let full = o.to_full_weight(&[0.4, 0.4]);
        assert!((full.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((full[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simplex_volume() {
        assert!((PreferenceSpace::transformed(3).volume() - 0.5).abs() < 1e-12);
        assert!((PreferenceSpace::transformed(4).volume() - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(PreferenceSpace::original(4).volume(), 1.0);
    }

    #[test]
    fn centroid_is_inside() {
        for d in 2..=7 {
            let t = PreferenceSpace::transformed(d);
            assert!(t.contains(&t.centroid()));
            let o = PreferenceSpace::original(d);
            assert!(o.contains(&o.centroid()));
        }
    }

    #[test]
    fn direct_samples_lie_strictly_inside_the_space() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for d in 2..=6 {
            let mut rng = SmallRng::seed_from_u64(7 + d as u64);
            let t = PreferenceSpace::transformed(d);
            for w in t.sample_many(500, &mut rng) {
                assert!(t.contains(&w), "d={d}: {w:?} outside the simplex");
            }
            let o = PreferenceSpace::original(d);
            for w in o.sample_many(200, &mut rng) {
                assert!(o.contains(&w), "d={d}: {w:?} outside the cube");
            }
        }
    }

    #[test]
    fn direct_simplex_sampling_is_uniform() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        // Uniform on the simplex {w > 0, Σ w < 1} in m dims has coordinate
        // mean 1/(m+1) (Dirichlet(1,…,1) marginal) — check every coordinate,
        // plus the fraction of mass in the half `w_0 < w_1` (1/2 by symmetry).
        let t = PreferenceSpace::transformed(4); // m = 3
        let mut rng = SmallRng::seed_from_u64(99);
        let samples = t.sample_many(20_000, &mut rng);
        for j in 0..3 {
            let mean: f64 = samples.iter().map(|w| w[j]).sum::<f64>() / samples.len() as f64;
            assert!(
                (mean - 0.25).abs() < 0.01,
                "coordinate {j} mean {mean} far from 1/4"
            );
        }
        let below = samples.iter().filter(|w| w[0] < w[1]).count();
        let frac = below as f64 / samples.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "asymmetric split: {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let t = PreferenceSpace::transformed(5);
        let a = t.sample_many(50, &mut SmallRng::seed_from_u64(3));
        let b = t.sample_many(50, &mut SmallRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
