//! Exact cell geometry: the `qhull` substitute.
//!
//! The paper computes the exact geometry of result cells only in a final
//! *finalization* step (end of Section 4.2), by intersecting the bounding
//! halfspaces with the `qhull` library.  This module provides an in-tree
//! replacement:
//!
//! * **Vertex enumeration** — every subset of `d'` constraint hyperplanes is
//!   intersected (a small dense linear system); intersection points that
//!   satisfy all remaining constraints are vertices of the cell.  This is
//!   exponential in `d'` but exact, and `d' ≤ 6` with a few dozen constraints
//!   per cell in all experiments (Lemma 2 removes ≥ 96 % of the constraints
//!   before this step).
//! * **Volume** — exact for `d' ≤ 2` (interval length / polygon area via the
//!   shoelace formula), Monte-Carlo estimation with a deterministic seed for
//!   higher dimensions.  Volumes feed the *market impact* probability
//!   discussed in the paper's introduction.

use crate::linalg::solve_linear_system;
use crate::GEOM_EPS;
use kspr_lp::{maximize, LinearConstraint, LpOutcome, Relation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tolerance used when testing whether an intersection point satisfies the
/// remaining constraints (looser than [`GEOM_EPS`] to absorb the conditioning
/// of nearly-parallel hyperplanes).
const VERTEX_TOL: f64 = 1e-6;

/// A convex polytope given by both its bounding constraints and its vertices.
#[derive(Debug, Clone)]
pub struct Polytope {
    dim: usize,
    constraints: Vec<LinearConstraint>,
    vertices: Vec<Vec<f64>>,
}

impl Polytope {
    /// Computes the polytope bounded by the closure of `constraints`.
    ///
    /// Returns `None` when the constraint set has no intersection points at
    /// all (e.g. an empty or unbounded degenerate system).  A polytope with
    /// fewer than `dim + 1` vertices has zero volume but is still returned so
    /// that callers can inspect the degenerate geometry.
    ///
    /// The constraints should describe a *bounded* region; the preference-
    /// space boundary constraints guarantee this for every kSPR cell.
    pub fn from_constraints(constraints: &[LinearConstraint], dim: usize) -> Option<Self> {
        assert!(dim >= 1, "polytope dimension must be at least 1");
        for c in constraints {
            assert_eq!(c.coeffs.len(), dim, "constraint arity mismatch");
        }
        let vertices = enumerate_vertices(constraints, dim);
        if vertices.is_empty() {
            return None;
        }
        Some(Self {
            dim,
            constraints: constraints.to_vec(),
            vertices,
        })
    }

    /// Like [`Polytope::from_constraints`] but first removes redundant
    /// constraints with one LP per constraint.
    ///
    /// Vertex enumeration is exponential in the number of constraints, so for
    /// cells whose implicit description carries many non-binding halfspaces
    /// (long CellTree paths) this is dramatically faster while producing the
    /// same polytope.  This mirrors the paper's remark that the finalization
    /// step intersects the bounding halfspaces "ignoring the inconsequential
    /// ones".
    pub fn from_constraints_reduced(constraints: &[LinearConstraint], dim: usize) -> Option<Self> {
        let reduced = reduce_constraints(constraints, dim);
        Self::from_constraints(&reduced, dim)
    }

    /// Working-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The enumerated vertices.
    pub fn vertices(&self) -> &[Vec<f64>] {
        &self.vertices
    }

    /// The bounding constraints (closure form).
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Arithmetic mean of the vertices.
    pub fn centroid(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.dim];
        for v in &self.vertices {
            for (ci, vi) in c.iter_mut().zip(v) {
                *ci += vi;
            }
        }
        let n = self.vertices.len() as f64;
        c.iter_mut().for_each(|ci| *ci /= n);
        c
    }

    /// True iff `point` satisfies every bounding constraint (closure, with
    /// tolerance `tol`).
    pub fn contains(&self, point: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| {
            let v = c.eval(point);
            match c.op.closure() {
                Relation::LessEq => v <= c.rhs + tol,
                Relation::GreaterEq => v >= c.rhs - tol,
                _ => unreachable!(),
            }
        })
    }

    /// Axis-aligned bounding box of the vertices as `(min, max)` per axis.
    pub fn bounding_box(&self) -> (Vec<f64>, Vec<f64>) {
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for v in &self.vertices {
            for i in 0..self.dim {
                lo[i] = lo[i].min(v[i]);
                hi[i] = hi[i].max(v[i]);
            }
        }
        (lo, hi)
    }

    /// Volume of the polytope.
    ///
    /// Exact for one and two dimensions; a deterministic Monte-Carlo estimate
    /// with `samples` points for three or more dimensions.
    pub fn volume(&self, samples: usize, seed: u64) -> f64 {
        match self.dim {
            1 => {
                let (lo, hi) = self.bounding_box();
                (hi[0] - lo[0]).max(0.0)
            }
            2 => self.polygon_area(),
            _ => self.monte_carlo_volume(samples, seed),
        }
    }

    /// Exact area for two-dimensional polytopes (shoelace over the convex
    /// hull ordering of the vertices).
    fn polygon_area(&self) -> f64 {
        if self.vertices.len() < 3 {
            return 0.0;
        }
        let centroid = self.centroid();
        let mut ordered: Vec<&Vec<f64>> = self.vertices.iter().collect();
        ordered.sort_by(|a, b| {
            let aa = (a[1] - centroid[1]).atan2(a[0] - centroid[0]);
            let ab = (b[1] - centroid[1]).atan2(b[0] - centroid[0]);
            aa.partial_cmp(&ab).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut area = 0.0;
        for i in 0..ordered.len() {
            let a = ordered[i];
            let b = ordered[(i + 1) % ordered.len()];
            area += a[0] * b[1] - b[0] * a[1];
        }
        area.abs() / 2.0
    }

    /// Monte-Carlo volume estimate: samples are drawn uniformly from the
    /// bounding box of the vertices and tested against the constraints.
    fn monte_carlo_volume(&self, samples: usize, seed: u64) -> f64 {
        let (lo, hi) = self.bounding_box();
        let box_volume: f64 = lo.iter().zip(&hi).map(|(l, h)| (h - l).max(0.0)).product();
        if box_volume <= 0.0 || samples == 0 {
            return 0.0;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut inside = 0usize;
        let mut point = vec![0.0; self.dim];
        for _ in 0..samples {
            for i in 0..self.dim {
                point[i] = rng.gen_range(lo[i]..=hi[i]);
            }
            if self.contains(&point, GEOM_EPS) {
                inside += 1;
            }
        }
        box_volume * inside as f64 / samples as f64
    }
}

/// Removes constraints that are redundant with respect to the rest of the
/// system: constraint `a·w ≤ b` is redundant when the maximum of `a·w` over
/// the remaining constraints (in closure form, with variables implicitly
/// bounded to `w ≥ 0`) does not exceed `b`.
///
/// The non-negativity of the working-space weights is part of every kSPR cell
/// (the space boundary), which is what makes the plain `maximize` call sound
/// here.
pub fn reduce_constraints(constraints: &[LinearConstraint], dim: usize) -> Vec<LinearConstraint> {
    if constraints.len() <= dim + 1 {
        return constraints.to_vec();
    }
    let mut keep: Vec<bool> = vec![true; constraints.len()];
    for i in 0..constraints.len() {
        // Normalize the tested constraint to "a·w ≤ b" form.
        let (obj, rhs) = match constraints[i].op.closure() {
            Relation::LessEq => (constraints[i].coeffs.clone(), constraints[i].rhs),
            Relation::GreaterEq => (
                constraints[i].coeffs.iter().map(|c| -c).collect(),
                -constraints[i].rhs,
            ),
            _ => unreachable!(),
        };
        let others: Vec<LinearConstraint> = constraints
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i && keep[*j])
            .map(|(_, c)| c.clone())
            .collect();
        match maximize(&obj, &others, dim) {
            LpOutcome::Optimal { objective, .. } if objective <= rhs + 1e-9 => {
                keep[i] = false;
            }
            _ => {}
        }
    }
    let mut reduced: Vec<LinearConstraint> = constraints
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(c, _)| c.clone())
        .collect();
    // The redundancy test above relies on the solver's implicit `w ≥ 0`
    // bounds (which every kSPR cell satisfies through the space boundary), so
    // those bounds must be part of the reduced description for the geometry
    // to stay correct.
    for j in 0..dim {
        let mut e = vec![0.0; dim];
        e[j] = 1.0;
        reduced.push(LinearConstraint::new(e, Relation::GreaterEq, 0.0));
    }
    reduced
}

/// Enumerates the vertices of the polyhedron `{ w : constraints }` by
/// intersecting every combination of `dim` constraint hyperplanes.
fn enumerate_vertices(constraints: &[LinearConstraint], dim: usize) -> Vec<Vec<f64>> {
    let m = constraints.len();
    if m < dim {
        return Vec::new();
    }
    let mut vertices: Vec<Vec<f64>> = Vec::new();
    let mut combo: Vec<usize> = (0..dim).collect();
    loop {
        // Solve the dim x dim system formed by the selected hyperplanes.
        let a: Vec<Vec<f64>> = combo
            .iter()
            .map(|&i| constraints[i].coeffs.clone())
            .collect();
        let b: Vec<f64> = combo.iter().map(|&i| constraints[i].rhs).collect();
        if let Some(point) = solve_linear_system(&a, &b) {
            let feasible = constraints.iter().all(|c| {
                let v = c.eval(&point);
                match c.op.closure() {
                    Relation::LessEq => v <= c.rhs + VERTEX_TOL,
                    Relation::GreaterEq => v >= c.rhs - VERTEX_TOL,
                    _ => unreachable!(),
                }
            });
            if feasible && !vertices.iter().any(|v| points_equal(v, &point)) {
                vertices.push(point);
            }
        }
        if !advance_combination(&mut combo, m) {
            break;
        }
    }
    vertices
}

/// Advances `combo` to the next lexicographic combination of indices in
/// `0..m`; returns `false` when exhausted.
fn advance_combination(combo: &mut [usize], m: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] < m - (k - i) {
            combo[i] += 1;
            for j in (i + 1)..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

fn points_equal(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr_lp::Relation;

    fn le(coeffs: Vec<f64>, rhs: f64) -> LinearConstraint {
        LinearConstraint::new(coeffs, Relation::LessEq, rhs)
    }

    fn ge(coeffs: Vec<f64>, rhs: f64) -> LinearConstraint {
        LinearConstraint::new(coeffs, Relation::GreaterEq, rhs)
    }

    fn unit_square() -> Vec<LinearConstraint> {
        vec![
            ge(vec![1.0, 0.0], 0.0),
            le(vec![1.0, 0.0], 1.0),
            ge(vec![0.0, 1.0], 0.0),
            le(vec![0.0, 1.0], 1.0),
        ]
    }

    #[test]
    fn unit_square_vertices_and_area() {
        let p = Polytope::from_constraints(&unit_square(), 2).unwrap();
        assert_eq!(p.vertices().len(), 4);
        assert!((p.volume(0, 0) - 1.0).abs() < 1e-9);
        let c = p.centroid();
        assert!((c[0] - 0.5).abs() < 1e-9 && (c[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn triangle_simplex_area() {
        // w >= 0, sum <= 1 in 2-d: area 1/2.
        let cs = vec![
            ge(vec![1.0, 0.0], 0.0),
            ge(vec![0.0, 1.0], 0.0),
            le(vec![1.0, 1.0], 1.0),
        ];
        let p = Polytope::from_constraints(&cs, 2).unwrap();
        assert_eq!(p.vertices().len(), 3);
        assert!((p.volume(0, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn interval_length_in_one_dimension() {
        let cs = vec![ge(vec![1.0], 0.25), le(vec![1.0], 0.75)];
        let p = Polytope::from_constraints(&cs, 1).unwrap();
        assert!((p.volume(0, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_intersection_returns_none() {
        let cs = vec![le(vec![1.0, 0.0], 0.0), ge(vec![1.0, 0.0], 1.0)];
        assert!(Polytope::from_constraints(&cs, 2).is_none());
    }

    #[test]
    fn cube_volume_monte_carlo() {
        let mut cs = Vec::new();
        for i in 0..3 {
            let mut c = vec![0.0; 3];
            c[i] = 1.0;
            cs.push(ge(c.clone(), 0.0));
            cs.push(le(c, 0.5));
        }
        let p = Polytope::from_constraints(&cs, 3).unwrap();
        assert_eq!(p.vertices().len(), 8);
        let v = p.volume(20_000, 42);
        assert!((v - 0.125).abs() < 0.01, "volume estimate {v}");
    }

    #[test]
    fn simplex_volume_monte_carlo() {
        // 3-d simplex w >= 0, sum <= 1 has volume 1/6.
        let mut cs = Vec::new();
        for i in 0..3 {
            let mut c = vec![0.0; 3];
            c[i] = 1.0;
            cs.push(ge(c, 0.0));
        }
        cs.push(le(vec![1.0, 1.0, 1.0], 1.0));
        let p = Polytope::from_constraints(&cs, 3).unwrap();
        assert_eq!(p.vertices().len(), 4);
        let v = p.volume(40_000, 7);
        assert!((v - 1.0 / 6.0).abs() < 0.02, "volume estimate {v}");
    }

    #[test]
    fn contains_and_bounding_box() {
        let p = Polytope::from_constraints(&unit_square(), 2).unwrap();
        assert!(p.contains(&[0.5, 0.5], 0.0));
        assert!(!p.contains(&[1.5, 0.5], 0.0));
        let (lo, hi) = p.bounding_box();
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![1.0, 1.0]);
    }

    #[test]
    fn redundant_constraints_do_not_add_vertices() {
        let mut cs = unit_square();
        cs.push(le(vec![1.0, 1.0], 5.0)); // redundant
        let p = Polytope::from_constraints(&cs, 2).unwrap();
        assert_eq!(p.vertices().len(), 4);
    }

    #[test]
    fn combination_iterator_covers_all_pairs() {
        let mut combo = vec![0, 1];
        let mut count = 1;
        while advance_combination(&mut combo, 4) {
            count += 1;
        }
        assert_eq!(count, 6); // C(4, 2)
    }
}
