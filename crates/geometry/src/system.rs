//! Constraint systems: the implicit representation of CellTree cells.
//!
//! A cell of the arrangement is the intersection of signed halfspaces with
//! the preference-space boundary.  A [`ConstraintSystem`] gathers those
//! constraints and answers the two questions the kSPR algorithms ask:
//!
//! * *Is the cell non-empty?* — [`ConstraintSystem::interior_point`], the
//!   LP-based feasibility test of Section 4.2.
//! * *What is the min / max of a linear score over the cell?* —
//!   [`ConstraintSystem::minimize`] / [`ConstraintSystem::maximize`], used by
//!   the look-ahead bounds of Section 6.

use crate::hyperplane::{Hyperplane, Sign};
use crate::space::PreferenceSpace;
use kspr_lp::{interior_point, maximize, minimize, InteriorSolution, LinearConstraint, LpOutcome};

/// A set of linear constraints over a preference space.
#[derive(Debug, Clone)]
pub struct ConstraintSystem {
    space: PreferenceSpace,
    constraints: Vec<LinearConstraint>,
    /// Number of constraints contributed by the space boundary (always kept).
    boundary_len: usize,
}

impl ConstraintSystem {
    /// A system containing only the space-boundary constraints.
    pub fn new(space: PreferenceSpace) -> Self {
        let constraints = space.boundary_constraints();
        let boundary_len = constraints.len();
        Self {
            space,
            constraints,
            boundary_len,
        }
    }

    /// The preference space the system lives in.
    pub fn space(&self) -> &PreferenceSpace {
        &self.space
    }

    /// Dimensionality of the working space.
    pub fn dim(&self) -> usize {
        self.space.work_dim()
    }

    /// Adds one side of a hyperplane as a *strict* constraint.
    pub fn push_halfspace(&mut self, plane: &Hyperplane, sign: Sign) {
        self.constraints.push(plane.constraint(sign, true));
    }

    /// Adds an arbitrary constraint.
    pub fn push_constraint(&mut self, constraint: LinearConstraint) {
        self.constraints.push(constraint);
    }

    /// All constraints, boundary first.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Number of record-induced (non-boundary) constraints.
    pub fn num_halfspace_constraints(&self) -> usize {
        self.constraints.len() - self.boundary_len
    }

    /// Total number of constraints, including the space boundary.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if no record-induced constraints have been added.
    pub fn is_empty(&self) -> bool {
        self.num_halfspace_constraints() == 0
    }

    /// LP feasibility test of the *open* cell (Section 4.2).
    ///
    /// Returns a strictly interior witness point if the cell has non-zero
    /// extent, `None` otherwise.
    pub fn interior_point(&self) -> Option<InteriorSolution> {
        interior_point(&self.constraints, self.dim())
    }

    /// True iff the open cell has non-zero extent.
    pub fn is_feasible(&self) -> bool {
        self.interior_point().is_some()
    }

    /// Minimizes `objective · w` over the closure of the cell.
    ///
    /// Returns `(minimum, argmin)` or `None` if even the closure is empty.
    pub fn minimize(&self, objective: &[f64]) -> Option<(f64, Vec<f64>)> {
        match minimize(objective, &self.constraints, self.dim()) {
            LpOutcome::Optimal { point, objective } => Some((objective, point)),
            _ => None,
        }
    }

    /// Maximizes `objective · w` over the closure of the cell.
    pub fn maximize(&self, objective: &[f64]) -> Option<(f64, Vec<f64>)> {
        match maximize(objective, &self.constraints, self.dim()) {
            LpOutcome::Optimal { point, objective } => Some((objective, point)),
            _ => None,
        }
    }

    /// True iff `w` satisfies every constraint (strict ones with margin `tol`).
    pub fn contains(&self, w: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(w, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Hyperplane;

    fn demo_space() -> PreferenceSpace {
        PreferenceSpace::transformed(3)
    }

    fn plane(r: &[f64], p: &[f64]) -> Hyperplane {
        Hyperplane::separating(r, p, &demo_space())
    }

    #[test]
    fn empty_system_is_feasible() {
        let sys = ConstraintSystem::new(demo_space());
        assert!(sys.is_feasible());
        assert!(sys.is_empty());
        assert_eq!(sys.num_halfspace_constraints(), 0);
    }

    #[test]
    fn single_halfspace_cell_is_feasible() {
        let p = [5.0, 5.0, 7.0];
        let r = [3.0, 8.0, 8.0];
        let mut sys = ConstraintSystem::new(demo_space());
        sys.push_halfspace(&plane(&r, &p), Sign::Negative);
        let sol = sys.interior_point().expect("feasible");
        assert!(sys.contains(&sol.point, 0.0));
        assert_eq!(sys.num_halfspace_constraints(), 1);
    }

    #[test]
    fn contradictory_halfspaces_are_infeasible() {
        let p = [5.0, 5.0, 7.0];
        let r = [3.0, 8.0, 8.0];
        let h = plane(&r, &p);
        let mut sys = ConstraintSystem::new(demo_space());
        sys.push_halfspace(&h, Sign::Negative);
        sys.push_halfspace(&h, Sign::Positive);
        assert!(!sys.is_feasible());
    }

    #[test]
    fn score_bounds_over_whole_space() {
        // Focal record score S(p) = p_d + Σ (p_i - p_d) w_i over the
        // transformed space; for p = (5,5,7) the max is 7 (w -> (0,0)) and the
        // min is 5 (w_1 -> 1).
        let p = [5.0, 5.0, 7.0];
        let sys = ConstraintSystem::new(demo_space());
        let objective = vec![p[0] - p[2], p[1] - p[2]];
        let (max_v, _) = sys.maximize(&objective).unwrap();
        let (min_v, _) = sys.minimize(&objective).unwrap();
        assert!((max_v + p[2] - 7.0).abs() < 1e-6);
        assert!((min_v + p[2] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn witness_lies_in_cell() {
        let p = [5.0, 5.0, 7.0];
        let records = [[3.0, 8.0, 8.0], [9.0, 4.0, 4.0], [8.0, 3.0, 4.0]];
        let mut sys = ConstraintSystem::new(demo_space());
        for r in &records {
            sys.push_halfspace(&plane(r, &p), Sign::Negative);
        }
        if let Some(sol) = sys.interior_point() {
            assert!(sys.contains(&sol.point, 0.0));
            assert!(demo_space().contains(&sol.point));
        }
    }
}
