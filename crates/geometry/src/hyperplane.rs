//! Record-induced hyperplanes and signed halfspaces.
//!
//! For a competing record `r` and the focal record `p`, the locus of weight
//! vectors for which the two score equally, `S(r) = S(p)`, is a hyperplane in
//! preference space (Section 3.2 of the paper).  Its **positive** halfspace is
//! where `S(r) > S(p)` (i.e. `r` beats `p`), the **negative** one where
//! `S(r) < S(p)`.

use crate::space::{PreferenceSpace, Space};
use crate::{dot, GEOM_EPS};
use kspr_lp::{LinearConstraint, Relation};

/// Side of a hyperplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// `S(r) < S(p)` — the competing record loses to the focal record.
    Negative,
    /// `S(r) > S(p)` — the competing record beats the focal record.
    Positive,
}

impl Sign {
    /// The opposite side.
    pub fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Positive => Sign::Negative,
        }
    }

    /// True for [`Sign::Positive`].
    pub fn is_positive(self) -> bool {
        matches!(self, Sign::Positive)
    }
}

/// Degenerate classification of a record-vs-focal comparison.
///
/// When the induced hyperplane has (numerically) zero coefficients the score
/// difference does not depend on the weight vector at all, so no hyperplane is
/// needed: the record either always or never outranks the focal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneKind {
    /// A proper separating hyperplane that intersects the preference space.
    Proper,
    /// `S(r) > S(p)` for every weight vector (e.g. `r` dominates `p`).
    AlwaysPositive,
    /// `S(r) < S(p)` for every weight vector (e.g. `p` dominates `r`).
    AlwaysNegative,
    /// `S(r) = S(p)` for every weight vector (`r` ties with `p` everywhere).
    Coincident,
}

/// A hyperplane `coeffs · w = rhs` in the working preference space.
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperplane {
    /// Coefficients of the working-space weights.
    pub coeffs: Vec<f64>,
    /// Right-hand side.
    pub rhs: f64,
}

impl Hyperplane {
    /// Builds the separating hyperplane between `record` and `focal` in the
    /// given preference space.
    ///
    /// In the transformed space (Section 3.2) the equation is
    /// `Σ_{i<d} (r_i - r_d - p_i + p_d) w_i = p_d - r_d`.
    /// In the original space (Appendix C) it is `Σ_i (r_i - p_i) w_i = 0`,
    /// which always passes through the origin.
    ///
    /// # Panics
    /// Panics if the record and focal arities do not match `space.data_dim`.
    pub fn separating(record: &[f64], focal: &[f64], space: &PreferenceSpace) -> Self {
        assert_eq!(record.len(), space.data_dim, "record arity mismatch");
        assert_eq!(focal.len(), space.data_dim, "focal arity mismatch");
        let d = space.data_dim;
        match space.space {
            Space::Transformed => {
                let last = d - 1;
                let coeffs = (0..last)
                    .map(|i| (record[i] - record[last]) - (focal[i] - focal[last]))
                    .collect();
                Hyperplane {
                    coeffs,
                    rhs: focal[last] - record[last],
                }
            }
            Space::Original => Hyperplane {
                coeffs: (0..d).map(|i| record[i] - focal[i]).collect(),
                rhs: 0.0,
            },
        }
    }

    /// Dimensionality of the working space this hyperplane lives in.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Signed evaluation `coeffs · w - rhs`.
    pub fn signed_distance(&self, w: &[f64]) -> f64 {
        dot(&self.coeffs, w) - self.rhs
    }

    /// The side of the hyperplane the point `w` lies on, or `None` if it lies
    /// (numerically) on the hyperplane itself.
    pub fn side(&self, w: &[f64]) -> Option<Sign> {
        let v = self.signed_distance(w);
        if v > GEOM_EPS {
            Some(Sign::Positive)
        } else if v < -GEOM_EPS {
            Some(Sign::Negative)
        } else {
            None
        }
    }

    /// Classifies the hyperplane: proper, or degenerate (constant-sign).
    pub fn kind(&self) -> PlaneKind {
        let zero = self.coeffs.iter().all(|c| c.abs() < GEOM_EPS);
        if !zero {
            return PlaneKind::Proper;
        }
        if self.rhs > GEOM_EPS {
            // coeffs·w = 0 < rhs everywhere, so S(r) - S(p) < 0 never reaches 0:
            // the "positive" side coeffs·w > rhs is empty.
            PlaneKind::AlwaysNegative
        } else if self.rhs < -GEOM_EPS {
            PlaneKind::AlwaysPositive
        } else {
            PlaneKind::Coincident
        }
    }

    /// The linear constraint describing one side of this hyperplane.
    ///
    /// `strict` selects the open halfspace (used for feasibility of open
    /// cells) versus its closure (used for score-bound optimization).
    pub fn constraint(&self, sign: Sign, strict: bool) -> LinearConstraint {
        let op = match (sign, strict) {
            (Sign::Positive, true) => Relation::Greater,
            (Sign::Positive, false) => Relation::GreaterEq,
            (Sign::Negative, true) => Relation::Less,
            (Sign::Negative, false) => Relation::LessEq,
        };
        LinearConstraint::new(self.coeffs.clone(), op, self.rhs)
    }
}

/// A reference to one side of a stored hyperplane.
///
/// The kSPR algorithms keep all hyperplanes in a central store and represent
/// cells implicitly as sets of `(hyperplane id, sign)` pairs; this type is
/// that pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Halfspace {
    /// Index of the hyperplane in the caller's hyperplane store.
    pub plane: usize,
    /// Which side of the hyperplane.
    pub sign: Sign,
}

impl Halfspace {
    /// The positive side of hyperplane `plane`.
    pub fn positive(plane: usize) -> Self {
        Self {
            plane,
            sign: Sign::Positive,
        }
    }

    /// The negative side of hyperplane `plane`.
    pub fn negative(plane: usize) -> Self {
        Self {
            plane,
            sign: Sign::Negative,
        }
    }

    /// True iff this is a positive halfspace (the competing record wins).
    pub fn is_positive(&self) -> bool {
        self.sign.is_positive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(r: &[f64], w: &[f64]) -> f64 {
        dot(r, w)
    }

    #[test]
    fn transformed_hyperplane_matches_score_comparison() {
        // Restaurants from Figure 1 of the paper (value, service, ambiance).
        let p = vec![5.0, 5.0, 7.0]; // Kyma
        let r1 = vec![3.0, 8.0, 8.0]; // L'Entrecôte
        let space = PreferenceSpace::transformed(3);
        let h = Hyperplane::separating(&r1, &p, &space);
        // Check consistency on a grid of weight vectors.
        for a in 1..9 {
            for b in 1..(9 - a) {
                let w_work = vec![a as f64 / 10.0, b as f64 / 10.0];
                let w_full = space.to_full_weight(&w_work);
                let diff = score(&r1, &w_full) - score(&p, &w_full);
                match h.side(&w_work) {
                    Some(Sign::Positive) => assert!(diff > 0.0, "w={w_work:?}"),
                    Some(Sign::Negative) => assert!(diff < 0.0, "w={w_work:?}"),
                    None => assert!(diff.abs() < 1e-9),
                }
            }
        }
    }

    #[test]
    fn original_hyperplane_passes_through_origin() {
        let space = PreferenceSpace::original(3);
        let h = Hyperplane::separating(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0], &space);
        assert_eq!(h.rhs, 0.0);
        assert_eq!(h.coeffs, vec![-2.0, 0.0, 2.0]);
    }

    #[test]
    fn original_hyperplane_matches_score_comparison() {
        let space = PreferenceSpace::original(3);
        let r = vec![4.0, 1.0, 7.0];
        let p = vec![5.0, 5.0, 5.0];
        let h = Hyperplane::separating(&r, &p, &space);
        for w in [[0.2, 0.3, 0.5], [0.7, 0.2, 0.1], [0.1, 0.1, 0.8]] {
            let diff = score(&r, &w) - score(&p, &w);
            match h.side(&w) {
                Some(Sign::Positive) => assert!(diff > 0.0),
                Some(Sign::Negative) => assert!(diff < 0.0),
                None => assert!(diff.abs() < 1e-9),
            }
        }
    }

    #[test]
    fn degenerate_classifications() {
        let space = PreferenceSpace::transformed(2);
        // Record strictly better in every attribute by the same margin.
        let better = Hyperplane::separating(&[5.0, 5.0], &[3.0, 3.0], &space);
        assert_eq!(better.kind(), PlaneKind::AlwaysPositive);
        let worse = Hyperplane::separating(&[3.0, 3.0], &[5.0, 5.0], &space);
        assert_eq!(worse.kind(), PlaneKind::AlwaysNegative);
        let tie = Hyperplane::separating(&[4.0, 4.0], &[4.0, 4.0], &space);
        assert_eq!(tie.kind(), PlaneKind::Coincident);
        let proper = Hyperplane::separating(&[5.0, 3.0], &[3.0, 5.0], &space);
        assert_eq!(proper.kind(), PlaneKind::Proper);
    }

    #[test]
    fn constraint_generation() {
        let h = Hyperplane {
            coeffs: vec![1.0, -2.0],
            rhs: 0.5,
        };
        let c = h.constraint(Sign::Positive, true);
        assert_eq!(c.op, Relation::Greater);
        assert_eq!(c.rhs, 0.5);
        let c = h.constraint(Sign::Negative, false);
        assert_eq!(c.op, Relation::LessEq);
    }

    #[test]
    fn sign_flip_and_halfspace_helpers() {
        assert_eq!(Sign::Positive.flip(), Sign::Negative);
        assert!(Halfspace::positive(3).is_positive());
        assert!(!Halfspace::negative(3).is_positive());
        assert_eq!(Halfspace::positive(7).plane, 7);
    }
}
