//! Small dense linear-algebra helpers.
//!
//! Vertex enumeration intersects `d'` hyperplanes at a time, which requires
//! solving `d' × d'` linear systems (`d' ≤ 6` in every experiment).  Gaussian
//! elimination with partial pivoting is exact enough and keeps this crate free
//! of external dependencies.

use crate::GEOM_EPS;

/// Solves the square linear system `A x = b` with Gaussian elimination and
/// partial pivoting.
///
/// Returns `None` when the matrix is (numerically) singular.
///
/// # Panics
/// Panics if `a` is not square or `b` has a mismatched length.
#[allow(clippy::needless_range_loop)] // indexing two rows of the same matrix
pub fn solve_linear_system(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    assert_eq!(b.len(), n, "rhs length must match matrix size");
    for row in a {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    if n == 0 {
        return Some(Vec::new());
    }

    // Augmented matrix [A | b].
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivoting: pick the row with the largest absolute entry.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() < GEOM_EPS {
            return None;
        }
        m.swap(col, pivot_row);
        let pivot = m[col][col];
        for row in (col + 1)..n {
            let factor = m[row][col] / pivot;
            if factor != 0.0 {
                for k in col..=n {
                    m[row][k] -= factor * m[col][k];
                }
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for col in (row + 1)..n {
            acc -= m[row][col] * x[col];
        }
        x[row] = acc / m[row][row];
    }
    Some(x)
}

/// Computes the determinant of a square matrix (used for simplex volumes).
#[allow(clippy::needless_range_loop)] // indexing two rows of the same matrix
pub fn determinant(a: &[Vec<f64>]) -> f64 {
    let n = a.len();
    if n == 0 {
        return 1.0;
    }
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut det = 1.0;
    for col in 0..n {
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                m[i][col]
                    .abs()
                    .partial_cmp(&m[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if m[pivot_row][col].abs() < GEOM_EPS {
            return 0.0;
        }
        if pivot_row != col {
            m.swap(col, pivot_row);
            det = -det;
        }
        det *= m[col][col];
        let pivot = m[col][col];
        for row in (col + 1)..n {
            let factor = m[row][col] / pivot;
            if factor != 0.0 {
                for k in col..n {
                    m[row][k] -= factor * m[col][k];
                }
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear_system(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5, x - y = 1  ->  x = 2, y = 1
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve_linear_system(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear_system(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn empty_system() {
        assert_eq!(solve_linear_system(&[], &[]), Some(vec![]));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_linear_system(&a, &[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_known_matrices() {
        assert!((determinant(&[vec![2.0]]) - 2.0).abs() < 1e-12);
        assert!((determinant(&[vec![1.0, 2.0], vec![3.0, 4.0]]) + 2.0).abs() < 1e-12);
        assert_eq!(determinant(&[vec![1.0, 2.0], vec![2.0, 4.0]]), 0.0);
    }

    #[test]
    fn three_by_three_system() {
        let a = vec![
            vec![1.0, 1.0, 1.0],
            vec![0.0, 2.0, 5.0],
            vec![2.0, 5.0, -1.0],
        ];
        let x = solve_linear_system(&a, &[6.0, -4.0, 27.0]).unwrap();
        assert!((x[0] - 5.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 2.0).abs() < 1e-9);
    }
}
