//! The unified kSPR query engine.
//!
//! Every CellTree-based kSPR method of the paper — CTA (§4), P-CTA (§5),
//! LP-CTA (§6) and the k-skyband baseline (Appendix B) — runs the *same*
//! traversal loop:
//!
//! 1. preprocess the dataset against the focal record (Section 3.1) — and,
//!    for bound-using policies, restrict the competitors to their
//!    `k_effective`-skyband so the look-ahead bounds read an update-stable
//!    aggregate tree (see `restrict_to_witness_skyband`),
//! 2. insert batches of record hyperplanes into the [`CellTree`],
//! 3. optionally prune / report cells early with look-ahead rank bounds,
//! 4. optionally report cells with the pivot test of Lemma 5 and derive the
//!    next batch from a constrained skyline,
//! 5. collect the surviving promising cells into the result.
//!
//! What distinguishes the methods is only *which records are expanded, in
//! what order, and which of the optional stages run* — exactly the knobs the
//! [`ExpansionPolicy`] trait exposes.  [`QueryEngine`] owns the shared loop;
//! the policies ([`CtaPolicy`], [`SkybandPolicy`], [`ProgressivePolicy`]) are
//! small, stateless strategy objects.  Earlier revisions of this crate kept
//! three copies of the traversal in `algorithms.rs`; they now all route
//! through this module.
//!
//! # Batched execution
//!
//! [`QueryEngine::run_batch`] answers many focal-record queries over the same
//! dataset and `k` in parallel (one worker per core, via `rayon`), sharing
//! the preprocessing work that does not depend on the focal record:
//!
//! * **R-tree reuse** — the dataset index is reference-counted and shared
//!   with every worker; additionally, queries whose Section-3.1 filter
//!   removes no record reuse it outright instead of bulk-loading a
//!   query-local copy (see [`crate::prep::prepare_with_index`]).
//! * **Skyband filter** — the dataset-level k-skyband is computed once; the
//!   per-query band of [`SkybandPolicy`] is provably contained in it, so the
//!   per-query computation only scans the precomputed candidates.
//! * **Dominance graph** — the dominator lists of all skyband members are
//!   computed once; per-query traversals translate them through the
//!   preprocessing id mapping instead of re-deriving them pairwise.
//!
//! All three shortcuts are result-preserving: `run_batch` returns exactly
//! what [`QueryEngine::run`] returns for each focal record individually
//! (`tests/batch_consistency.rs` in the umbrella crate asserts this).
//!
//! # Dynamic datasets
//!
//! The engine owns a [`crate::dataset::DatasetStore`] — a mutable,
//! epoch-versioned dataset handle — and a **shared-prep cache**:
//!
//! * [`QueryEngine::insert`] / [`QueryEngine::delete`] maintain the dataset
//!   R-tree *and* every cached [`SharedPrep`] incrementally (an insert can
//!   only evict band members, a delete can only promote outsiders), so a
//!   steady stream of updates never triggers a from-scratch rebuild.
//! * The cache is keyed by `k` with the prefix property of the k-skyband:
//!   the band for `k' <= k` is exactly the members with fewer than `k'`
//!   dominators, so one computed band serves every smaller `k` through
//!   [`SharedPrep::view_for`].
//! * [`QueryEngine::run_batch`] on an unchanged dataset therefore performs
//!   **zero** shared-prep recomputations; the
//!   [`QueryEngine::shared_prep_computes`] counter asserts this in tests.

use crate::algorithms::Algorithm;
use crate::bounds::{rank_bounds, BoundDecision};
use crate::celltree::CellTree;
use crate::config::KsprConfig;
use crate::dataset::{Dataset, DatasetStore};
use crate::hyperplanes::HyperplaneStore;
use crate::maxrank::run_imaxrank;
use crate::prep::{prepare_with_index, FilteredQuery, Prepared};
use crate::result::{KsprResult, Region};
use crate::rtopk::run_rtopk;
use crate::stats::QueryStats;
use kspr_geometry::hyperplane::Hyperplane;
use kspr_geometry::{Halfspace, PlaneKind, PreferenceSpace, Sign};
use kspr_spatial::{
    bbs_skyline, dominates, k_skyband, k_skyband_live, k_skyband_restricted, skyline_excluding,
    AggregateRTree, DominanceGraph, Record, RecordId,
};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Expansion policies
// ---------------------------------------------------------------------------

/// A prepared (focal-filtered) query, handed to policies when they decide
/// which records to expand.
pub struct PreparedQuery<'a> {
    /// The filtered competitor set (Section 3.1 preprocessing output).
    pub filtered: &'a FilteredQuery,
    /// Batch-shared preprocessing, when running under
    /// [`QueryEngine::run_batch`].
    pub shared: Option<&'a SharedPrep>,
    /// The original (pre-preprocessing) rank threshold `k`.
    pub k: usize,
}

/// The strategy axis along which CTA, P-CTA, LP-CTA and the k-skyband
/// baseline differ: which records are expanded into the CellTree, in what
/// order, and which optional pruning stages run between batches.
///
/// Implementations must be stateless (`&self` methods only) so a single
/// policy value can serve many concurrent queries in batch mode.
pub trait ExpansionPolicy: Sync {
    /// The algorithm this policy implements.
    fn algorithm(&self) -> Algorithm;

    /// The first batch of (filtered) record ids to expand.
    fn initial_batch(&self, query: &PreparedQuery<'_>) -> Vec<RecordId>;

    /// Use the dominance-graph insertion shortcut of Lemma 4/5?
    fn use_dominance(&self) -> bool {
        false
    }

    /// Run the look-ahead rank-bound stage (Section 6) after each batch?
    fn use_rank_bounds(&self) -> bool {
        false
    }

    /// Run the pivot-based reporting of Lemma 5 between batches and keep
    /// expanding constrained skylines until every cell is decided?
    fn progressive(&self) -> bool {
        false
    }

    /// Can this policy exploit batch-shared preprocessing?  When it cannot
    /// (e.g. plain CTA expands everything in dataset order and never consults
    /// the skyband or the dominance graph), [`QueryEngine::run_batch`] skips
    /// computing [`SharedPrep`] altogether.
    fn uses_shared_prep(&self) -> bool {
        self.use_dominance()
    }
}

/// CTA (Algorithm 1): expand every competitor in dataset order, one batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtaPolicy;

impl ExpansionPolicy for CtaPolicy {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Cta
    }

    fn initial_batch(&self, query: &PreparedQuery<'_>) -> Vec<RecordId> {
        (0..query.filtered.records.len()).collect()
    }
}

/// The k-skyband baseline (Appendix B): CTA restricted to the k-skyband of
/// the competitor set — by Lemma 6 no other record can affect the result.
#[derive(Debug, Clone, Copy, Default)]
pub struct SkybandPolicy;

impl ExpansionPolicy for SkybandPolicy {
    fn algorithm(&self) -> Algorithm {
        Algorithm::KSkyband
    }

    fn uses_shared_prep(&self) -> bool {
        true
    }

    fn initial_batch(&self, query: &PreparedQuery<'_>) -> Vec<RecordId> {
        let filtered = query.filtered;
        match query.shared {
            // Batch mode: only scan candidates inside the precomputed
            // dataset-level band.  Membership argument: a filtered record
            // with fewer than `k_effective` dominators among the filtered
            // competitors has fewer than `k_effective + dominators(focal) =
            // k` dominators in the full dataset (records the focal record
            // dominates cannot dominate it, and ties are excluded), hence it
            // belongs to the dataset-level k-skyband.
            Some(shared) if shared.k() == query.k => {
                k_skyband_restricted(&filtered.records, filtered.k_effective, |id| {
                    shared.in_skyband(filtered.original_ids[id])
                })
            }
            _ => k_skyband(&filtered.records, filtered.k_effective),
        }
    }
}

/// P-CTA (Algorithm 2) and LP-CTA (Algorithm 3): expand skyline batches,
/// report cells through pivots, and — for LP-CTA — prune/report cells with
/// look-ahead rank bounds first.
#[derive(Debug, Clone, Copy)]
pub struct ProgressivePolicy {
    look_ahead: bool,
}

impl ProgressivePolicy {
    /// The P-CTA configuration (no look-ahead bounds).
    pub fn pcta() -> Self {
        Self { look_ahead: false }
    }

    /// The LP-CTA configuration (with look-ahead bounds).
    pub fn lpcta() -> Self {
        Self { look_ahead: true }
    }
}

impl ExpansionPolicy for ProgressivePolicy {
    fn algorithm(&self) -> Algorithm {
        if self.look_ahead {
            Algorithm::LpCta
        } else {
            Algorithm::Pcta
        }
    }

    fn initial_batch(&self, query: &PreparedQuery<'_>) -> Vec<RecordId> {
        // Invariant 1: the first batch is the skyline of the competitor set.
        bbs_skyline(&query.filtered.tree)
    }

    fn use_dominance(&self) -> bool {
        true
    }

    fn use_rank_bounds(&self) -> bool {
        self.look_ahead
    }

    fn progressive(&self) -> bool {
        true
    }
}

/// The policy implementing `algorithm`, for the CellTree-based methods
/// (`None` for the sweep-based baselines RTOPK and iMaxRank, which do not
/// use the CellTree traversal loop).
pub fn policy_for(algorithm: Algorithm) -> Option<Box<dyn ExpansionPolicy>> {
    match algorithm {
        Algorithm::Cta => Some(Box::new(CtaPolicy)),
        Algorithm::Pcta => Some(Box::new(ProgressivePolicy::pcta())),
        Algorithm::LpCta => Some(Box::new(ProgressivePolicy::lpcta())),
        Algorithm::KSkyband => Some(Box::new(SkybandPolicy)),
        Algorithm::Rtopk | Algorithm::IMaxRank => None,
    }
}

// ---------------------------------------------------------------------------
// Batch-shared preprocessing
// ---------------------------------------------------------------------------

/// Focal-independent preprocessing shared by every query of a batch.
///
/// All contents depend only on the dataset and `k`, never on a focal record,
/// so sharing them cannot change any query's result.  Instances live in the
/// engine's per-`k` cache and are **maintained incrementally** across
/// updates ([`SharedPrep::apply_insert`] / [`SharedPrep::apply_delete`])
/// rather than recomputed per batch.
#[derive(Debug, Clone)]
pub struct SharedPrep {
    k: usize,
    /// The dataset-level k-skyband (original ids, decreasing coordinate-sum
    /// order as produced by [`k_skyband`]).
    skyband: Vec<RecordId>,
    skyband_set: HashSet<RecordId>,
    /// Full dominance adjacency among skyband members, keyed by original id.
    ///
    /// Built by inserting members in skyband order (decreasing coordinate
    /// sum).  A dominator always has a strictly larger coordinate sum than
    /// the records it dominates and — for band members — is itself a band
    /// member, so every member's complete dominator list is present.
    dominance: DominanceGraph,
}

impl SharedPrep {
    /// Computes the shared structures for queries with rank threshold `k`.
    pub fn compute(dataset: &Dataset, k: usize) -> Self {
        let skyband = k_skyband_live(dataset.records(), k, |id| dataset.is_live(id));
        let mut dominance = DominanceGraph::new();
        for &id in &skyband {
            dominance.insert(id, &dataset.records()[id].values);
        }
        let skyband_set = skyband.iter().copied().collect();
        Self {
            k,
            skyband,
            skyband_set,
            dominance,
        }
    }

    /// The `k` the structures were computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The dataset-level k-skyband (original ids).
    pub fn skyband(&self) -> &[RecordId] {
        &self.skyband
    }

    /// True iff the original id belongs to the dataset-level k-skyband.
    pub fn in_skyband(&self, original_id: RecordId) -> bool {
        self.skyband_set.contains(&original_id)
    }

    /// The precomputed dominators (original ids) of a skyband member, or
    /// `None` when the record is not a band member.
    pub fn dominators_of(&self, original_id: RecordId) -> Option<&[RecordId]> {
        if self.dominance.contains(original_id) {
            Some(self.dominance.dominators_of(original_id))
        } else {
            None
        }
    }

    // -----------------------------------------------------------------------
    // Incremental maintenance
    //
    // Correctness rests on two facts about the k-skyband:
    //
    // 1. *Closure*: every dominator of a band member is itself a band member
    //    (if `a` dominates `b` then `D(a) ∪ {a} ⊆ D(b)`, so a non-member
    //    dominator with ≥ k dominators would give `b` more than k).  The
    //    graph's dominator counts are therefore *total* dominator counts.
    // 2. *Witnesses*: a record outside the band has at least k dominators
    //    **inside** the band (take its dominator `z` of maximal coordinate
    //    sum among non-member dominators: `z`'s own ≥ k dominators all have
    //    larger sums and all dominate the record, hence are members).
    //
    // Together they make "fewer than k dominators among the current members"
    // an exact membership test, computable without touching the rest of the
    // dataset.
    // -----------------------------------------------------------------------

    /// Patches the band for a record freshly inserted into the dataset.
    ///
    /// An insert can only *evict*: existing members dominated by the new
    /// record gain one dominator and drop out when they reach `k`.  (Every
    /// record evictable through transitivity is directly dominated by the new
    /// record, so one pass suffices.)  The new record itself joins iff fewer
    /// than `k` members dominate it.
    pub fn apply_insert(&mut self, id: RecordId, values: &[f64]) {
        let doms = self.dominance.dominating_members(values);
        if doms.len() >= self.k {
            // The new record is outside the band; by closure it then cannot
            // dominate any member, so nothing changes.
            debug_assert!(self.dominance.dominated_members(values).is_empty());
            return;
        }
        for m in self.dominance.dominated_members(values) {
            if self.dominance.dominator_count(m) + 1 >= self.k {
                self.remove_member(m);
            } else {
                self.dominance.add_dominator(m, id);
            }
        }
        self.dominance.insert_with_dominators(id, values, doms);
        let sum: f64 = values.iter().sum();
        let pos = self.skyband.partition_point(|&m| self.member_sum(m) > sum);
        self.skyband.insert(pos, id);
        self.skyband_set.insert(id);
    }

    /// Patches the band for a record just deleted from the dataset.
    ///
    /// A delete can only *promote*: records the deleted member dominated lose
    /// one dominator and may fall under `k`.  Deleting a non-member changes
    /// nothing (its dominance never reached into the band).  Candidates are
    /// re-tested against the current members (fact 2 above) in decreasing
    /// coordinate-sum order, so promotions that dominate later candidates are
    /// visible when those candidates are tested.
    pub fn apply_delete(&mut self, id: RecordId, values: &[f64], dataset: &Dataset) {
        if !self.skyband_set.contains(&id) {
            return;
        }
        self.remove_member(id);
        let mut candidates: Vec<(f64, RecordId)> = dataset
            .live_records()
            .filter(|r| !self.skyband_set.contains(&r.id) && dominates(values, &r.values))
            .map(|r| (r.values.iter().sum(), r.id))
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        for (sum, rid) in candidates {
            let vals = &dataset.records()[rid].values;
            let doms = self.dominance.dominating_members(vals);
            if doms.len() < self.k {
                self.dominance.insert_with_dominators(rid, vals, doms);
                let pos = self.skyband.partition_point(|&m| self.member_sum(m) > sum);
                self.skyband.insert(pos, rid);
                self.skyband_set.insert(rid);
            }
        }
    }

    /// The band for a smaller rank threshold, derived by the prefix property:
    /// the `k'`-skyband is exactly the members with fewer than `k'`
    /// dominators, with their dominator lists unchanged.
    ///
    /// # Panics
    /// Panics if `k > self.k()` (a larger band cannot be derived).
    pub fn view_for(&self, k: usize) -> SharedPrep {
        assert!(
            k <= self.k,
            "cannot derive a {k}-skyband from a {}-skyband",
            self.k
        );
        let skyband: Vec<RecordId> = self
            .skyband
            .iter()
            .copied()
            .filter(|&m| self.dominance.dominator_count(m) < k)
            .collect();
        let mut dominance = DominanceGraph::new();
        for &m in &skyband {
            let values = self
                .dominance
                .member_values(m)
                .expect("band member has values")
                .to_vec();
            // Dominators of a member with < k dominators have strictly fewer
            // dominators themselves, so the list carries over verbatim.
            let doms = self.dominance.dominators_of(m).to_vec();
            dominance.insert_with_dominators(m, &values, doms);
        }
        let skyband_set = skyband.iter().copied().collect();
        SharedPrep {
            k,
            skyband,
            skyband_set,
            dominance,
        }
    }

    /// Coordinate sum of a member (the band's sort key).
    fn member_sum(&self, id: RecordId) -> f64 {
        self.dominance
            .member_values(id)
            .expect("band member has values")
            .iter()
            .sum()
    }

    /// Drops a member from the band, the set and the dominance graph.
    fn remove_member(&mut self, id: RecordId) {
        self.skyband.retain(|&m| m != id);
        self.skyband_set.remove(&id);
        self.dominance.remove(id);
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The engine's shared-prep cache: one *primary* band (the largest `k`
/// computed so far, patched in place by updates) plus derived smaller-`k`
/// views, all tagged with the dataset epoch they are valid for.
#[derive(Debug, Default)]
struct PrepCache {
    /// Dataset epoch the cached structures reflect.
    epoch: u64,
    /// The band computed for the largest `k` requested so far.
    primary: Option<Arc<SharedPrep>>,
    /// Views derived from `primary` for smaller `k` (and retired primaries).
    views: HashMap<usize, Arc<SharedPrep>>,
}

impl PrepCache {
    fn clear(&mut self) {
        self.primary = None;
        self.views.clear();
    }
}

/// The unified executor for kSPR queries over one (mutable) dataset.
///
/// ```
/// use kspr::{Algorithm, Dataset, KsprConfig, QueryEngine};
///
/// let dataset = Dataset::new(vec![
///     vec![0.3, 0.8, 0.8],
///     vec![0.9, 0.4, 0.4],
///     vec![0.8, 0.3, 0.4],
///     vec![0.4, 0.3, 0.6],
/// ]);
/// let mut engine = QueryEngine::new(&dataset, KsprConfig::default());
///
/// // One query ...
/// let single = engine.run(Algorithm::LpCta, &[0.5, 0.5, 0.7], 3);
///
/// // ... or many at once, in parallel, with shared preprocessing.
/// let focals = vec![vec![0.5, 0.5, 0.7], vec![0.6, 0.6, 0.5]];
/// let batch = engine.run_batch(Algorithm::LpCta, &focals, 3);
/// assert_eq!(batch[0].num_regions(), single.num_regions());
///
/// // The dataset is mutable: updates patch the index and every cached
/// // shared-prep structure incrementally instead of rebuilding them.
/// let id = engine.insert(vec![0.7, 0.7, 0.7]);
/// let after_insert = engine.run_batch(Algorithm::LpCta, &focals, 3);
/// engine.delete(id);
/// let after_delete = engine.run_batch(Algorithm::LpCta, &focals, 3);
/// assert_eq!(after_delete[0].num_regions(), batch[0].num_regions());
/// # let _ = after_insert;
/// ```
pub struct QueryEngine {
    store: DatasetStore,
    config: KsprConfig,
    cache: Mutex<PrepCache>,
    prep_computes: AtomicU64,
}

impl QueryEngine {
    /// Creates an engine over a snapshot-shared handle to `dataset` with the
    /// given configuration.  (The handle is reference-counted; cloning it
    /// copies no records.)
    pub fn new(dataset: &Dataset, config: KsprConfig) -> Self {
        Self::with_store(DatasetStore::new(dataset.clone()), config)
    }

    /// Creates an engine that takes ownership of a mutable dataset store.
    pub fn with_store(store: DatasetStore, config: KsprConfig) -> Self {
        Self {
            store,
            config,
            cache: Mutex::new(PrepCache::default()),
            prep_computes: AtomicU64::new(0),
        }
    }

    /// The dataset this engine queries.
    pub fn dataset(&self) -> &Dataset {
        self.store.dataset()
    }

    /// The mutable dataset store (for epoch inspection).
    pub fn store(&self) -> &DatasetStore {
        &self.store
    }

    /// Snapshot-restore hook: forces the dataset epoch to `epoch` and drops
    /// every cached shared-prep entry (their recorded epochs belong to the
    /// reconstruction path, not the restored one).  See
    /// [`DatasetStore::restore_epoch`]; only meaningful on a freshly rebuilt
    /// engine before it serves its first query.
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.store.restore_epoch(epoch);
        let cache = Self::recovering_get_mut(&mut self.cache);
        cache.primary = None;
        cache.views.clear();
        cache.epoch = epoch;
    }

    /// The configuration applied to every query.
    pub fn config(&self) -> &KsprConfig {
        &self.config
    }

    /// How many times the engine computed a [`SharedPrep`] from scratch.
    ///
    /// Steady-state serving on an unchanged dataset keeps this constant:
    /// cache hits, smaller-`k` views and update patches all cost zero
    /// recomputations.
    pub fn shared_prep_computes(&self) -> u64 {
        self.prep_computes.load(Ordering::Relaxed)
    }

    // -----------------------------------------------------------------------
    // Updates
    // -----------------------------------------------------------------------

    /// Inserts a record, patching the R-tree and every cached shared-prep
    /// structure in place, and returns its id.
    ///
    /// # Panics
    /// Panics if `values` does not match the dataset arity.
    pub fn insert(&mut self, values: Vec<f64>) -> RecordId {
        let id = self.store.insert(values.clone());
        let cache = Self::recovering_get_mut(&mut self.cache);
        if let Some(primary) = &mut cache.primary {
            Arc::make_mut(primary).apply_insert(id, &values);
        }
        // Derived views are cheap to re-derive; drop them instead of patching
        // each one.
        cache.views.clear();
        cache.epoch = self.store.epoch();
        id
    }

    /// Deletes record `id` (returns `false` if it does not exist or was
    /// already deleted), patching the R-tree and every cached shared-prep
    /// structure in place.
    pub fn delete(&mut self, id: RecordId) -> bool {
        self.delete_returning(id).is_some()
    }

    /// Like [`QueryEngine::delete`], but returns the removed record's
    /// attribute values.
    ///
    /// This is the delete hook consumed by the standing-query monitor
    /// (`kspr-monitor`): classifying a delete needs the *removed* values
    /// after the engine state has already moved on, and reading them up front
    /// through the caller would race other handles.
    pub fn delete_returning(&mut self, id: RecordId) -> Option<Vec<f64>> {
        let values = self.store.delete(id)?;
        let cache = Self::recovering_get_mut(&mut self.cache);
        if let Some(primary) = &mut cache.primary {
            Arc::make_mut(primary).apply_delete(id, &values, self.store.dataset());
        }
        cache.views.clear();
        cache.epoch = self.store.epoch();
        Some(values)
    }

    /// Number of live records dominating `values`, stopping early once
    /// `limit` dominators are found (see
    /// [`kspr_spatial::AggregateRTree::count_dominating`]).
    ///
    /// This is the engine-level dominance-delta probe of the standing-query
    /// monitor: an update record with at least `k` live dominators cannot
    /// change any `k`-query's result regions (skyband witness property).
    pub fn count_dominating(&self, values: &[f64], limit: usize) -> usize {
        self.store.dataset().tree().count_dominating(values, limit)
    }

    /// Recovers the cache from a poisoned lock.
    ///
    /// The shared-prep cache is a pure accelerator: every entry can be
    /// recomputed from the dataset, so a panic that poisoned the `Mutex`
    /// (e.g. a panicking query inside the locked region, under `rayon` or
    /// otherwise) must not take the engine down with it.  The poisoned
    /// contents are dropped — a panic mid-update could have left a
    /// half-patched band behind — and the poison flag is cleared so later
    /// queries cache normally again.
    fn recovering_get_mut(cache: &mut Mutex<PrepCache>) -> &mut PrepCache {
        if cache.is_poisoned() {
            cache.clear_poison();
            if let Ok(inner) = cache.get_mut() {
                inner.clear();
            }
        }
        cache.get_mut().expect("prep cache poison was just cleared")
    }

    /// Locks the cache, recovering (and discarding) poisoned contents.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, PrepCache> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.cache.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                guard
            }
        }
    }

    /// The engine's cached shared preprocessing for rank threshold `k` — the
    /// dataset-level k-skyband and the dominance adjacency of its members.
    ///
    /// This is the shard-aware entry point used by the `kspr-serve` front-end:
    /// each shard exposes its (incrementally patched) band through this method
    /// and the serving layer merges the per-shard bands into a global
    /// candidate set.  Served from the per-`k` cache; computes at most once
    /// per (dataset epoch, `k`).
    pub fn shared_prep_for(&self, k: usize) -> Arc<SharedPrep> {
        assert!(k >= 1, "k must be at least 1");
        self.shared_prep(k)
    }

    /// Fetches (or computes) the shared prep for rank threshold `k`.
    ///
    /// Cache discipline: an exact-`k` hit is free; a larger cached band
    /// serves `k` through an `O(band)` view; only a genuinely larger `k`
    /// recomputes (and the old primary is retired into the view map, staying
    /// servable).  With [`KsprConfig::cache_shared_prep`] disabled this
    /// recomputes per call — the pre-cache behavior, kept for ablations.
    fn shared_prep(&self, k: usize) -> Arc<SharedPrep> {
        let compute = || {
            self.prep_computes.fetch_add(1, Ordering::Relaxed);
            Arc::new(SharedPrep::compute(self.store.dataset(), k))
        };
        if !self.config.cache_shared_prep {
            return compute();
        }
        let mut cache = self.lock_cache();
        // Updates patch the cache synchronously, so a stale epoch can only be
        // seen if the store was swapped out from under us; drop everything.
        if cache.epoch != self.store.epoch() {
            cache.clear();
            cache.epoch = self.store.epoch();
        }
        match &cache.primary {
            Some(primary) if primary.k() == k => Arc::clone(primary),
            Some(primary) if primary.k() > k => {
                if let Some(view) = cache.views.get(&k) {
                    return Arc::clone(view);
                }
                let view = Arc::new(primary.view_for(k));
                cache.views.insert(k, Arc::clone(&view));
                view
            }
            _ => {
                let prep = compute();
                if let Some(old) = cache.primary.take() {
                    // The retired primary is still the exact band for its k.
                    cache.views.insert(old.k(), old);
                }
                cache.primary = Some(Arc::clone(&prep));
                prep
            }
        }
    }

    /// Runs one kSPR query.
    ///
    /// # Panics
    /// Panics if `k == 0`, if the focal arity does not match the dataset, or
    /// if [`Algorithm::Rtopk`] is requested on non-2-dimensional data.
    pub fn run(&self, algorithm: Algorithm, focal: &[f64], k: usize) -> KsprResult {
        self.run_shared(algorithm, focal, k, None, 1)
    }

    /// Runs one kSPR query under an explicit expansion policy.
    pub fn run_with_policy(
        &self,
        policy: &dyn ExpansionPolicy,
        focal: &[f64],
        k: usize,
    ) -> KsprResult {
        let clock = std::time::Instant::now();
        let mut result = self.run_policy(policy, focal, k, None, 1);
        result.stats.wall_time_ns = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        result
    }

    /// Runs the query for every focal record in parallel, sharing the
    /// focal-independent preprocessing (dataset index, k-skyband, dominance
    /// graph) across all of them.
    ///
    /// Results are returned in input order and are identical to calling
    /// [`QueryEngine::run`] once per focal record.
    pub fn run_batch(
        &self,
        algorithm: Algorithm,
        focals: &[Vec<f64>],
        k: usize,
    ) -> Vec<KsprResult> {
        let shared = policy_for(algorithm)
            .filter(|policy| policy.uses_shared_prep())
            .map(|_| self.shared_prep(k));
        // The batch fans one query out per core, so each member's intra-query
        // worker grant is resolved against the batch width.
        let concurrent = focals.len().max(1);
        focals
            .par_iter()
            .map(|focal| self.run_shared(algorithm, focal, k, shared.as_deref(), concurrent))
            .collect()
    }

    /// Runs the query for every focal record in parallel under an explicit
    /// expansion policy (the policy analogue of [`QueryEngine::run_batch`]).
    pub fn run_batch_with_policy(
        &self,
        policy: &(dyn ExpansionPolicy + Sync),
        focals: &[Vec<f64>],
        k: usize,
    ) -> Vec<KsprResult> {
        let shared = policy.uses_shared_prep().then(|| self.shared_prep(k));
        let concurrent = focals.len().max(1);
        focals
            .par_iter()
            .map(|focal| {
                let clock = std::time::Instant::now();
                let mut result = self.run_policy(policy, focal, k, shared.as_deref(), concurrent);
                result.stats.wall_time_ns =
                    u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
                result
            })
            .collect()
    }

    fn run_shared(
        &self,
        algorithm: Algorithm,
        focal: &[f64],
        k: usize,
        shared: Option<&SharedPrep>,
        concurrent: usize,
    ) -> KsprResult {
        let clock = std::time::Instant::now();
        let mut result = match policy_for(algorithm) {
            Some(policy) => self.run_policy(policy.as_ref(), focal, k, shared, concurrent),
            // The sweep-based baselines have self-contained drivers.
            None => match algorithm {
                Algorithm::Rtopk => run_rtopk(self.store.dataset(), focal, k, &self.config),
                Algorithm::IMaxRank => run_imaxrank(self.store.dataset(), focal, k, &self.config),
                _ => unreachable!("policy_for covers all CellTree algorithms"),
            },
        };
        result.stats.wall_time_ns = u64::try_from(clock.elapsed().as_nanos()).unwrap_or(u64::MAX);
        result
    }

    /// The shared CellTree traversal loop (steps 2–5 of the module docs).
    fn run_policy(
        &self,
        policy: &dyn ExpansionPolicy,
        focal: &[f64],
        k: usize,
        shared: Option<&SharedPrep>,
        concurrent: usize,
    ) -> KsprResult {
        let mut stats = QueryStats::new();
        let space = PreferenceSpace::new(focal.len(), self.config.space);
        let prep_clock = std::time::Instant::now();
        let elapsed_ns =
            |clock: &std::time::Instant| u64::try_from(clock.elapsed().as_nanos()).unwrap_or(0);

        // Step 1: Section 3.1 preprocessing (with dataset-index reuse).
        let filtered = match prepare_with_index(
            self.store.dataset(),
            focal,
            k,
            self.config.rtree_fanout,
            &mut stats,
        ) {
            Prepared::Empty { .. } => {
                stats.phases.prep_ns += elapsed_ns(&prep_clock);
                return KsprResult::empty(space, stats);
            }
            Prepared::WholeSpace { dominators } => {
                stats.phases.prep_ns += elapsed_ns(&prep_clock);
                let mut result = KsprResult::whole_space(space, dominators + 1, stats);
                if self.config.finalize {
                    result.finalize();
                }
                return result;
            }
            Prepared::Filtered(f) => f,
        };
        // Look-ahead bounds read the competitor R-tree's aggregates, so for
        // bound-using policies the competitor set is first restricted to its
        // k_effective-skyband (sound by the same Lemma 6 argument as the
        // skyband baseline: a record with `k_effective` dominators among the
        // competitors never outscores the focal record inside a result cell,
        // so dropping it preserves every reported region and rank).  Beyond
        // shrinking the bound tree, this makes the *decomposition* of a
        // bound-using run invariant under updates of witnessed records — a
        // record with `k` live dominators sits outside the restricted set
        // both before and after its insert or delete, and cannot move any
        // other record across the skyband boundary (its own dominators
        // transitively dominate everything it dominates).  The standing-query
        // monitor's cell-wise LP-CTA patching rests on exactly this
        // invariance.
        let filtered = if policy.use_rank_bounds() {
            restrict_to_witness_skyband(filtered, self.config.rtree_fanout, shared, k)
        } else {
            filtered
        };
        stats.phases.prep_ns += elapsed_ns(&prep_clock);

        let query = PreparedQuery {
            filtered: &filtered,
            shared,
            k,
        };
        // Intra-query workers: LP-CTA's look-ahead bound reporting depends on
        // the traversal schedule, so it always routes to the sequential path;
        // the schedule-invariant policies (CTA, P-CTA, skyband) get the
        // resolved worker grant.
        let workers = if policy.use_rank_bounds() {
            1
        } else {
            self.config.resolve_intra_workers(concurrent)
        };
        let expansion_clock = std::time::Instant::now();
        let mut traversal = Traversal::new(&filtered, focal, &self.config, stats, shared, workers);
        let mut batch = policy.initial_batch(&query);

        'expansion: loop {
            // Step 2: expand the batch into the CellTree.
            traversal.stats.batches += 1;
            for &id in &batch {
                traversal.process_record(id, policy.use_dominance());
                if traversal.tree.is_exhausted() {
                    break 'expansion;
                }
            }

            // Step 3: look-ahead rank bounds (LP-CTA).
            if policy.use_rank_bounds() {
                traversal.apply_rank_bounds();
                if traversal.tree.is_exhausted() {
                    break;
                }
            }

            // Step 4: pivot-based reporting and the next skyline batch.
            if !policy.progressive() {
                break;
            }
            match traversal.pivot_stage() {
                Some(next) => batch = next,
                None => break,
            }
        }

        // Step 5: whatever survived is part of the result.
        if !traversal.tree.is_exhausted() {
            traversal.collect_remaining();
        }
        let mut result = traversal.finish();
        result.stats.phases.expansion_ns += elapsed_ns(&expansion_clock);
        result
    }
}

/// Restricts a filtered competitor set to its `k_effective`-skyband, the
/// stable core that bound-using policies (LP-CTA) traverse and bound against.
///
/// When batch-shared preprocessing for the same `k` is available the scan is
/// restricted to the precomputed dataset-level band (the membership argument
/// of [`SkybandPolicy::initial_batch`]); the output is identical either way,
/// so single runs and batch members produce bit-identical results.  When
/// nothing is pruned the prepared query (and its possibly-shared tree) is
/// passed through untouched.
fn restrict_to_witness_skyband(
    filtered: FilteredQuery,
    fanout: usize,
    shared: Option<&SharedPrep>,
    k: usize,
) -> FilteredQuery {
    let mut keep = match shared {
        Some(s) if s.k() == k => {
            k_skyband_restricted(&filtered.records, filtered.k_effective, |id| {
                s.in_skyband(filtered.original_ids[id])
            })
        }
        _ => k_skyband(&filtered.records, filtered.k_effective),
    };
    if keep.len() == filtered.records.len() {
        return filtered;
    }
    // The band scan emits decreasing coordinate-sum order; re-id ascending so
    // `original_ids` stays sorted (its binary-search invariant).
    keep.sort_unstable();
    let records: Vec<Record> = keep
        .iter()
        .enumerate()
        .map(|(i, &id)| Record::new(i, filtered.records[id].values.clone()))
        .collect();
    let original_ids: Vec<usize> = keep.iter().map(|&id| filtered.original_ids[id]).collect();
    let tree = Arc::new(AggregateRTree::bulk_load(records.clone(), fanout));
    let io_base = tree.io().reads();
    FilteredQuery {
        records,
        original_ids,
        tree,
        k_effective: filtered.k_effective,
        dominators: filtered.dominators,
        io_base,
    }
}

// ---------------------------------------------------------------------------
// Per-query traversal state
// ---------------------------------------------------------------------------

/// Mutable per-query state of the shared traversal loop: the CellTree, the
/// hyperplane store, the processed-record bookkeeping and the accumulated
/// result regions.
struct Traversal<'a> {
    filtered: &'a FilteredQuery,
    focal: &'a [f64],
    config: &'a KsprConfig,
    shared: Option<&'a SharedPrep>,
    space: PreferenceSpace,
    store: HyperplaneStore,
    tree: CellTree,
    stats: QueryStats,
    regions: Vec<Region>,
    /// plane index per processed (filtered) record id.
    plane_of: HashMap<RecordId, usize>,
    processed: HashSet<RecordId>,
    /// Work-stealing pool for frontier classification (`None` when the
    /// query's worker grant is one — the fully sequential path).
    pool: Option<rayon::ThreadPool>,
    /// Reused scratch for path-halfspace collection (`region_of`, rank-bound
    /// cell systems).
    path_scratch: Vec<Halfspace>,
    /// Reused scratch for full-halfspace collection (pivot stage).
    full_scratch: Vec<Halfspace>,
}

/// Trees below this size are classified sequentially even when a pool is
/// available: forking a handful of nodes costs more than it buys.
const PARALLEL_MIN_NODES: usize = 64;

impl<'a> Traversal<'a> {
    fn new(
        filtered: &'a FilteredQuery,
        focal: &'a [f64],
        config: &'a KsprConfig,
        stats: QueryStats,
        shared: Option<&'a SharedPrep>,
        workers: usize,
    ) -> Self {
        let dim = focal.len();
        let space = PreferenceSpace::new(dim, config.space);
        let store = HyperplaneStore::new(space, focal.to_vec());
        let tree = CellTree::new(
            space,
            filtered.k_effective,
            config.use_lemma2,
            config.use_witness,
        );
        let pool = (workers > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .expect("intra-query worker pool builds")
        });
        Self {
            filtered,
            focal,
            config,
            shared,
            space,
            store,
            tree,
            stats,
            regions: Vec::new(),
            plane_of: HashMap::new(),
            processed: HashSet::new(),
            pool,
            path_scratch: Vec::new(),
            full_scratch: Vec::new(),
        }
    }

    /// Inserts one record's hyperplane into the CellTree (using the dominance
    /// shortcut of Lemma 4/5 when `use_dominance` is set).
    fn process_record(&mut self, id: RecordId, use_dominance: bool) {
        if self.processed.contains(&id) {
            return;
        }
        let values = self.filtered.records[id].values.clone();
        let plane_probe = Hyperplane::separating(&values, self.focal, &self.space);
        self.processed.insert(id);
        self.stats.processed_records += 1;
        match plane_probe.kind() {
            PlaneKind::Coincident => return, // ties are ignored (Section 3.1)
            PlaneKind::AlwaysNegative => return, // can never outrank the focal record
            PlaneKind::AlwaysPositive | PlaneKind::Proper => {}
        }
        let plane = self.store.add(id, &values);
        self.plane_of.insert(id, plane);
        let dominator_planes = if use_dominance {
            self.dominator_planes_of(id, &values)
        } else {
            HashSet::new()
        };
        match &self.pool {
            // Tiny trees fork less work than the scheduling costs; classify
            // them inline.  Either path produces a bit-identical tree.
            Some(pool) if self.tree.num_nodes() >= PARALLEL_MIN_NODES => self.tree.insert_parallel(
                &self.store,
                plane,
                &dominator_planes,
                &mut self.stats,
                pool,
            ),
            _ => self
                .tree
                .insert(&self.store, plane, &dominator_planes, &mut self.stats),
        }
    }

    /// The planes of the already-processed dominators of record `id` — the
    /// "dominance graph" lookup backing the Lemma 4/5 insertion shortcut.
    ///
    /// In batch mode the dominator list of a skyband member comes from the
    /// precomputed [`SharedPrep`] adjacency (translated through the
    /// preprocessing id mapping); otherwise it is derived pairwise against
    /// the processed records, which reproduces the incremental dominance
    /// graph P-CTA maintains (Invariant 1 guarantees dominators are processed
    /// before the records they dominate, so both derivations agree).
    fn dominator_planes_of(&self, id: RecordId, values: &[f64]) -> HashSet<usize> {
        if let Some(shared) = self.shared {
            let original = self.filtered.original_ids[id];
            if let Some(dominators) = shared.dominators_of(original) {
                return dominators
                    .iter()
                    .filter_map(|&orig| self.filtered.filtered_id_of(orig))
                    .filter_map(|fid| self.plane_of.get(&fid))
                    .copied()
                    .collect();
            }
        }
        self.plane_of
            .iter()
            .filter(|(&other, _)| dominates(&self.filtered.records[other].values, values))
            .map(|(_, &plane)| plane)
            .collect()
    }

    /// The look-ahead rank-bound stage of LP-CTA (Section 6): bound the rank
    /// of every not-yet-checked promising cell, pruning or reporting it
    /// outright when the bounds are conclusive.
    fn apply_rank_bounds(&mut self) {
        let k_eff = self.filtered.k_effective;
        for leaf in self.tree.promising_leaves() {
            if self.tree.node(leaf).bounds_checked {
                continue;
            }
            let (sys, grew) = self
                .tree
                .cell_system_with(leaf, &self.store, &mut self.path_scratch);
            self.stats.halfspace_scratch_grows += usize::from(grew);
            let (_, decision) = rank_bounds(
                &sys,
                self.focal,
                &self.filtered.tree,
                &self.filtered.records,
                k_eff,
                self.config.bound_mode,
                &mut self.stats,
            );
            match decision {
                BoundDecision::Prune => {
                    self.tree.eliminate(leaf);
                    self.stats.cells_pruned_by_bounds += 1;
                }
                BoundDecision::Report => {
                    self.report_leaf(leaf);
                    self.stats.cells_reported_by_bounds += 1;
                }
                BoundDecision::Undecided => self.tree.mark_bounds_checked(leaf),
            }
        }
    }

    /// The pivot stage of P-CTA (Lemma 5): report every promising cell whose
    /// pivots dominate all unprocessed records, and compute the next batch —
    /// the unprocessed skyline of the dataset minus the non-pivot union.
    ///
    /// Returns `None` when the traversal is complete (no promising cell left,
    /// or every remaining cell is final).
    fn pivot_stage(&mut self) -> Option<Vec<RecordId>> {
        let promising = self.tree.promising_leaves();
        if promising.is_empty() {
            return None;
        }

        let data_tree = &self.filtered.tree;
        let mut non_pivot_union: HashSet<RecordId> = HashSet::new();
        let mut unreported = Vec::new();
        for leaf in promising {
            let grew = self.tree.full_halfspaces_into(leaf, &mut self.full_scratch);
            self.stats.halfspace_scratch_grows += usize::from(grew);
            let mut pivots: Vec<RecordId> = Vec::new();
            let mut non_pivots: Vec<RecordId> = Vec::new();
            for h in &self.full_scratch {
                let source = self.store.source(h.plane);
                match h.sign {
                    Sign::Negative => pivots.push(source),
                    Sign::Positive => non_pivots.push(source),
                }
            }
            let pivot_values: Vec<&[f64]> = pivots
                .iter()
                .map(|&id| self.filtered.records[id].values.as_slice())
                .collect();
            let processed = &self.processed;
            let witness =
                data_tree.find_not_dominated(&pivot_values, &|rid| processed.contains(&rid));
            match witness {
                None => {
                    // No unprocessed record can affect this cell: report it.
                    self.report_leaf(leaf);
                    self.stats.cells_reported_by_pivots += 1;
                }
                Some(_) => {
                    non_pivot_union.extend(non_pivots);
                    unreported.push(leaf);
                }
            }
        }
        if unreported.is_empty() {
            return None;
        }

        // Next batch: unprocessed records in the skyline of D minus the
        // non-pivot union (Section 5).
        let skyline = skyline_excluding(data_tree, &non_pivot_union);
        let mut next: Vec<RecordId> = skyline
            .into_iter()
            .filter(|id| !self.processed.contains(id))
            .collect();
        if next.is_empty() {
            // Safety net (should not trigger — see the argument in Section 5):
            // process any witnesses that keep the remaining cells unreported.
            for leaf in unreported {
                let grew = self.tree.full_halfspaces_into(leaf, &mut self.full_scratch);
                self.stats.halfspace_scratch_grows += usize::from(grew);
                let pivots: Vec<&[f64]> = self
                    .full_scratch
                    .iter()
                    .filter(|h| h.sign == Sign::Negative)
                    .map(|h| {
                        self.filtered.records[self.store.source(h.plane)]
                            .values
                            .as_slice()
                    })
                    .collect();
                let processed = &self.processed;
                if let Some(w) =
                    data_tree.find_not_dominated(&pivots, &|rid| processed.contains(&rid))
                {
                    next.push(w);
                }
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                // Every record is processed; the remaining promising cells
                // are final.
                return None;
            }
        }
        Some(next)
    }

    /// Wraps a live leaf into a result region (rank is reported with respect
    /// to the *full* dataset, i.e. including the dominators removed by
    /// preprocessing).
    fn region_of(&mut self, leaf: usize) -> Region {
        let rank = self.tree.rank(leaf) + self.filtered.dominators;
        let grew = self.tree.path_halfspaces_into(leaf, &mut self.path_scratch);
        self.stats.halfspace_scratch_grows += usize::from(grew);
        Region::new(rank, self.store.materialize(&self.path_scratch))
    }

    /// Reports a leaf: adds it to the result and removes it from play.
    fn report_leaf(&mut self, leaf: usize) {
        let region = self.region_of(leaf);
        self.regions.push(region);
        self.tree.report(leaf);
    }

    /// Collects every remaining promising leaf into the result (used when the
    /// traversal terminates with the arrangement fully built).
    fn collect_remaining(&mut self) {
        for leaf in self.tree.promising_leaves() {
            let region = self.region_of(leaf);
            self.regions.push(region);
            self.tree.report(leaf);
        }
    }

    /// Finishes the query: packaging, finalization, I/O accounting.
    fn finish(mut self) -> KsprResult {
        self.stats.io_reads = self
            .filtered
            .tree
            .io()
            .reads()
            .saturating_sub(self.filtered.io_base);
        if let Some(model) = &self.config.io_model {
            self.stats.io_time_ms = model.io_time_ms(self.stats.io_reads);
        }
        self.stats.result_regions = self.regions.len();
        // Created (not resident) nodes: with the arena free list the slot
        // count can shrink below the amount of work actually performed, and
        // the creation counter is what Figure 11b reports.
        self.stats.celltree_nodes = self.tree.nodes_created();
        let mut result = KsprResult {
            space: self.space,
            regions: self.regions,
            stats: self.stats,
        };
        if self.config.finalize {
            result.finalize();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn figure1() -> (Dataset, Vec<Vec<f64>>, Vec<f64>) {
        let raw = vec![
            vec![3.0, 8.0, 8.0],
            vec![9.0, 4.0, 4.0],
            vec![8.0, 3.0, 4.0],
            vec![4.0, 3.0, 6.0],
        ];
        (Dataset::new(raw.clone()), raw, vec![5.0, 5.0, 7.0])
    }

    #[test]
    fn policies_expose_their_algorithm() {
        assert_eq!(CtaPolicy.algorithm(), Algorithm::Cta);
        assert_eq!(SkybandPolicy.algorithm(), Algorithm::KSkyband);
        assert_eq!(ProgressivePolicy::pcta().algorithm(), Algorithm::Pcta);
        assert_eq!(ProgressivePolicy::lpcta().algorithm(), Algorithm::LpCta);
        assert!(!CtaPolicy.progressive());
        assert!(!CtaPolicy.use_dominance());
        assert!(ProgressivePolicy::lpcta().use_rank_bounds());
        assert!(!ProgressivePolicy::pcta().use_rank_bounds());
        // Shared preprocessing is only computed for policies that read it.
        assert!(!CtaPolicy.uses_shared_prep());
        assert!(SkybandPolicy.uses_shared_prep());
        assert!(ProgressivePolicy::pcta().uses_shared_prep());
        assert!(ProgressivePolicy::lpcta().uses_shared_prep());
        for alg in [
            Algorithm::Cta,
            Algorithm::Pcta,
            Algorithm::LpCta,
            Algorithm::KSkyband,
        ] {
            assert_eq!(policy_for(alg).unwrap().algorithm(), alg);
        }
        assert!(policy_for(Algorithm::Rtopk).is_none());
        assert!(policy_for(Algorithm::IMaxRank).is_none());
    }

    #[test]
    fn engine_matches_oracle_for_every_policy() {
        let (dataset, raw, focal) = figure1();
        let engine = QueryEngine::new(&dataset, KsprConfig::default());
        for alg in [
            Algorithm::Cta,
            Algorithm::Pcta,
            Algorithm::LpCta,
            Algorithm::KSkyband,
        ] {
            for k in 1..=4 {
                let result = engine.run(alg, &focal, k);
                let agreement = naive::classification_agreement(&result, &raw, &focal, k, 400, 7);
                assert!(agreement > 0.995, "{alg:?} k={k}: agreement {agreement}");
            }
        }
    }

    #[test]
    fn bound_using_policies_are_invariant_under_witnessed_updates() {
        let (dataset, _, focal) = figure1();
        let mut engine = QueryEngine::new(&dataset, KsprConfig::default());
        let k = 1;
        let before = engine.run(Algorithm::LpCta, &focal, k);
        assert!(!before.is_empty() && !before.is_whole_space());
        // (2.5, 7.5, 5.0) is incomparable with the focal record and dominated
        // by record 0 — a witnessed update for k = 1.  The skyband
        // restriction keeps it out of the bound traversal entirely, so the
        // decomposition (not just the covered area) must survive its insert
        // and delete unchanged.
        let update = vec![2.5, 7.5, 5.0];
        assert!(engine.count_dominating(&update, k) >= k);
        assert!(!dominates(&update, &focal) && !dominates(&focal, &update));
        let id = engine.insert(update);
        let after = engine.run(Algorithm::LpCta, &focal, k);
        assert_eq!(before.num_regions(), after.num_regions());
        assert_eq!(before.rank_signature(), after.rank_signature());
        assert_eq!(
            before.stats.processed_records, after.stats.processed_records,
            "a witnessed record must never enter the bound traversal"
        );
        for w in naive::sample_weights(&before.space, 80, 17) {
            assert_eq!(before.contains(&w), after.contains(&w), "at {w:?}");
        }
        assert!(engine.delete(id));
        let restored = engine.run(Algorithm::LpCta, &focal, k);
        assert_eq!(before.num_regions(), restored.num_regions());
        assert_eq!(before.rank_signature(), restored.rank_signature());
    }

    #[test]
    fn run_batch_matches_individual_runs_on_figure1() {
        let (dataset, _, _) = figure1();
        let engine = QueryEngine::new(&dataset, KsprConfig::default());
        let focals = vec![
            vec![5.0, 5.0, 7.0],
            vec![6.0, 6.0, 5.0],
            vec![3.5, 4.0, 7.5],
            vec![9.5, 9.5, 9.5], // dominates everything -> whole space
            vec![1.0, 1.0, 1.0], // dominated by everything -> empty
        ];
        for alg in [
            Algorithm::Cta,
            Algorithm::Pcta,
            Algorithm::LpCta,
            Algorithm::KSkyband,
        ] {
            let batch = engine.run_batch(alg, &focals, 2);
            assert_eq!(batch.len(), focals.len());
            for (focal, from_batch) in focals.iter().zip(&batch) {
                let alone = engine.run(alg, focal, 2);
                assert_eq!(from_batch.num_regions(), alone.num_regions(), "{alg:?}");
                assert_eq!(
                    from_batch.stats.processed_records,
                    alone.stats.processed_records
                );
                assert_eq!(from_batch.stats.celltree_nodes, alone.stats.celltree_nodes);
                for w in naive::sample_weights(&alone.space, 60, 5) {
                    assert_eq!(
                        from_batch.contains(&w),
                        alone.contains(&w),
                        "{alg:?} at {w:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn intra_query_parallelism_is_result_identical() {
        // A deterministic pseudo-random dataset large enough that the
        // CellTree crosses the PARALLEL_MIN_NODES gate.
        let mut state = 0x9E37_79B9_7F4A_7C15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) as f64) / ((1_u64 << 53) as f64)
        };
        let raw: Vec<Vec<f64>> = (0..120)
            .map(|_| (0..3).map(|_| 1.0 + 9.0 * next()).collect())
            .collect();
        let dataset = Dataset::new(raw);
        // Near the skyline so preprocessing leaves a large arrangement.
        let focal = vec![9.0, 3.0, 8.0];
        let seq = QueryEngine::new(&dataset, KsprConfig::default().with_intra_query_threads(1));
        let par = QueryEngine::new(&dataset, KsprConfig::default().with_intra_query_threads(4));
        for alg in [Algorithm::Cta, Algorithm::Pcta] {
            for k in [8, 12] {
                let s = seq.run(alg, &focal, k);
                let p = par.run(alg, &focal, k);
                assert_eq!(s.stats.parallel_inserts, 0, "{alg:?} k={k}");
                assert!(
                    p.stats.parallel_inserts > 0,
                    "{alg:?} k={k}: the parallel path never engaged"
                );
                assert_eq!(s.num_regions(), p.num_regions(), "{alg:?} k={k}");
                // Everything except the scheduling- and timing-metadata
                // counters is bit-identical, including the LP work performed.
                let mut p_stats = p.stats.clone();
                p_stats.parallel_inserts = s.stats.parallel_inserts;
                p_stats.wall_time_ns = s.stats.wall_time_ns;
                assert_eq!(s.stats, p_stats, "{alg:?} k={k}");
                for w in naive::sample_weights(&s.space, 60, 11) {
                    assert_eq!(s.contains(&w), p.contains(&w), "{alg:?} k={k} at {w:?}");
                }
            }
        }
        // LP-CTA's bound reporting is schedule-sensitive: it must ignore the
        // worker grant and run sequentially.
        let lp = par.run(Algorithm::LpCta, &focal, 3);
        assert_eq!(lp.stats.parallel_inserts, 0, "LP-CTA routes sequentially");
    }

    #[test]
    fn shared_prep_dominance_adjacency_is_complete() {
        let (dataset, raw, _) = figure1();
        let shared = SharedPrep::compute(&dataset, 2);
        for &id in shared.skyband() {
            let expected: Vec<usize> = (0..raw.len())
                .filter(|&other| dominates(&raw[other], &raw[id]))
                .collect();
            let mut got = shared.dominators_of(id).unwrap().to_vec();
            got.sort_unstable();
            assert_eq!(got, expected, "record {id}");
        }
        assert_eq!(shared.k(), 2);
    }

    #[test]
    fn steady_state_batches_never_recompute_shared_prep() {
        let (dataset, _, _) = figure1();
        let engine = QueryEngine::new(&dataset, KsprConfig::default());
        let focals = vec![vec![5.0, 5.0, 7.0], vec![6.0, 6.0, 5.0]];

        assert_eq!(engine.shared_prep_computes(), 0);
        engine.run_batch(Algorithm::LpCta, &focals, 3);
        assert_eq!(engine.shared_prep_computes(), 1, "first batch computes");
        engine.run_batch(Algorithm::LpCta, &focals, 3);
        engine.run_batch(Algorithm::Pcta, &focals, 3);
        engine.run_batch(Algorithm::KSkyband, &focals, 3);
        assert_eq!(
            engine.shared_prep_computes(),
            1,
            "unchanged dataset + same k must be pure cache hits"
        );
        // Smaller k is served as a view of the cached band.
        engine.run_batch(Algorithm::LpCta, &focals, 2);
        engine.run_batch(Algorithm::LpCta, &focals, 1);
        assert_eq!(engine.shared_prep_computes(), 1, "k' <= k is derived");
        // A larger k genuinely needs a new band ...
        engine.run_batch(Algorithm::LpCta, &focals, 4);
        assert_eq!(engine.shared_prep_computes(), 2);
        // ... after which the old k is still served without recomputation.
        engine.run_batch(Algorithm::LpCta, &focals, 3);
        engine.run_batch(Algorithm::LpCta, &focals, 4);
        assert_eq!(engine.shared_prep_computes(), 2);
        // CTA does not consult the shared prep at all.
        engine.run_batch(Algorithm::Cta, &focals, 5);
        assert_eq!(engine.shared_prep_computes(), 2);
    }

    #[test]
    fn updates_patch_the_cached_prep_without_recomputation() {
        let (dataset, _, _) = figure1();
        let mut engine = QueryEngine::new(&dataset, KsprConfig::default());
        let focals = vec![vec![5.0, 5.0, 7.0], vec![6.0, 6.0, 5.0]];
        let k = 2;
        engine.run_batch(Algorithm::LpCta, &focals, k);
        assert_eq!(engine.shared_prep_computes(), 1);

        let id = engine.insert(vec![7.0, 7.0, 7.0]);
        let after_insert = engine.run_batch(Algorithm::LpCta, &focals, k);
        engine.delete(id);
        engine.delete(1);
        let after_deletes = engine.run_batch(Algorithm::LpCta, &focals, k);
        assert_eq!(
            engine.shared_prep_computes(),
            1,
            "updates must patch the cached prep, not invalidate it"
        );

        // Every post-update batch matches a from-scratch engine over the same
        // live records.
        for (results, live_raw) in [
            (
                &after_insert,
                vec![
                    vec![3.0, 8.0, 8.0],
                    vec![9.0, 4.0, 4.0],
                    vec![8.0, 3.0, 4.0],
                    vec![4.0, 3.0, 6.0],
                    vec![7.0, 7.0, 7.0],
                ],
            ),
            (
                &after_deletes,
                vec![
                    vec![3.0, 8.0, 8.0],
                    vec![8.0, 3.0, 4.0],
                    vec![4.0, 3.0, 6.0],
                ],
            ),
        ] {
            let fresh = QueryEngine::new(&Dataset::new(live_raw), KsprConfig::default());
            let expected = fresh.run_batch(Algorithm::LpCta, &focals, k);
            for (got, want) in results.iter().zip(&expected) {
                assert_eq!(got.num_regions(), want.num_regions());
                assert_eq!(got.stats.processed_records, want.stats.processed_records);
                for w in naive::sample_weights(&got.space, 60, 17) {
                    assert_eq!(got.contains(&w), want.contains(&w));
                }
            }
        }
    }

    /// Sorted (member, sorted dominators) signature of a band, for equality
    /// checks between incrementally patched and recomputed preps.
    fn band_signature(prep: &SharedPrep) -> Vec<(RecordId, Vec<RecordId>)> {
        let mut sig: Vec<(RecordId, Vec<RecordId>)> = prep
            .skyband()
            .iter()
            .map(|&id| {
                let mut doms = prep.dominators_of(id).unwrap().to_vec();
                doms.sort_unstable();
                (id, doms)
            })
            .collect();
        sig.sort();
        sig
    }

    #[test]
    fn incremental_prep_equals_recomputation_under_random_updates() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..3 {
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            let d = 3;
            let raw: Vec<Vec<f64>> = (0..80)
                .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect();
            let mut store = DatasetStore::from_raw(raw);
            let k = 4;
            let mut prep = SharedPrep::compute(store.dataset(), k);
            for _ in 0..120 {
                if rng.gen_range(0..3) == 0 && store.dataset().len() > 5 {
                    let live: Vec<RecordId> =
                        store.dataset().live_records().map(|r| r.id).collect();
                    let victim = live[rng.gen_range(0..live.len())];
                    let values = store.delete(victim).unwrap();
                    prep.apply_delete(victim, &values, store.dataset());
                } else {
                    let values: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
                    let id = store.insert(values.clone());
                    prep.apply_insert(id, &values);
                }
                let recomputed = SharedPrep::compute(store.dataset(), k);
                assert_eq!(
                    band_signature(&prep),
                    band_signature(&recomputed),
                    "seed {seed}: patched band diverged from recomputation"
                );
                // The smaller-k views derived from the patched band must also
                // match direct computation.
                for smaller in 1..k {
                    assert_eq!(
                        band_signature(&prep.view_for(smaller)),
                        band_signature(&SharedPrep::compute(store.dataset(), smaller)),
                        "seed {seed}: k={smaller} view diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn poisoned_prep_cache_recovers_instead_of_locking_up() {
        let (dataset, _, _) = figure1();
        let mut engine = QueryEngine::new(&dataset, KsprConfig::default());
        let focals = vec![vec![5.0, 5.0, 7.0], vec![6.0, 6.0, 5.0]];
        let before_poison = engine.run_batch(Algorithm::LpCta, &focals, 3);
        assert_eq!(engine.shared_prep_computes(), 1);

        // Poison the cache mutex the way a panicking query would: panic while
        // holding the lock.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.cache.lock().unwrap();
            panic!("query panicked while holding the prep cache");
        }));
        assert!(result.is_err());
        assert!(engine.cache.is_poisoned());

        // Every later query must still be served (the poisoned cache contents
        // are discarded and rebuilt), with identical results ...
        let after_poison = engine.run_batch(Algorithm::LpCta, &focals, 3);
        for (a, b) in before_poison.iter().zip(&after_poison) {
            assert_eq!(a.num_regions(), b.num_regions());
        }
        assert_eq!(
            engine.shared_prep_computes(),
            2,
            "the dropped cache is recomputed once"
        );
        // ... and caching resumes normally (no recompute-per-call lockstep).
        engine.run_batch(Algorithm::LpCta, &focals, 3);
        assert_eq!(engine.shared_prep_computes(), 2);
        assert!(!engine.cache.is_poisoned(), "poison flag must be cleared");

        // The update path recovers too.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = engine.cache.lock().unwrap();
            panic!("poison again");
        }));
        assert!(result.is_err());
        let id = engine.insert(vec![7.0, 7.0, 7.0]);
        assert!(engine.delete(id));
        engine.run_batch(Algorithm::LpCta, &focals, 3);
        for (a, b) in before_poison
            .iter()
            .zip(&engine.run_batch(Algorithm::LpCta, &focals, 3))
        {
            assert_eq!(a.num_regions(), b.num_regions());
        }
    }

    #[test]
    fn delete_returning_hands_back_the_removed_values() {
        let (dataset, _, _) = figure1();
        let mut engine = QueryEngine::new(&dataset, KsprConfig::default());
        assert_eq!(engine.delete_returning(1), Some(vec![9.0, 4.0, 4.0]));
        assert_eq!(engine.delete_returning(1), None, "double delete is a no-op");
        assert_eq!(engine.delete_returning(99), None);
        assert_eq!(engine.dataset().len(), 3);
    }

    #[test]
    fn count_dominating_probes_the_live_dataset() {
        let (dataset, _, _) = figure1();
        let mut engine = QueryEngine::new(&dataset, KsprConfig::default());
        // Records 1 (9,4,4) and 2 (8,3,4) dominate (7.5, 3.0, 4.0).
        assert_eq!(engine.count_dominating(&[7.5, 3.0, 4.0], usize::MAX), 2);
        assert!(engine.count_dominating(&[7.5, 3.0, 4.0], 1) >= 1);
        engine.delete(1);
        assert_eq!(engine.count_dominating(&[7.5, 3.0, 4.0], usize::MAX), 1);
    }

    #[test]
    fn shared_prep_for_serves_from_the_cache() {
        let (dataset, _, _) = figure1();
        let engine = QueryEngine::new(&dataset, KsprConfig::default());
        let a = engine.shared_prep_for(3);
        let b = engine.shared_prep_for(3);
        assert!(Arc::ptr_eq(&a, &b), "same k must be a cache hit");
        assert_eq!(engine.shared_prep_computes(), 1);
        assert_eq!(engine.shared_prep_for(2).k(), 2, "smaller k is a view");
        assert_eq!(engine.shared_prep_computes(), 1);
    }

    #[test]
    fn disabling_the_prep_cache_recomputes_per_batch() {
        let (dataset, _, _) = figure1();
        let engine = QueryEngine::new(&dataset, KsprConfig::default().without_prep_cache());
        let focals = vec![vec![5.0, 5.0, 7.0]];
        engine.run_batch(Algorithm::LpCta, &focals, 3);
        engine.run_batch(Algorithm::LpCta, &focals, 3);
        assert_eq!(engine.shared_prep_computes(), 2);
    }

    #[test]
    fn custom_policy_runs_through_the_engine() {
        /// Expands records in reverse dataset order — still correct, because
        /// CTA-style one-shot policies insert every competitor.
        struct ReverseCta;
        impl ExpansionPolicy for ReverseCta {
            fn algorithm(&self) -> Algorithm {
                Algorithm::Cta
            }
            fn initial_batch(&self, query: &PreparedQuery<'_>) -> Vec<RecordId> {
                (0..query.filtered.records.len()).rev().collect()
            }
        }

        let (dataset, raw, focal) = figure1();
        let engine = QueryEngine::new(&dataset, KsprConfig::default());
        let result = engine.run_with_policy(&ReverseCta, &focal, 3);
        let agreement = naive::classification_agreement(&result, &raw, &focal, 3, 400, 13);
        assert!(agreement > 0.995, "agreement {agreement}");
    }
}
