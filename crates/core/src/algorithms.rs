//! The kSPR algorithm catalogue and its classic free-function entry points.
//!
//! All CellTree-based methods (CTA, P-CTA, LP-CTA, k-skyband) are thin
//! wrappers over the unified [`crate::engine::QueryEngine`], where the single
//! shared traversal loop and the per-algorithm [`crate::engine::ExpansionPolicy`]
//! strategies live.  The sweep-based baselines (RTOPK, iMaxRank) keep their
//! self-contained drivers in [`crate::rtopk`] and [`crate::maxrank`].

use crate::config::KsprConfig;
use crate::dataset::Dataset;
use crate::engine::QueryEngine;
use crate::result::KsprResult;

/// Every method implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Cell Tree Approach (Section 4).
    Cta,
    /// Progressive CTA (Section 5).
    Pcta,
    /// Look-ahead Progressive CTA (Section 6) — the paper's best method.
    LpCta,
    /// k-skyband + CTA baseline (Appendix B).
    KSkyband,
    /// Monochromatic reverse top-k sweep, only valid for `d = 2` data
    /// (Vlachou et al., used as the RTOPK baseline in Figure 10a).
    Rtopk,
    /// Incremental maximum-rank baseline (Mouratidis et al., Figure 10b).
    IMaxRank,
}

impl Algorithm {
    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Cta => "CTA",
            Algorithm::Pcta => "P-CTA",
            Algorithm::LpCta => "LP-CTA",
            Algorithm::KSkyband => "k-skyband",
            Algorithm::Rtopk => "RTOPK",
            Algorithm::IMaxRank => "iMaxRank",
        }
    }
}

/// Runs `algorithm` on `dataset` for focal record `focal` and threshold `k`.
///
/// # Panics
/// Panics if `k == 0`, if the focal arity does not match the dataset, or if
/// [`Algorithm::Rtopk`] is requested on non-2-dimensional data.
pub fn run(
    algorithm: Algorithm,
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    config: &KsprConfig,
) -> KsprResult {
    QueryEngine::new(dataset, config.clone()).run(algorithm, focal, k)
}

/// Runs `algorithm` for every focal record in parallel, with shared
/// preprocessing — the free-function form of
/// [`QueryEngine::run_batch`](crate::engine::QueryEngine::run_batch).
///
/// Results are returned in input order and are identical to calling [`run`]
/// once per focal record.
pub fn run_batch(
    algorithm: Algorithm,
    dataset: &Dataset,
    focals: &[Vec<f64>],
    k: usize,
    config: &KsprConfig,
) -> Vec<KsprResult> {
    QueryEngine::new(dataset, config.clone()).run_batch(algorithm, focals, k)
}

/// CTA — Algorithm 1 of the paper: insert every record's hyperplane into the
/// CellTree (in dataset order) and report the surviving cells.
pub fn run_cta(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    run(Algorithm::Cta, dataset, focal, k, config)
}

/// k-skyband baseline (Appendix B): run CTA restricted to the k-skyband of
/// the competitor set — by Lemma 6 no other record can affect the result.
pub fn run_skyband(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    run(Algorithm::KSkyband, dataset, focal, k, config)
}

/// P-CTA — Algorithm 2 of the paper.
pub fn run_pcta(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    run(Algorithm::Pcta, dataset, focal, k, config)
}

/// LP-CTA — Algorithm 3 of the paper (P-CTA plus look-ahead rank bounds).
pub fn run_lpcta(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    run(Algorithm::LpCta, dataset, focal, k, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn figure1_dataset() -> (Dataset, Vec<Vec<f64>>, Vec<f64>) {
        let raw = vec![
            vec![3.0, 8.0, 8.0],
            vec![9.0, 4.0, 4.0],
            vec![8.0, 3.0, 4.0],
            vec![4.0, 3.0, 6.0],
        ];
        (Dataset::new(raw.clone()), raw, vec![5.0, 5.0, 7.0])
    }

    #[test]
    fn all_celltree_algorithms_agree_with_the_oracle_on_figure1() {
        let (dataset, raw, focal) = figure1_dataset();
        let config = KsprConfig::default();
        for alg in [
            Algorithm::Cta,
            Algorithm::Pcta,
            Algorithm::LpCta,
            Algorithm::KSkyband,
        ] {
            for k in 1..=4 {
                let result = run(alg, &dataset, &focal, k, &config);
                let agreement = naive::classification_agreement(&result, &raw, &focal, k, 400, 7);
                assert!(agreement > 0.995, "{alg:?} k={k}: agreement {agreement}");
            }
        }
    }

    #[test]
    fn algorithms_agree_in_original_space() {
        let (dataset, raw, focal) = figure1_dataset();
        let config = KsprConfig::original_space();
        for alg in [Algorithm::Pcta, Algorithm::LpCta] {
            let result = run(alg, &dataset, &focal, 3, &config);
            let agreement = naive::classification_agreement(&result, &raw, &focal, 3, 400, 11);
            assert!(agreement > 0.995, "{alg:?}: agreement {agreement}");
        }
    }

    #[test]
    fn empty_result_when_focal_is_dominated_k_times() {
        let raw = vec![vec![0.9, 0.9], vec![0.8, 0.8], vec![0.7, 0.7]];
        let dataset = Dataset::new(raw);
        let focal = vec![0.5, 0.5];
        let result = run_lpcta(&dataset, &focal, 2, &KsprConfig::default());
        assert!(result.is_empty());
    }

    #[test]
    fn whole_space_when_focal_dominates_everything() {
        let raw = vec![vec![0.1, 0.2], vec![0.2, 0.1]];
        let dataset = Dataset::new(raw);
        let focal = vec![0.5, 0.5];
        let result = run_pcta(&dataset, &focal, 1, &KsprConfig::default());
        assert_eq!(result.num_regions(), 1);
        assert!((result.impact(0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pcta_processes_fewer_records_than_cta() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let raw: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let dataset = Dataset::new(raw);
        let focal = vec![0.6, 0.6, 0.6];
        let config = KsprConfig::default();
        let cta = run_cta(&dataset, &focal, 5, &config);
        let pcta = run_pcta(&dataset, &focal, 5, &config);
        assert!(pcta.stats.processed_records <= cta.stats.processed_records);
        assert!(pcta.stats.celltree_nodes <= cta.stats.celltree_nodes);
    }

    #[test]
    fn algorithm_labels() {
        assert_eq!(Algorithm::LpCta.label(), "LP-CTA");
        assert_eq!(Algorithm::Rtopk.label(), "RTOPK");
    }
}
