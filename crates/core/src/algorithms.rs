//! The kSPR algorithms: CTA (§4), P-CTA (§5), LP-CTA (§6) and the
//! k-skyband baseline (Appendix B), plus a dispatcher over all methods.

use crate::bounds::{rank_bounds, BoundDecision};
use crate::celltree::CellTree;
use crate::config::KsprConfig;
use crate::dataset::Dataset;
use crate::hyperplanes::HyperplaneStore;
use crate::maxrank::run_imaxrank;
use crate::prep::{prepare, FilteredQuery, Prepared};
use crate::result::{KsprResult, Region};
use crate::rtopk::run_rtopk;
use crate::stats::QueryStats;
use kspr_geometry::{PlaneKind, PreferenceSpace, Sign};
use kspr_geometry::hyperplane::Hyperplane;
use kspr_spatial::{bbs_skyline, k_skyband, skyline_excluding, DominanceGraph, RecordId};
use std::collections::{HashMap, HashSet};

/// Every method implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Cell Tree Approach (Section 4).
    Cta,
    /// Progressive CTA (Section 5).
    Pcta,
    /// Look-ahead Progressive CTA (Section 6) — the paper's best method.
    LpCta,
    /// k-skyband + CTA baseline (Appendix B).
    KSkyband,
    /// Monochromatic reverse top-k sweep, only valid for `d = 2` data
    /// (Vlachou et al., used as the RTOPK baseline in Figure 10a).
    Rtopk,
    /// Incremental maximum-rank baseline (Mouratidis et al., Figure 10b).
    IMaxRank,
}

impl Algorithm {
    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Cta => "CTA",
            Algorithm::Pcta => "P-CTA",
            Algorithm::LpCta => "LP-CTA",
            Algorithm::KSkyband => "k-skyband",
            Algorithm::Rtopk => "RTOPK",
            Algorithm::IMaxRank => "iMaxRank",
        }
    }
}

/// Runs `algorithm` on `dataset` for focal record `focal` and threshold `k`.
///
/// # Panics
/// Panics if `k == 0`, if the focal arity does not match the dataset, or if
/// [`Algorithm::Rtopk`] is requested on non-2-dimensional data.
pub fn run(
    algorithm: Algorithm,
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    config: &KsprConfig,
) -> KsprResult {
    match algorithm {
        Algorithm::Cta => run_cta(dataset, focal, k, config),
        Algorithm::Pcta => run_pcta(dataset, focal, k, config),
        Algorithm::LpCta => run_lpcta(dataset, focal, k, config),
        Algorithm::KSkyband => run_skyband(dataset, focal, k, config),
        Algorithm::Rtopk => run_rtopk(dataset, focal, k, config),
        Algorithm::IMaxRank => run_imaxrank(dataset, focal, k, config),
    }
}

/// Shared per-query context for the CellTree-based algorithms.
struct Engine<'a> {
    filtered: &'a FilteredQuery,
    focal: &'a [f64],
    config: &'a KsprConfig,
    space: PreferenceSpace,
    store: HyperplaneStore,
    tree: CellTree,
    stats: QueryStats,
    regions: Vec<Region>,
    /// plane index per processed (filtered) record id.
    plane_of: HashMap<RecordId, usize>,
    processed: HashSet<RecordId>,
    dominance: DominanceGraph,
}

impl<'a> Engine<'a> {
    fn new(
        filtered: &'a FilteredQuery,
        focal: &'a [f64],
        config: &'a KsprConfig,
        stats: QueryStats,
    ) -> Self {
        let dim = focal.len();
        let space = PreferenceSpace::new(dim, config.space);
        let store = HyperplaneStore::new(space, focal.to_vec());
        let tree = CellTree::new(
            space,
            filtered.k_effective,
            config.use_lemma2,
            config.use_witness,
        );
        Self {
            filtered,
            focal,
            config,
            space,
            store,
            tree,
            stats,
            regions: Vec::new(),
            plane_of: HashMap::new(),
            processed: HashSet::new(),
            dominance: DominanceGraph::new(),
        }
    }

    /// Inserts one record's hyperplane into the CellTree (using the dominance
    /// graph shortcut when `use_dominance` is set).
    fn process_record(&mut self, id: RecordId, use_dominance: bool) {
        if self.processed.contains(&id) {
            return;
        }
        let values = self.filtered.records[id].values.clone();
        let plane_probe = Hyperplane::separating(&values, self.focal, &self.space);
        self.processed.insert(id);
        self.stats.processed_records += 1;
        match plane_probe.kind() {
            PlaneKind::Coincident => return, // ties are ignored (Section 3.1)
            PlaneKind::AlwaysNegative => return, // can never outrank the focal record
            PlaneKind::AlwaysPositive | PlaneKind::Proper => {}
        }
        let plane = self.store.add(id, &values);
        self.plane_of.insert(id, plane);
        let dominator_planes: HashSet<usize> = if use_dominance {
            self.dominance.insert(id, &values);
            self.dominance
                .dominators_of(id)
                .iter()
                .filter_map(|d| self.plane_of.get(d))
                .copied()
                .collect()
        } else {
            HashSet::new()
        };
        self.tree
            .insert(&self.store, plane, &dominator_planes, &mut self.stats);
    }

    /// Wraps a live leaf into a result region (rank is reported with respect
    /// to the *full* dataset, i.e. including the dominators removed by
    /// preprocessing).
    fn region_of(&self, leaf: usize) -> Region {
        let rank = self.tree.rank(leaf) + self.filtered.dominators;
        let halves = self.tree.path_halfspaces(leaf);
        Region::new(rank, self.store.materialize(&halves))
    }

    /// Reports a leaf: adds it to the result and removes it from play.
    fn report_leaf(&mut self, leaf: usize) {
        self.regions.push(self.region_of(leaf));
        self.tree.report(leaf);
    }

    /// Collects every remaining promising leaf into the result (used when the
    /// algorithm terminates with the arrangement fully built).
    fn collect_remaining(&mut self) {
        for leaf in self.tree.promising_leaves() {
            self.regions.push(self.region_of(leaf));
            self.tree.report(leaf);
        }
    }

    /// Finishes the query: packaging, finalization, I/O accounting.
    fn finish(mut self) -> KsprResult {
        self.stats.io_reads = self.filtered.tree.io().reads();
        if let Some(model) = &self.config.io_model {
            self.stats.io_time_ms = model.io_time_ms(self.stats.io_reads);
        }
        self.stats.result_regions = self.regions.len();
        self.stats.celltree_nodes = self.tree.num_nodes();
        let mut result = KsprResult {
            space: self.space,
            regions: self.regions,
            stats: self.stats,
        };
        if self.config.finalize {
            result.finalize();
        }
        result
    }
}

/// Handles the degenerate outcomes of preprocessing; returns the filtered
/// query in the general case.
enum PrepOutcome {
    Done(KsprResult),
    Go(FilteredQuery, QueryStats),
}

fn preprocess(
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    config: &KsprConfig,
) -> PrepOutcome {
    let mut stats = QueryStats::new();
    let space = PreferenceSpace::new(focal.len(), config.space);
    match prepare(
        dataset.records(),
        focal,
        k,
        config.rtree_fanout,
        &mut stats,
    ) {
        Prepared::Empty { .. } => PrepOutcome::Done(KsprResult::empty(space, stats)),
        Prepared::WholeSpace { dominators } => {
            let mut result = KsprResult::whole_space(space, dominators + 1, stats);
            if config.finalize {
                result.finalize();
            }
            PrepOutcome::Done(result)
        }
        Prepared::Filtered(f) => PrepOutcome::Go(f, stats),
    }
}

/// CTA — Algorithm 1 of the paper: insert every record's hyperplane into the
/// CellTree (in dataset order) and report the surviving cells.
pub fn run_cta(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    let (filtered, stats) = match preprocess(dataset, focal, k, config) {
        PrepOutcome::Done(r) => return r,
        PrepOutcome::Go(f, stats) => (f, stats),
    };
    let mut engine = Engine::new(&filtered, focal, config, stats);
    for id in 0..filtered.records.len() {
        engine.process_record(id, false);
        if engine.tree.is_exhausted() {
            break;
        }
    }
    if !engine.tree.is_exhausted() {
        engine.collect_remaining();
    }
    engine.finish()
}

/// k-skyband baseline (Appendix B): run CTA restricted to the k-skyband of
/// the competitor set — by Lemma 6 no other record can affect the result.
pub fn run_skyband(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    let (filtered, stats) = match preprocess(dataset, focal, k, config) {
        PrepOutcome::Done(r) => return r,
        PrepOutcome::Go(f, stats) => (f, stats),
    };
    let band = k_skyband(&filtered.records, filtered.k_effective);
    let mut engine = Engine::new(&filtered, focal, config, stats);
    for id in band {
        engine.process_record(id, false);
        if engine.tree.is_exhausted() {
            break;
        }
    }
    if !engine.tree.is_exhausted() {
        engine.collect_remaining();
    }
    engine.finish()
}

/// P-CTA — Algorithm 2 of the paper.
pub fn run_pcta(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    run_progressive(dataset, focal, k, config, false)
}

/// LP-CTA — Algorithm 3 of the paper (P-CTA plus look-ahead rank bounds).
pub fn run_lpcta(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    run_progressive(dataset, focal, k, config, true)
}

fn run_progressive(
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    config: &KsprConfig,
    use_bounds: bool,
) -> KsprResult {
    let (filtered, stats) = match preprocess(dataset, focal, k, config) {
        PrepOutcome::Done(r) => return r,
        PrepOutcome::Go(f, stats) => (f, stats),
    };
    let k_eff = filtered.k_effective;
    let data_tree = &filtered.tree;
    let mut engine = Engine::new(&filtered, focal, config, stats);

    // First batch: the skyline of the competitor set (Invariant 1).
    let mut batch: Vec<RecordId> = bbs_skyline(data_tree);

    loop {
        engine.stats.batches += 1;
        for &id in &batch {
            engine.process_record(id, true);
        }
        if engine.tree.is_exhausted() {
            break;
        }

        // LP-CTA look-ahead: bound the rank of every not-yet-checked
        // promising cell, pruning or reporting it outright when possible.
        if use_bounds {
            for leaf in engine.tree.promising_leaves() {
                if engine.tree.node(leaf).bounds_checked {
                    continue;
                }
                let sys = engine.tree.cell_system(leaf, &engine.store);
                let (_, decision) = rank_bounds(
                    &sys,
                    focal,
                    data_tree,
                    &filtered.records,
                    k_eff,
                    config.bound_mode,
                    &mut engine.stats,
                );
                match decision {
                    BoundDecision::Prune => {
                        engine.tree.eliminate(leaf);
                        engine.stats.cells_pruned_by_bounds += 1;
                    }
                    BoundDecision::Report => {
                        engine.report_leaf(leaf);
                        engine.stats.cells_reported_by_bounds += 1;
                    }
                    BoundDecision::Undecided => engine.tree.mark_bounds_checked(leaf),
                }
            }
            if engine.tree.is_exhausted() {
                break;
            }
        }

        let promising = engine.tree.promising_leaves();
        if promising.is_empty() {
            break;
        }

        // Pivot-based reporting (Lemma 5) and collection of the non-pivot
        // union that drives the next skyline recomputation.
        let mut non_pivot_union: HashSet<RecordId> = HashSet::new();
        let mut unreported = Vec::new();
        for leaf in promising {
            let full = engine.tree.full_halfspaces(leaf);
            let mut pivots: Vec<RecordId> = Vec::new();
            let mut non_pivots: Vec<RecordId> = Vec::new();
            for h in &full {
                let source = engine.store.source(h.plane);
                match h.sign {
                    Sign::Negative => pivots.push(source),
                    Sign::Positive => non_pivots.push(source),
                }
            }
            let pivot_values: Vec<&[f64]> = pivots
                .iter()
                .map(|&id| filtered.records[id].values.as_slice())
                .collect();
            let processed = &engine.processed;
            let witness =
                data_tree.find_not_dominated(&pivot_values, &|rid| processed.contains(&rid));
            match witness {
                None => {
                    // No unprocessed record can affect this cell: report it.
                    engine.report_leaf(leaf);
                    engine.stats.cells_reported_by_pivots += 1;
                }
                Some(_) => {
                    non_pivot_union.extend(non_pivots);
                    unreported.push(leaf);
                }
            }
        }
        if unreported.is_empty() {
            break;
        }

        // Next batch: unprocessed records in the skyline of D minus the
        // non-pivot union (Section 5).
        let skyline = skyline_excluding(data_tree, &non_pivot_union);
        let mut next: Vec<RecordId> = skyline
            .into_iter()
            .filter(|id| !engine.processed.contains(id))
            .collect();
        if next.is_empty() {
            // Safety net (should not trigger — see the argument in Section 5):
            // process any witnesses that keep the remaining cells unreported.
            for leaf in unreported {
                let full = engine.tree.full_halfspaces(leaf);
                let pivots: Vec<&[f64]> = full
                    .iter()
                    .filter(|h| h.sign == Sign::Negative)
                    .map(|h| filtered.records[engine.store.source(h.plane)].values.as_slice())
                    .collect();
                let processed = &engine.processed;
                if let Some(w) =
                    data_tree.find_not_dominated(&pivots, &|rid| processed.contains(&rid))
                {
                    next.push(w);
                }
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                // Every record is processed; the remaining promising cells
                // are final.
                break;
            }
        }
        batch = next;
    }

    if !engine.tree.is_exhausted() {
        engine.collect_remaining();
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn figure1_dataset() -> (Dataset, Vec<Vec<f64>>, Vec<f64>) {
        let raw = vec![
            vec![3.0, 8.0, 8.0],
            vec![9.0, 4.0, 4.0],
            vec![8.0, 3.0, 4.0],
            vec![4.0, 3.0, 6.0],
        ];
        (Dataset::new(raw.clone()), raw, vec![5.0, 5.0, 7.0])
    }

    #[test]
    fn all_celltree_algorithms_agree_with_the_oracle_on_figure1() {
        let (dataset, raw, focal) = figure1_dataset();
        let config = KsprConfig::default();
        for alg in [
            Algorithm::Cta,
            Algorithm::Pcta,
            Algorithm::LpCta,
            Algorithm::KSkyband,
        ] {
            for k in 1..=4 {
                let result = run(alg, &dataset, &focal, k, &config);
                let agreement =
                    naive::classification_agreement(&result, &raw, &focal, k, 400, 7);
                assert!(
                    agreement > 0.995,
                    "{alg:?} k={k}: agreement {agreement}"
                );
            }
        }
    }

    #[test]
    fn algorithms_agree_in_original_space() {
        let (dataset, raw, focal) = figure1_dataset();
        let config = KsprConfig::original_space();
        for alg in [Algorithm::Pcta, Algorithm::LpCta] {
            let result = run(alg, &dataset, &focal, 3, &config);
            let agreement = naive::classification_agreement(&result, &raw, &focal, 3, 400, 11);
            assert!(agreement > 0.995, "{alg:?}: agreement {agreement}");
        }
    }

    #[test]
    fn empty_result_when_focal_is_dominated_k_times() {
        let raw = vec![
            vec![0.9, 0.9],
            vec![0.8, 0.8],
            vec![0.7, 0.7],
        ];
        let dataset = Dataset::new(raw);
        let focal = vec![0.5, 0.5];
        let result = run_lpcta(&dataset, &focal, 2, &KsprConfig::default());
        assert!(result.is_empty());
    }

    #[test]
    fn whole_space_when_focal_dominates_everything() {
        let raw = vec![vec![0.1, 0.2], vec![0.2, 0.1]];
        let dataset = Dataset::new(raw);
        let focal = vec![0.5, 0.5];
        let result = run_pcta(&dataset, &focal, 1, &KsprConfig::default());
        assert_eq!(result.num_regions(), 1);
        assert!((result.impact(0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pcta_processes_fewer_records_than_cta() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let raw: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let dataset = Dataset::new(raw);
        let focal = vec![0.6, 0.6, 0.6];
        let config = KsprConfig::default();
        let cta = run_cta(&dataset, &focal, 5, &config);
        let pcta = run_pcta(&dataset, &focal, 5, &config);
        assert!(pcta.stats.processed_records <= cta.stats.processed_records);
        assert!(pcta.stats.celltree_nodes <= cta.stats.celltree_nodes);
    }

    #[test]
    fn algorithm_labels() {
        assert_eq!(Algorithm::LpCta.label(), "LP-CTA");
        assert_eq!(Algorithm::Rtopk.label(), "RTOPK");
    }
}
