//! RTOPK: the monochromatic reverse top-k baseline for 2-dimensional data.
//!
//! Vlachou et al. ("Monochromatic and bichromatic reverse top-k queries",
//! TKDE 2011) solve the `d = 2` special case of kSPR directly: with the
//! scoring function `a · r_1 + (1 - a) · r_2`, every competitor `r` switches
//! its order relative to the focal record `p` at a single value of `a`.
//! Sorting those switching values and sweeping `a` from 0 to 1 while
//! maintaining the number of records that outrank `p` yields the intervals of
//! `a` in which `p` is in the top-`k`.  The paper uses this method as the
//! RTOPK competitor in Figure 10(a); it does not extend beyond two
//! dimensions.

use crate::config::KsprConfig;
use crate::dataset::Dataset;
use crate::prep::{prepare_with_index, Prepared};
use crate::result::{KsprResult, Region};
use crate::stats::QueryStats;
use kspr_geometry::{Hyperplane, PreferenceSpace, Sign};

/// Runs the RTOPK sweep.
///
/// # Panics
/// Panics if the dataset is not 2-dimensional or `k == 0`.
pub fn run_rtopk(dataset: &Dataset, focal: &[f64], k: usize, config: &KsprConfig) -> KsprResult {
    assert_eq!(
        dataset.dim(),
        2,
        "RTOPK only applies to 2-dimensional data (Section 2 of the paper)"
    );
    assert_eq!(focal.len(), 2, "focal record must be 2-dimensional");
    let space = PreferenceSpace::transformed(2);
    let mut stats = QueryStats::new();

    // The same dominance-based preprocessing as the CellTree methods
    // (RTOPK "only considers records that neither dominate nor are dominated
    // by the focal record", Section 7.3).
    let filtered = match prepare_with_index(dataset, focal, k, config.rtree_fanout, &mut stats) {
        Prepared::Empty { .. } => return KsprResult::empty(space, stats),
        Prepared::WholeSpace { dominators } => {
            let mut r = KsprResult::whole_space(space, dominators + 1, stats);
            if config.finalize {
                r.finalize();
            }
            return r;
        }
        Prepared::Filtered(f) => f,
    };
    let k_eff = filtered.k_effective;

    // Sweep events: at `a`, the score difference of record r versus p is
    //   f(a) = (r2 - p2) + a * ((r1 - p1) - (r2 - p2)).
    // `delta` below is the slope; the switching value is where f crosses 0.
    #[derive(Debug)]
    struct Event {
        at: f64,
        /// +1 when the record starts beating p at `at`, -1 when it stops.
        change: i64,
    }
    let mut events: Vec<Event> = Vec::new();
    // Number of records beating p just after a = 0.
    let mut active: i64 = 0;

    for r in &filtered.records {
        stats.processed_records += 1;
        let d1 = r.values[0] - focal[0];
        let d2 = r.values[1] - focal[1];
        let slope = d1 - d2;
        if slope.abs() < 1e-12 {
            // Constant difference: after preprocessing it can only be ~0
            // (a tie), which is ignored.
            if d2 > 1e-12 {
                active += 1;
            }
            continue;
        }
        let switch = -d2 / slope;
        if d2 > 0.0 {
            // Beats p at a = 0.
            active += 1;
            if switch > 0.0 && switch < 1.0 {
                events.push(Event {
                    at: switch,
                    change: -1,
                });
            }
        } else if switch > 0.0 && switch < 1.0 {
            events.push(Event {
                at: switch,
                change: 1,
            });
        } else if switch <= 0.0 && slope > 0.0 {
            // Beats p over the whole (0, 1) range.
            active += 1;
        }
    }
    events.sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap_or(std::cmp::Ordering::Equal));

    // Sweep a from 0 to 1, collecting maximal intervals with rank <= k.
    let mut regions: Vec<Region> = Vec::new();
    let mut boundaries: Vec<f64> = vec![0.0];
    boundaries.extend(events.iter().map(|e| e.at));
    boundaries.push(1.0);

    let mut counts: Vec<i64> = Vec::with_capacity(boundaries.len() - 1);
    let mut current = active;
    counts.push(current);
    for e in &events {
        current += e.change;
        counts.push(current);
    }

    // Merge consecutive qualifying intervals into maximal regions.
    let mut interval_start: Option<(f64, i64)> = None;
    for i in 0..counts.len() {
        let lo = boundaries[i];
        let hi = boundaries[i + 1];
        let qualifies = (counts[i] as usize) < k_eff;
        match (qualifies, interval_start) {
            (true, None) => interval_start = Some((lo, counts[i])),
            (true, Some((_, best))) => {
                interval_start = Some((interval_start.unwrap().0, best.min(counts[i])));
            }
            (false, Some((start, best))) => {
                regions.push(interval_region(
                    start,
                    lo,
                    1 + best as usize + filtered.dominators,
                ));
                interval_start = None;
            }
            (false, None) => {}
        }
        if i == counts.len() - 1 {
            if let Some((start, best)) = interval_start {
                regions.push(interval_region(
                    start,
                    hi,
                    1 + best as usize + filtered.dominators,
                ));
                interval_start = None;
            }
        }
    }

    stats.result_regions = regions.len();
    let mut result = KsprResult {
        space,
        regions,
        stats,
    };
    if config.finalize {
        result.finalize();
    }
    result
}

/// A 1-dimensional region `start < w_1 < end` of the transformed space.
fn interval_region(start: f64, end: f64, rank: usize) -> Region {
    let mut halves = Vec::new();
    if start > 0.0 {
        halves.push((
            Hyperplane {
                coeffs: vec![1.0],
                rhs: start,
            },
            Sign::Positive,
        ));
    }
    if end < 1.0 {
        halves.push((
            Hyperplane {
                coeffs: vec![1.0],
                rhs: end,
            },
            Sign::Negative,
        ));
    }
    Region::new(rank, halves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_lpcta;
    use crate::naive;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, seed: u64) -> (Dataset, Vec<Vec<f64>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let raw: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        (Dataset::new(raw.clone()), raw)
    }

    #[test]
    fn rtopk_matches_the_oracle() {
        let (dataset, raw) = random_dataset(200, 5);
        let focal = vec![0.7, 0.6];
        for k in [1, 5, 10] {
            let result = run_rtopk(&dataset, &focal, k, &KsprConfig::default());
            let agreement = naive::classification_agreement(&result, &raw, &focal, k, 500, 3);
            assert!(agreement > 0.995, "k={k}: agreement {agreement}");
        }
    }

    #[test]
    fn rtopk_and_lpcta_cover_the_same_preferences() {
        let (dataset, _raw) = random_dataset(150, 9);
        let focal = vec![0.6, 0.7];
        let config = KsprConfig::default();
        let a = run_rtopk(&dataset, &focal, 5, &config);
        let b = run_lpcta(&dataset, &focal, 5, &config);
        for i in 1..100 {
            let w = vec![i as f64 / 100.0];
            assert_eq!(a.contains(&w), b.contains(&w), "w1 = {}", w[0]);
        }
    }

    #[test]
    fn interval_region_membership() {
        let r = interval_region(0.2, 0.6, 2);
        let space = PreferenceSpace::transformed(2);
        assert!(r.contains(&[0.4], &space));
        assert!(!r.contains(&[0.1], &space));
        assert!(!r.contains(&[0.7], &space));
    }

    #[test]
    #[should_panic(expected = "2-dimensional")]
    fn rejects_higher_dimensional_data() {
        let dataset = Dataset::new(vec![vec![0.1, 0.2, 0.3]]);
        run_rtopk(&dataset, &[0.1, 0.2, 0.3], 1, &KsprConfig::default());
    }
}
