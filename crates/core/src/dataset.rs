//! The indexed dataset a kSPR query runs against, and the mutable,
//! epoch-versioned [`DatasetStore`] that maintains it under updates.

use kspr_spatial::{AggregateRTree, ColumnarBlock, Record, RecordId};
use std::sync::Arc;

/// Why a record fails ingest validation (see [`check_record`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestError {
    /// The row has no attributes.
    Empty,
    /// The row's arity does not match the dataset's.
    ArityMismatch {
        /// The dataset arity.
        expected: usize,
        /// The row's arity.
        got: usize,
    },
    /// The row contains a NaN or infinite value.
    NonFinite {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Empty => write!(f, "has no attributes (empty rows are not allowed)"),
            IngestError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "has {got} attributes, but the dataset arity is {expected}"
                )
            }
            IngestError::NonFinite { value } => write!(
                f,
                "contains a non-finite attribute value ({value}); all values must be finite"
            ),
        }
    }
}

/// Checks one record's attribute vector against the ingest rules.
///
/// Every value must be finite: NaN values break the total orders the engine
/// relies on (skyband sorting, expansion order, dominance tests all use
/// `partial_cmp`), which silently yields nondeterministic results rather than
/// an error.  `expected_dim` is the dataset arity (`None` for the first row,
/// which defines it).
///
/// This is the single source of truth for ingest validation — the serving
/// layer (`kspr-serve`) uses it too, mapping violations to request errors
/// instead of panics.
pub fn check_record(values: &[f64], expected_dim: Option<usize>) -> Result<(), IngestError> {
    if let Some(expected) = expected_dim {
        if values.len() != expected {
            return Err(IngestError::ArityMismatch {
                expected,
                got: values.len(),
            });
        }
    }
    if values.is_empty() {
        return Err(IngestError::Empty);
    }
    if let Some(&value) = values.iter().find(|v| !v.is_finite()) {
        return Err(IngestError::NonFinite { value });
    }
    Ok(())
}

/// Panicking form of [`check_record`], used at the library ingest boundary.
///
/// # Panics
/// Panics with a descriptive message on a non-finite value, an empty row, or
/// an arity mismatch.
pub fn validate_record(values: &[f64], expected_dim: Option<usize>, id: usize) {
    if let Err(err) = check_record(values, expected_dim) {
        panic!("record {id} {err}");
    }
}

/// A dataset of options, indexed by an aggregate R-tree.
///
/// Attribute values follow the paper's convention: every attribute is
/// "larger is better".  The generators in `kspr-datagen` produce values in
/// `(0, 1)`, but any non-negative range works.
///
/// The index is reference-counted so that the query engine can share it with
/// per-query state (and across the worker threads of
/// [`crate::engine::QueryEngine::run_batch`]) without copying it.
#[derive(Debug, Clone)]
pub struct Dataset {
    tree: Arc<AggregateRTree>,
    /// Column-major mirror of the record slots (row index == record id,
    /// tombstoned slots included).  The dominance-classification kernel of
    /// the Section 3.1 preprocessing and the approximate tier's scoring
    /// sweep read this instead of pointer-chasing `Vec<Record>`.
    columns: Arc<ColumnarBlock>,
}

impl Dataset {
    /// Builds a dataset (and its index) from raw attribute vectors with the
    /// default R-tree fanout.
    ///
    /// # Panics
    /// Panics if `raw` is empty, the rows have inconsistent arities, or any
    /// value is non-finite (NaN / ±∞).
    pub fn new(raw: Vec<Vec<f64>>) -> Self {
        Self::with_fanout(raw, AggregateRTree::DEFAULT_FANOUT)
    }

    /// Builds a dataset with an explicit R-tree fanout.
    ///
    /// # Panics
    /// Panics if `raw` is empty, the rows have inconsistent arities, or any
    /// value is non-finite (NaN / ±∞).
    pub fn with_fanout(raw: Vec<Vec<f64>>, fanout: usize) -> Self {
        let dim = raw.first().map(|r| r.len());
        for (id, row) in raw.iter().enumerate() {
            validate_record(row, dim, id);
        }
        let records = Record::from_raw(raw);
        Self::from_tree(AggregateRTree::bulk_load(records, fanout))
    }

    /// Wraps an already-built index.
    pub fn from_tree(tree: AggregateRTree) -> Self {
        let dim = tree.dim();
        let columns =
            ColumnarBlock::from_rows(dim, tree.records().iter().map(|r| r.values.as_slice()));
        Self {
            tree: Arc::new(tree),
            columns: Arc::new(columns),
        }
    }

    /// The column-major mirror of the record slots.  Row `id` holds the
    /// attribute values of record slot `id` — including tombstoned slots, so
    /// callers must pair it with [`Dataset::is_live`].
    pub fn columns(&self) -> &ColumnarBlock {
        &self.columns
    }

    /// A shared handle to the index (used by the query engine to reuse the
    /// dataset R-tree instead of rebuilding a query-local copy).
    pub fn shared_index(&self) -> Arc<AggregateRTree> {
        Arc::clone(&self.tree)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True iff the dataset contains no live record (possible once a
    /// [`DatasetStore`] has deleted everything).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Number of attributes per record.
    pub fn dim(&self) -> usize {
        self.tree.dim()
    }

    /// All record slots, indexed by id.  After deletions through a
    /// [`DatasetStore`] this still contains the tombstoned records — use
    /// [`Dataset::live_records`] / [`Dataset::is_live`] when liveness
    /// matters.
    pub fn records(&self) -> &[Record] {
        self.tree.records()
    }

    /// Iterates over the live records, in id order.
    pub fn live_records(&self) -> impl Iterator<Item = &Record> {
        self.tree.live_records()
    }

    /// True iff record slot `id` exists and has not been deleted.
    pub fn is_live(&self, id: RecordId) -> bool {
        self.tree.is_live(id)
    }

    /// True iff some record has been deleted (ids are then non-contiguous).
    pub fn has_tombstones(&self) -> bool {
        self.tree.has_tombstones()
    }

    /// Number of tombstoned record slots (deleted records kept for id
    /// stability).
    pub fn tombstone_count(&self) -> usize {
        self.tree.tombstone_count()
    }

    /// The underlying aggregate R-tree.
    pub fn tree(&self) -> &AggregateRTree {
        &self.tree
    }

    /// Attribute values of record `id`.
    pub fn values(&self, id: usize) -> &[f64] {
        &self.tree.record(id).values
    }
}

/// A mutable, versioned dataset handle.
///
/// Wraps a [`Dataset`] and maintains its aggregate R-tree **incrementally**
/// under [`DatasetStore::insert`] / [`DatasetStore::delete`] — no bulk
/// reload.  Every successful update bumps the store's **epoch**, the
/// monotone version counter that caches built on top of the dataset (most
/// importantly the [`crate::engine::QueryEngine`] shared-prep cache) compare
/// against to detect staleness.
///
/// Queries that are still holding the shared index (`Arc`) when an update
/// lands keep reading the pre-update snapshot: the store copies-on-write in
/// that case, so updates never race readers.  In the common serve-loop
/// pattern — updates between batches — the handle is unique and maintenance
/// is in-place.
#[derive(Debug, Clone)]
pub struct DatasetStore {
    dataset: Dataset,
    epoch: u64,
}

impl DatasetStore {
    /// Wraps a dataset at epoch 0.
    pub fn new(dataset: Dataset) -> Self {
        Self { dataset, epoch: 0 }
    }

    /// Builds a store (and the index) from raw attribute vectors.
    ///
    /// # Panics
    /// Panics if `raw` is empty or the rows have inconsistent arities.
    pub fn from_raw(raw: Vec<Vec<f64>>) -> Self {
        Self::new(Dataset::new(raw))
    }

    /// The current dataset view.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The version counter: incremented by every successful update.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Snapshot-restore hook: forces the epoch counter to `epoch`.
    ///
    /// Used by the durability layer when a store is rebuilt from a snapshot:
    /// the rebuilt dataset is bit-identical to the snapshotted one, but the
    /// reconstruction path (bulk load + tombstone replay) would leave a
    /// different epoch than the live store had accumulated.  Forcing the
    /// recorded epoch makes the recovered store indistinguishable from one
    /// that never went down.  Never call this on a store that shares caches
    /// with in-flight queries — a *lowered* epoch would make stale caches
    /// look fresh.
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Fraction of record slots that are tombstoned, in `[0, 1)`.
    ///
    /// Deleted slots are retained forever (ids are stable by design), so a
    /// delete-heavy workload steadily accumulates dead slots that still cost
    /// memory and skyband promotion-scan time.  Serving layers watch this
    /// ratio to decide when a compaction (store rewrite + id remap) would pay
    /// off; the `serve` experiment logs a warning above 50%.
    pub fn tombstone_ratio(&self) -> f64 {
        let slots = self.dataset.records().len();
        if slots == 0 {
            0.0
        } else {
            self.dataset.tombstone_count() as f64 / slots as f64
        }
    }

    /// Inserts a record, maintaining the R-tree in place, and returns its id.
    ///
    /// # Panics
    /// Panics if `values` does not match the dataset arity or contains a
    /// non-finite value (NaN / ±∞).
    pub fn insert(&mut self, values: Vec<f64>) -> RecordId {
        validate_record(
            &values,
            Some(self.dataset.dim()),
            self.dataset.records().len(),
        );
        Arc::make_mut(&mut self.dataset.columns).push_row(&values);
        let id = Arc::make_mut(&mut self.dataset.tree).insert(values);
        self.epoch += 1;
        id
    }

    /// Deletes record `id`, returning its attribute values if it was live.
    pub fn delete(&mut self, id: RecordId) -> Option<Vec<f64>> {
        if !self.dataset.is_live(id) {
            return None;
        }
        let values = self.dataset.values(id).to_vec();
        let removed = Arc::make_mut(&mut self.dataset.tree).delete(id);
        debug_assert!(removed, "live record must be deletable");
        self.epoch += 1;
        Some(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = Dataset::new(vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.values(1), &[0.3, 0.4]);
        assert_eq!(d.records().len(), 3);
        assert_eq!(d.tree().len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_data() {
        Dataset::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-finite attribute value")]
    fn rejects_nan_in_constructor() {
        Dataset::new(vec![vec![0.1, 0.2], vec![0.3, f64::NAN]]);
    }

    #[test]
    #[should_panic(expected = "non-finite attribute value")]
    fn rejects_infinity_in_constructor() {
        Dataset::new(vec![vec![f64::INFINITY, 0.2]]);
    }

    #[test]
    #[should_panic(expected = "attributes, but the dataset arity")]
    fn rejects_mismatched_arity_in_constructor() {
        Dataset::new(vec![vec![0.1, 0.2], vec![0.3, 0.4, 0.5]]);
    }

    #[test]
    #[should_panic(expected = "empty rows are not allowed")]
    fn rejects_empty_row() {
        Dataset::new(vec![vec![]]);
    }

    #[test]
    #[should_panic(expected = "non-finite attribute value")]
    fn store_insert_rejects_nan() {
        let mut store = DatasetStore::from_raw(vec![vec![0.1, 0.2]]);
        store.insert(vec![0.3, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "attributes, but the dataset arity")]
    fn store_insert_rejects_mismatched_arity() {
        let mut store = DatasetStore::from_raw(vec![vec![0.1, 0.2]]);
        store.insert(vec![0.3, 0.4, 0.5]);
    }

    #[test]
    fn failed_insert_does_not_bump_the_epoch() {
        let mut store = DatasetStore::from_raw(vec![vec![0.1, 0.2]]);
        let before = store.epoch();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.insert(vec![f64::NAN, 0.4])
        }));
        assert!(result.is_err());
        assert_eq!(
            store.epoch(),
            before,
            "rejected ingest must not version-bump"
        );
        assert_eq!(store.dataset().len(), 1);
    }

    #[test]
    fn store_updates_bump_the_epoch_and_keep_ids_stable() {
        let mut store = DatasetStore::from_raw(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        assert_eq!(store.epoch(), 0);
        let id = store.insert(vec![0.5, 0.6]);
        assert_eq!(id, 2);
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.dataset().len(), 3);

        assert_eq!(store.delete(0), Some(vec![0.1, 0.2]));
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.delete(0), None, "double delete is a no-op");
        assert_eq!(store.epoch(), 2, "failed updates do not bump the epoch");
        assert!(store.dataset().has_tombstones());
        assert!(!store.dataset().is_live(0));
        assert_eq!(store.dataset().len(), 2);
        let live: Vec<usize> = store.dataset().live_records().map(|r| r.id).collect();
        assert_eq!(live, vec![1, 2]);
    }

    #[test]
    fn tombstone_ratio_tracks_deletes() {
        let mut store =
            DatasetStore::from_raw(vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]);
        assert_eq!(store.tombstone_ratio(), 0.0);
        assert_eq!(store.dataset().tombstone_count(), 0);
        store.delete(0);
        store.delete(2);
        assert_eq!(store.dataset().tombstone_count(), 2);
        assert!((store.tombstone_ratio() - 2.0 / 3.0).abs() < 1e-12);
        // Inserting grows the slot count, diluting the ratio.
        store.insert(vec![0.7, 0.8]);
        assert!((store.tombstone_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn store_copy_on_write_leaves_snapshots_untouched() {
        let mut store = DatasetStore::from_raw(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        let snapshot = store.dataset().shared_index();
        store.insert(vec![0.5, 0.6]);
        assert_eq!(snapshot.len(), 2, "pre-update snapshot is immutable");
        assert_eq!(store.dataset().len(), 3);
    }

    #[test]
    fn columnar_mirror_tracks_updates() {
        let mut store = DatasetStore::from_raw(vec![vec![0.1, 0.2], vec![0.3, 0.4]]);
        let snapshot = store.dataset().clone();
        let id = store.insert(vec![0.5, 0.6]);
        let cols = store.dataset().columns();
        assert_eq!(cols.len(), 3, "insert appends a row");
        assert_eq!(cols.value(id, 0), 0.5);
        assert_eq!(cols.value(id, 1), 0.6);
        assert_eq!(
            snapshot.columns().len(),
            2,
            "pre-update snapshot keeps its own columnar block"
        );
        // Every row mirrors the record slot of the same id, tombstones
        // included.
        store.delete(0);
        let d = store.dataset();
        for r in d.records() {
            for c in 0..d.dim() {
                assert_eq!(d.columns().value(r.id, c), r.values[c]);
            }
        }
        assert_eq!(d.columns().len(), d.records().len());
    }
}
