//! The indexed dataset a kSPR query runs against.

use kspr_spatial::{AggregateRTree, Record};
use std::sync::Arc;

/// A dataset of options, indexed by an aggregate R-tree.
///
/// Attribute values follow the paper's convention: every attribute is
/// "larger is better".  The generators in `kspr-datagen` produce values in
/// `(0, 1)`, but any non-negative range works.
///
/// The index is reference-counted so that the query engine can share it with
/// per-query state (and across the worker threads of
/// [`crate::engine::QueryEngine::run_batch`]) without copying it.
#[derive(Debug, Clone)]
pub struct Dataset {
    tree: Arc<AggregateRTree>,
}

impl Dataset {
    /// Builds a dataset (and its index) from raw attribute vectors with the
    /// default R-tree fanout.
    ///
    /// # Panics
    /// Panics if `raw` is empty or the rows have inconsistent arities.
    pub fn new(raw: Vec<Vec<f64>>) -> Self {
        Self::with_fanout(raw, AggregateRTree::DEFAULT_FANOUT)
    }

    /// Builds a dataset with an explicit R-tree fanout.
    pub fn with_fanout(raw: Vec<Vec<f64>>, fanout: usize) -> Self {
        let records = Record::from_raw(raw);
        Self {
            tree: Arc::new(AggregateRTree::bulk_load(records, fanout)),
        }
    }

    /// Wraps an already-built index.
    pub fn from_tree(tree: AggregateRTree) -> Self {
        Self {
            tree: Arc::new(tree),
        }
    }

    /// A shared handle to the index (used by the query engine to reuse the
    /// dataset R-tree instead of rebuilding a query-local copy).
    pub fn shared_index(&self) -> Arc<AggregateRTree> {
        Arc::clone(&self.tree)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True iff the dataset contains no records (cannot happen after
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Number of attributes per record.
    pub fn dim(&self) -> usize {
        self.tree.dim()
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        self.tree.records()
    }

    /// The underlying aggregate R-tree.
    pub fn tree(&self) -> &AggregateRTree {
        &self.tree
    }

    /// Attribute values of record `id`.
    pub fn values(&self, id: usize) -> &[f64] {
        &self.tree.record(id).values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let d = Dataset::new(vec![vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.values(1), &[0.3, 0.4]);
        assert_eq!(d.records().len(), 3);
        assert_eq!(d.tree().len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_data() {
        Dataset::new(vec![]);
    }
}
