//! Look-ahead rank bounds for LP-CTA (Section 6 of the paper).
//!
//! For a candidate cell `c`, LP-CTA bounds the rank the focal record can take
//! anywhere inside `c` by comparing, for every competitor (or group of
//! competitors), the interval of scores it can achieve over `c` with the
//! interval of scores of the focal record:
//!
//! * **Record bounds** (§6.1): two LP optimizations per record give the exact
//!   score interval `[S(r,c), S̄(r,c)]`.
//! * **Group bounds** (§6.2): the aggregate R-tree supplies, per entry `G`,
//!   corner records `G^L ≤ r ≤ G^U` for every `r` underneath, so two LPs per
//!   *entry* bound whole groups at once.
//! * **Fast bounds** (§6.3): a per-cell min-vector `w^L` and max-vector `w^U`
//!   (2·d LPs per cell, reused for every entry) give score bounds in `O(d)`
//!   per entry, used as a filter before the LP-based group bounds.
//!
//! In the original preference space (Appendix C) the focal score interval
//! degenerates (`S(p,c) = 0` for every cone), so the bounds are computed on
//! the score *difference* `S(r) − S(p)` instead, and the fast bounds do not
//! apply.

use crate::config::BoundMode;
use crate::stats::QueryStats;
use kspr_geometry::{ConstraintSystem, Space};
use kspr_spatial::{AggregateRTree, NodeEntries, Record};

/// Decision reached by the rank-bound computation for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundDecision {
    /// The lower rank bound exceeds `k`: the cell can be pruned.
    Prune,
    /// The upper rank bound is at most `k`: the cell is part of the result.
    Report,
    /// The bounds are inconclusive; processing of the cell continues normally.
    Undecided,
}

/// Rank bounds `[lower, upper]` for a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankBounds {
    /// Best (smallest) rank the focal record can achieve in the cell.
    pub lower: usize,
    /// Worst (largest) rank the focal record can achieve in the cell.
    pub upper: usize,
}

impl RankBounds {
    fn decide(&self, k: usize) -> BoundDecision {
        if self.lower > k {
            BoundDecision::Prune
        } else if self.upper <= k {
            BoundDecision::Report
        } else {
            BoundDecision::Undecided
        }
    }
}

/// Linear objective (coefficients over the working space plus a constant)
/// whose value at `w` equals the score of the `d`-dimensional point `q`.
fn score_objective(space: Space, dim: usize, q: &[f64]) -> (Vec<f64>, f64) {
    match space {
        Space::Transformed => {
            let last = dim - 1;
            ((0..last).map(|i| q[i] - q[last]).collect(), q[last])
        }
        Space::Original => (q.to_vec(), 0.0),
    }
}

/// Minimum score of point `q` over the cell (one LP call).
///
/// Used for group bounds, where only the min-corner's minimum and the
/// max-corner's maximum are needed (Section 6.2).
fn score_min(
    sys: &ConstraintSystem,
    space: Space,
    dim: usize,
    q: &[f64],
    stats: &mut QueryStats,
) -> Option<f64> {
    let (obj, constant) = score_objective(space, dim, q);
    stats.bound_lp_calls += 1;
    Some(sys.minimize(&obj)?.0 + constant)
}

/// Maximum score of point `q` over the cell (one LP call).
fn score_max(
    sys: &ConstraintSystem,
    space: Space,
    dim: usize,
    q: &[f64],
    stats: &mut QueryStats,
) -> Option<f64> {
    let (obj, constant) = score_objective(space, dim, q);
    stats.bound_lp_calls += 1;
    Some(sys.maximize(&obj)?.0 + constant)
}

/// Objective vector for the score difference `S(q) − S(p)`.
fn diff_objective(space: Space, dim: usize, q: &[f64], focal: &[f64]) -> (Vec<f64>, f64) {
    let (obj_q, c_q) = score_objective(space, dim, q);
    let (obj_p, c_p) = score_objective(space, dim, focal);
    (
        obj_q.iter().zip(&obj_p).map(|(a, b)| a - b).collect(),
        c_q - c_p,
    )
}

/// Minimum of `S(q) − S(p)` over the cell (one LP call).
fn diff_min(
    sys: &ConstraintSystem,
    space: Space,
    dim: usize,
    q: &[f64],
    focal: &[f64],
    stats: &mut QueryStats,
) -> Option<f64> {
    let (obj, constant) = diff_objective(space, dim, q, focal);
    stats.bound_lp_calls += 1;
    Some(sys.minimize(&obj)?.0 + constant)
}

/// Maximum of `S(q) − S(p)` over the cell (one LP call).
fn diff_max(
    sys: &ConstraintSystem,
    space: Space,
    dim: usize,
    q: &[f64],
    focal: &[f64],
    stats: &mut QueryStats,
) -> Option<f64> {
    let (obj, constant) = diff_objective(space, dim, q, focal);
    stats.bound_lp_calls += 1;
    Some(sys.maximize(&obj)?.0 + constant)
}

/// Exact score interval of point `q` over the cell (two LP calls).
fn score_interval(
    sys: &ConstraintSystem,
    space: Space,
    dim: usize,
    q: &[f64],
    stats: &mut QueryStats,
) -> Option<(f64, f64)> {
    let (obj, constant) = score_objective(space, dim, q);
    stats.bound_lp_calls += 2;
    let lo = sys.minimize(&obj)?.0 + constant;
    let hi = sys.maximize(&obj)?.0 + constant;
    Some((lo, hi))
}

/// Exact interval of the score *difference* `S(q) − S(p)` over the cell
/// (used in the original space, Appendix C).
fn diff_interval(
    sys: &ConstraintSystem,
    space: Space,
    dim: usize,
    q: &[f64],
    focal: &[f64],
    stats: &mut QueryStats,
) -> Option<(f64, f64)> {
    let (obj_q, c_q) = score_objective(space, dim, q);
    let (obj_p, c_p) = score_objective(space, dim, focal);
    let obj: Vec<f64> = obj_q.iter().zip(&obj_p).map(|(a, b)| a - b).collect();
    let constant = c_q - c_p;
    stats.bound_lp_calls += 2;
    let lo = sys.minimize(&obj)?.0 + constant;
    let hi = sys.maximize(&obj)?.0 + constant;
    Some((lo, hi))
}

/// The per-cell min/max weight vectors of Section 6.3 (full `d`-dimensional),
/// or `None` in the original space where they do not apply.
fn fast_vectors(
    sys: &ConstraintSystem,
    space: Space,
    dim: usize,
    stats: &mut QueryStats,
) -> Option<(Vec<f64>, Vec<f64>)> {
    if space == Space::Original {
        return None;
    }
    let work = dim - 1;
    let mut lo = Vec::with_capacity(dim);
    let mut hi = Vec::with_capacity(dim);
    for i in 0..work {
        let mut e = vec![0.0; work];
        e[i] = 1.0;
        stats.bound_lp_calls += 2;
        lo.push(sys.minimize(&e)?.0);
        hi.push(sys.maximize(&e)?.0);
    }
    let ones = vec![1.0; work];
    stats.bound_lp_calls += 2;
    let sum_lo = sys.minimize(&ones)?.0;
    let sum_hi = sys.maximize(&ones)?.0;
    lo.push((1.0 - sum_hi).max(0.0));
    hi.push((1.0 - sum_lo).min(1.0));
    Some((lo, hi))
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Internal traversal state.
struct BoundState<'a> {
    sys: &'a ConstraintSystem,
    space: Space,
    dim: usize,
    focal: &'a [f64],
    k: usize,
    /// Focal score interval over the cell (transformed space only).
    focal_interval: (f64, f64),
    /// Per-cell fast vectors, when applicable.
    fast: Option<(Vec<f64>, Vec<f64>)>,
    lower: usize,
    upper: usize,
}

/// Outcome of comparing one score interval with the focal interval.
enum IntervalOutcome {
    /// The competitor beats the focal record everywhere in the cell.
    AlwaysAbove,
    /// The competitor never beats the focal record in the cell.
    AlwaysBelow,
    /// The competitor's interval is contained in the focal interval: it may
    /// or may not beat the focal record (counts only toward the upper bound).
    Contained,
    /// Nothing can be concluded at this granularity.
    Inconclusive,
}

impl BoundState<'_> {
    fn classify(&self, lo: f64, hi: f64) -> IntervalOutcome {
        let (p_lo, p_hi) = self.focal_interval;
        if lo > p_hi {
            IntervalOutcome::AlwaysAbove
        } else if hi < p_lo {
            IntervalOutcome::AlwaysBelow
        } else if lo >= p_lo && hi <= p_hi {
            IntervalOutcome::Contained
        } else {
            IntervalOutcome::Inconclusive
        }
    }

    fn classify_diff(&self, lo: f64, hi: f64) -> IntervalOutcome {
        if lo > 0.0 {
            IntervalOutcome::AlwaysAbove
        } else if hi <= 0.0 {
            IntervalOutcome::AlwaysBelow
        } else {
            IntervalOutcome::Inconclusive
        }
    }

    fn exceeded(&self) -> bool {
        self.lower > self.k
    }
}

/// Computes rank bounds for one cell and decides its fate.
///
/// * `sys` — constraint system of the cell (boundary + bounding halfspaces).
/// * `focal` — the focal record (full `d`-dimensional values).
/// * `tree` / `records` — the filtered competitor set and its aggregate
///   R-tree (used by the [`BoundMode::Group`] and [`BoundMode::Fast`] modes).
/// * `k` — effective rank threshold.
pub fn rank_bounds(
    sys: &ConstraintSystem,
    focal: &[f64],
    tree: &AggregateRTree,
    records: &[Record],
    k: usize,
    mode: BoundMode,
    stats: &mut QueryStats,
) -> (RankBounds, BoundDecision) {
    let space = sys.space().space;
    let dim = sys.space().data_dim;

    let focal_interval = if space == Space::Transformed {
        match score_interval(sys, space, dim, focal, stats) {
            Some(iv) => iv,
            None => {
                // The cell closure is empty — treat as prunable.
                let b = RankBounds {
                    lower: k + 1,
                    upper: k + 1,
                };
                return (b, BoundDecision::Prune);
            }
        }
    } else {
        (0.0, 0.0)
    };

    let fast = if mode == BoundMode::Fast {
        fast_vectors(sys, space, dim, stats)
    } else {
        None
    };

    let mut state = BoundState {
        sys,
        space,
        dim,
        focal,
        k,
        focal_interval,
        fast,
        lower: 1,
        upper: 1,
    };

    match mode {
        BoundMode::Record => {
            for r in records {
                process_record(&mut state, &r.values, stats);
                if state.exceeded() {
                    break;
                }
            }
        }
        BoundMode::Group | BoundMode::Fast => {
            descend(&mut state, tree, tree.root(), stats);
        }
    }

    let bounds = RankBounds {
        lower: state.lower,
        upper: state.upper,
    };
    (bounds, bounds.decide(k))
}

/// Applies an interval outcome for a group of `count` records.
fn apply_outcome(state: &mut BoundState<'_>, outcome: IntervalOutcome, count: usize) -> bool {
    match outcome {
        IntervalOutcome::AlwaysAbove => {
            state.lower += count;
            state.upper += count;
            true
        }
        IntervalOutcome::AlwaysBelow => true,
        IntervalOutcome::Contained => {
            state.upper += count;
            true
        }
        IntervalOutcome::Inconclusive => false,
    }
}

fn process_record(state: &mut BoundState<'_>, values: &[f64], stats: &mut QueryStats) {
    // Fast per-record filter.
    if let Some((wl, wu)) = &state.fast {
        let lo = dot(values, wl);
        let hi = dot(values, wu);
        if apply_outcome_scores(state, lo, hi, 1) {
            return;
        }
    }
    // Tight per-record bounds.
    let outcome = if state.space == Space::Transformed {
        match score_interval(state.sys, state.space, state.dim, values, stats) {
            Some((lo, hi)) => state.classify(lo, hi),
            None => IntervalOutcome::AlwaysBelow,
        }
    } else {
        match diff_interval(
            state.sys,
            state.space,
            state.dim,
            values,
            state.focal,
            stats,
        ) {
            Some((lo, hi)) => state.classify_diff(lo, hi),
            None => IntervalOutcome::AlwaysBelow,
        }
    };
    match outcome {
        IntervalOutcome::Inconclusive => {
            // At record granularity an overlap still only contributes to the
            // upper bound (the record beats p for some but not all vectors).
            state.upper += 1;
        }
        o => {
            apply_outcome(state, o, 1);
        }
    }
}

/// Fast-filter variant of [`apply_outcome`] working directly on scores.
fn apply_outcome_scores(state: &mut BoundState<'_>, lo: f64, hi: f64, count: usize) -> bool {
    let outcome = state.classify(lo, hi);
    match outcome {
        IntervalOutcome::Inconclusive => false,
        o => apply_outcome(state, o, count),
    }
}

fn descend(
    state: &mut BoundState<'_>,
    tree: &AggregateRTree,
    node_idx: usize,
    stats: &mut QueryStats,
) {
    if state.exceeded() {
        return;
    }
    let node = tree.node(node_idx);
    let count = node.count;

    // Fast group filter (transformed space, Fast mode only).
    if let Some((wl, wu)) = &state.fast {
        let lo = dot(node.mbr.lower_corner(), wl);
        let hi = dot(node.mbr.upper_corner(), wu);
        if apply_outcome_scores(state, lo, hi, count) {
            return;
        }
    }

    // Tight group bounds via LP on the MBR corners: the minimum of the
    // min-corner's score and the maximum of the max-corner's score (one LP
    // each), exactly as Section 6.2 prescribes.
    let outcome = if state.space == Space::Transformed {
        let lo = score_min(
            state.sys,
            state.space,
            state.dim,
            node.mbr.lower_corner(),
            stats,
        );
        let hi = score_max(
            state.sys,
            state.space,
            state.dim,
            node.mbr.upper_corner(),
            stats,
        );
        match (lo, hi) {
            (Some(lo), Some(hi)) => state.classify(lo, hi),
            _ => IntervalOutcome::AlwaysBelow,
        }
    } else {
        let lo = diff_min(
            state.sys,
            state.space,
            state.dim,
            node.mbr.lower_corner(),
            state.focal,
            stats,
        );
        let hi = diff_max(
            state.sys,
            state.space,
            state.dim,
            node.mbr.upper_corner(),
            state.focal,
            stats,
        );
        match (lo, hi) {
            (Some(lo), Some(hi)) => state.classify_diff(lo, hi),
            _ => IntervalOutcome::AlwaysBelow,
        }
    };
    if apply_outcome(state, outcome, count) {
        return;
    }

    // Inconclusive at this granularity: go one level deeper.
    match &node.entries {
        NodeEntries::Internal(children) => {
            for &c in children {
                descend(state, tree, c, stats);
                if state.exceeded() {
                    return;
                }
            }
        }
        NodeEntries::Leaf(ids) => {
            for &id in ids {
                let values = tree.record(id).values.clone();
                process_record(state, &values, stats);
                if state.exceeded() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BoundMode;
    use kspr_geometry::{Hyperplane, PreferenceSpace, Sign};
    use kspr_spatial::AggregateRTree;

    /// Figure 1 restaurants; focal = Kyma.
    fn setup() -> (Vec<Record>, AggregateRTree, Vec<f64>, PreferenceSpace) {
        let raw = vec![
            vec![3.0, 8.0, 8.0],
            vec![9.0, 4.0, 4.0],
            vec![8.0, 3.0, 4.0],
            vec![4.0, 3.0, 6.0],
        ];
        let records = Record::from_raw(raw);
        let tree = AggregateRTree::bulk_load(records.clone(), 4);
        (
            records,
            tree,
            vec![5.0, 5.0, 7.0],
            PreferenceSpace::transformed(3),
        )
    }

    #[test]
    fn whole_space_bounds_bracket_true_ranks() {
        let (records, tree, focal, space) = setup();
        let sys = ConstraintSystem::new(space);
        for mode in [BoundMode::Record, BoundMode::Group, BoundMode::Fast] {
            let mut stats = QueryStats::new();
            let (bounds, _) = rank_bounds(&sys, &focal, &tree, &records, 3, mode, &mut stats);
            // Over the whole space Kyma's rank ranges between 1 and 4
            // (it can be beaten by at most 3 of the 4 restaurants at once,
            // and is the top record near the ambiance-heavy corner).
            assert!(
                bounds.lower >= 1 && bounds.lower <= 2,
                "{mode:?}: {bounds:?}"
            );
            assert!(bounds.upper >= 3, "{mode:?}: {bounds:?}");
            assert!(bounds.lower <= bounds.upper);
            assert!(stats.bound_lp_calls > 0);
        }
    }

    #[test]
    fn constrained_cell_gives_tighter_bounds() {
        let (records, tree, focal, space) = setup();
        // Constrain to the corner where w1 (value weight) is large: Beirut
        // Grill and El Coyote dominate the ranking there.
        let mut sys = ConstraintSystem::new(space);
        sys.push_constraint(kspr_lp::LinearConstraint::new(
            vec![1.0, 0.0],
            kspr_lp::Relation::Greater,
            0.8,
        ));
        let mut stats = QueryStats::new();
        let (bounds, decision) = rank_bounds(
            &sys,
            &focal,
            &tree,
            &records,
            1,
            BoundMode::Fast,
            &mut stats,
        );
        // With k = 1 and at least two records always above, the cell is pruned.
        assert!(bounds.lower >= 2, "{bounds:?}");
        assert_eq!(decision, BoundDecision::Prune);
    }

    #[test]
    fn report_decision_when_upper_bound_is_small() {
        let (records, tree, focal, space) = setup();
        // Constrain to the ambiance-dominated corner (w1, w2 both tiny) where
        // Kyma (ambiance 7) is only beaten by L'Entrecôte (ambiance 8).
        let mut sys = ConstraintSystem::new(space);
        sys.push_constraint(kspr_lp::LinearConstraint::new(
            vec![1.0, 1.0],
            kspr_lp::Relation::Less,
            0.05,
        ));
        let mut stats = QueryStats::new();
        let (bounds, decision) = rank_bounds(
            &sys,
            &focal,
            &tree,
            &records,
            3,
            BoundMode::Fast,
            &mut stats,
        );
        assert!(bounds.upper <= 3, "{bounds:?}");
        assert_eq!(decision, BoundDecision::Report);
    }

    #[test]
    fn modes_agree_on_decisions_for_simple_cells() {
        let (records, tree, focal, space) = setup();
        let planes: Vec<Hyperplane> = records
            .iter()
            .map(|r| Hyperplane::separating(&r.values, &focal, &space))
            .collect();
        // A cell where all hyperplanes are on their negative side: rank 1.
        let mut sys = ConstraintSystem::new(space);
        for p in &planes {
            sys.push_halfspace(p, Sign::Negative);
        }
        if sys.is_feasible() {
            for mode in [BoundMode::Record, BoundMode::Group, BoundMode::Fast] {
                let mut stats = QueryStats::new();
                let (bounds, decision) =
                    rank_bounds(&sys, &focal, &tree, &records, 3, mode, &mut stats);
                assert_eq!(bounds.lower, 1, "{mode:?}");
                assert_eq!(decision, BoundDecision::Report, "{mode:?}");
            }
        }
    }

    #[test]
    fn fast_mode_uses_fewer_lp_calls_than_group_on_conclusive_cells() {
        let (records, tree, focal, space) = setup();
        let mut sys = ConstraintSystem::new(space);
        sys.push_constraint(kspr_lp::LinearConstraint::new(
            vec![1.0, 1.0],
            kspr_lp::Relation::Less,
            0.05,
        ));
        let mut s_group = QueryStats::new();
        rank_bounds(
            &sys,
            &focal,
            &tree,
            &records,
            3,
            BoundMode::Group,
            &mut s_group,
        );
        let mut s_record = QueryStats::new();
        rank_bounds(
            &sys,
            &focal,
            &tree,
            &records,
            3,
            BoundMode::Record,
            &mut s_record,
        );
        // Record bounds need 2 LPs per record (plus the focal interval);
        // group/fast bounds should never need more than that on this tiny
        // dataset and typically need fewer.
        assert!(s_group.bound_lp_calls <= s_record.bound_lp_calls + 4);
    }

    #[test]
    fn original_space_bounds_work_without_fast_vectors() {
        let raw = vec![
            vec![3.0, 8.0, 8.0],
            vec![9.0, 4.0, 4.0],
            vec![8.0, 3.0, 4.0],
        ];
        let records = Record::from_raw(raw);
        let tree = AggregateRTree::bulk_load(records.clone(), 4);
        let focal = vec![5.0, 5.0, 7.0];
        let space = PreferenceSpace::original(3);
        let sys = ConstraintSystem::new(space);
        let mut stats = QueryStats::new();
        let (bounds, _) = rank_bounds(
            &sys,
            &focal,
            &tree,
            &records,
            2,
            BoundMode::Group,
            &mut stats,
        );
        assert!(bounds.lower >= 1);
        assert!(bounds.upper <= 1 + records.len());
        assert!(bounds.lower <= bounds.upper);
    }
}
