//! Approximate kSPR processing (the paper's future-work direction).
//!
//! The conclusion of the paper names "approximate kSPR algorithms, with
//! accuracy guarantees, for the purpose of faster processing" as future work.
//! This module provides the natural Monte-Carlo baseline for that direction:
//! instead of deriving the exact arrangement cells, it estimates
//!
//! * the **market impact** (the probability that the focal record is in the
//!   top-`k` for a uniformly random preference vector), with a Hoeffding
//!   confidence interval, and
//! * an **approximate region membership oracle** backed by the sampled
//!   preferences, useful for quick exploratory analysis before running one of
//!   the exact algorithms.
//!
//! The estimator evaluates the query definition directly (a top-`k` probe per
//! sample), so its cost is `O(samples · n)` and independent of the arrangement
//! complexity — it stays cheap exactly where the exact algorithms become
//! expensive (large `k`, high dimensionality, anti-correlated data).

use crate::dataset::Dataset;
use crate::naive;
use kspr_geometry::PreferenceSpace;

/// Result of the Monte-Carlo kSPR approximation.
#[derive(Debug, Clone)]
pub struct ApproxImpact {
    /// Point estimate of the market impact in `[0, 1]`.
    pub impact: f64,
    /// Half-width of the two-sided confidence interval at the requested
    /// confidence level (Hoeffding bound, distribution-free).
    pub half_width: f64,
    /// Number of samples used.
    pub samples: usize,
    /// The sampled working-space preferences for which the focal record was
    /// in the top-`k` (a discrete sketch of the kSPR regions).
    pub hits: Vec<Vec<f64>>,
}

impl ApproxImpact {
    /// Lower end of the confidence interval (clamped to `[0, 1]`).
    pub fn lower(&self) -> f64 {
        (self.impact - self.half_width).max(0.0)
    }

    /// Upper end of the confidence interval (clamped to `[0, 1]`).
    pub fn upper(&self) -> f64 {
        (self.impact + self.half_width).min(1.0)
    }
}

/// Estimates the market impact of `focal` by sampling `samples` preference
/// vectors uniformly from the transformed preference space.
///
/// `confidence` is the two-sided confidence level of the reported interval
/// (e.g. `0.95`); the half-width follows from Hoeffding's inequality:
/// `sqrt(ln(2 / (1 - confidence)) / (2 · samples))`.
///
/// # Panics
/// Panics if `samples == 0`, `k == 0`, or `confidence` is not in `(0, 1)`.
pub fn approximate_impact(
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    samples: usize,
    confidence: f64,
    seed: u64,
) -> ApproxImpact {
    assert!(samples > 0, "at least one sample is required");
    assert!(k >= 1, "k must be at least 1");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    let space = PreferenceSpace::transformed(focal.len());
    let raw: Vec<Vec<f64>> = dataset.live_records().map(|r| r.values.clone()).collect();
    let points = naive::sample_weights(&space, samples, seed);
    let mut hits = Vec::new();
    for w in points {
        let full = space.to_full_weight(&w);
        if naive::is_top_k(&raw, focal, &full, k) {
            hits.push(w);
        }
    }
    let impact = hits.len() as f64 / samples as f64;
    let half_width = ((2.0 / (1.0 - confidence)).ln() / (2.0 * samples as f64)).sqrt();
    ApproxImpact {
        impact,
        half_width,
        samples,
        hits,
    }
}

/// Number of samples needed so the Hoeffding half-width is at most `epsilon`
/// at the given confidence level.
pub fn samples_for_accuracy(epsilon: f64, confidence: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    ((2.0 / (1.0 - confidence)).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_lpcta;
    use crate::config::KsprConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect(),
        )
    }

    #[test]
    fn unbeatable_record_has_impact_one() {
        let dataset = Dataset::new(vec![vec![0.1, 0.1], vec![0.2, 0.3]]);
        let approx = approximate_impact(&dataset, &[0.9, 0.9], 1, 500, 0.95, 1);
        assert_eq!(approx.impact, 1.0);
        assert_eq!(approx.hits.len(), 500);
        assert!(approx.upper() <= 1.0 && approx.lower() >= 0.0);
    }

    #[test]
    fn hopeless_record_has_impact_zero() {
        let dataset = Dataset::new(vec![vec![0.9, 0.9], vec![0.8, 0.95]]);
        let approx = approximate_impact(&dataset, &[0.1, 0.1], 1, 500, 0.95, 2);
        assert_eq!(approx.impact, 0.0);
        assert!(approx.hits.is_empty());
    }

    #[test]
    fn estimate_brackets_the_exact_impact() {
        let dataset = random_dataset(300, 3, 3);
        let focal = vec![0.75, 0.7, 0.72];
        let k = 8;
        let exact = run_lpcta(&dataset, &focal, k, &KsprConfig::default()).impact(50_000, 5);
        let approx = approximate_impact(&dataset, &focal, k, 4_000, 0.99, 7);
        assert!(
            exact >= approx.lower() - 0.02 && exact <= approx.upper() + 0.02,
            "exact {exact} outside approx interval [{}, {}]",
            approx.lower(),
            approx.upper()
        );
    }

    #[test]
    fn every_hit_is_actually_a_top_k_preference() {
        let dataset = random_dataset(200, 3, 9);
        let focal = vec![0.8, 0.7, 0.75];
        let k = 5;
        // Validate against the *live* view — the same record set the
        // estimator samples against.  (On a freshly built dataset the two
        // coincide; on a tombstoned store they must not be confused, see
        // `tombstoned_records_never_influence_the_estimate`.)
        let raw: Vec<Vec<f64>> = dataset.live_records().map(|r| r.values.clone()).collect();
        let space = PreferenceSpace::transformed(3);
        let approx = approximate_impact(&dataset, &focal, k, 1_000, 0.95, 11);
        for w in &approx.hits {
            assert!(naive::is_top_k(&raw, &focal, &space.to_full_weight(w), k));
        }
    }

    #[test]
    fn tombstoned_records_never_influence_the_estimate() {
        use crate::dataset::DatasetStore;
        // Record 0 dominates the focal record, so while it is live the focal
        // record can never be top-1 (impact 0); once deleted, the focal
        // record beats everything that is left (impact 1).
        let mut store = DatasetStore::from_raw(vec![vec![0.9, 0.9], vec![0.2, 0.2]]);
        let focal = vec![0.5, 0.5];
        let before = approximate_impact(store.dataset(), &focal, 1, 400, 0.95, 21);
        assert_eq!(before.impact, 0.0);
        assert!(before.hits.is_empty());

        assert_eq!(store.delete(0), Some(vec![0.9, 0.9]));
        let after = approximate_impact(store.dataset(), &focal, 1, 400, 0.95, 21);
        assert_eq!(
            after.impact, 1.0,
            "a deleted dominator must not suppress the estimate"
        );
        assert_eq!(after.hits.len(), 400);

        // The hit-validation invariant holds on the live view even with
        // tombstones present: every hit is a genuine top-k preference of the
        // surviving records.
        let live: Vec<Vec<f64>> = store
            .dataset()
            .live_records()
            .map(|r| r.values.clone())
            .collect();
        let space = PreferenceSpace::transformed(2);
        for w in &after.hits {
            assert!(naive::is_top_k(&live, &focal, &space.to_full_weight(w), 1));
        }
    }

    #[test]
    fn sample_size_calculator_matches_half_width() {
        let eps = 0.01;
        let conf = 0.95;
        let n = samples_for_accuracy(eps, conf);
        let dataset = Dataset::new(vec![vec![0.5, 0.4], vec![0.4, 0.5]]);
        let approx = approximate_impact(&dataset, &[0.45, 0.45], 1, n, conf, 13);
        assert!(approx.half_width <= eps + 1e-9);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_invalid_confidence() {
        let dataset = Dataset::new(vec![vec![0.5, 0.5]]);
        approximate_impact(&dataset, &[0.4, 0.4], 1, 10, 1.5, 1);
    }
}
