//! Approximate kSPR processing (the paper's future-work direction).
//!
//! The conclusion of the paper names "approximate kSPR algorithms, with
//! accuracy guarantees, for the purpose of faster processing" as future work.
//! This module provides the Monte-Carlo primitives for that direction:
//!
//! * the **market impact** estimator [`approximate_impact`] (the probability
//!   that the focal record is in the top-`k` for a uniformly random
//!   preference vector), with a Hoeffding confidence interval,
//! * the **error budget** vocabulary ([`ErrorBudget`]) that turns a caller's
//!   `(epsilon, confidence)` requirement into a sample count via the
//!   Hoeffding bound, and
//! * the **query tier** knob ([`QueryTier`]) consumed by
//!   [`crate::config::KsprConfig`] and dispatched by the `kspr-approx` crate,
//!   which hosts the batched sampling engine built on these primitives.
//!
//! The estimator evaluates the query definition directly (a top-`k` probe per
//! sample), so its cost is `O(samples · n)` and independent of the arrangement
//! complexity — it stays cheap exactly where the exact algorithms become
//! expensive (large `k`, high dimensionality, anti-correlated data).

use crate::dataset::Dataset;
use crate::naive;
use kspr_geometry::PreferenceSpace;

/// Half-width of the two-sided Hoeffding interval at confidence level
/// `confidence` after `samples` draws:
/// `sqrt(ln(2 / (1 - confidence)) / (2 · samples))`.
///
/// # Panics
/// Panics if `samples == 0` or `confidence` is not in `(0, 1)`.
pub fn hoeffding_half_width(confidence: f64, samples: usize) -> f64 {
    assert!(samples > 0, "at least one sample is required");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    ((2.0 / (1.0 - confidence)).ln() / (2.0 * samples as f64)).sqrt()
}

/// A caller-specified accuracy requirement for the approximate tier: the
/// reported impact interval has half-width at most `epsilon` and covers the
/// true impact with probability at least `confidence`.
///
/// The guarantee is distribution-free (Hoeffding's inequality): the sample
/// count [`ErrorBudget::samples`] is chosen so that
/// `2 · exp(-2 · samples · epsilon²) <= 1 - confidence`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// Maximum half-width of the reported confidence interval, in `(0, 1)`.
    pub epsilon: f64,
    /// Two-sided confidence level of the interval, in `(0, 1)`.
    pub confidence: f64,
}

impl ErrorBudget {
    /// A validated budget.
    ///
    /// # Panics
    /// Panics if `epsilon` or `confidence` is outside `(0, 1)`.
    pub fn new(epsilon: f64, confidence: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1), got {confidence}"
        );
        Self {
            epsilon,
            confidence,
        }
    }

    /// Number of samples the Hoeffding bound requires for this budget.
    pub fn samples(&self) -> usize {
        samples_for_accuracy(self.epsilon, self.confidence)
    }

    /// The interval half-width this budget's confidence level yields after
    /// `samples` draws (at most `epsilon` when `samples >=`
    /// [`ErrorBudget::samples`]).
    pub fn half_width(&self, samples: usize) -> f64 {
        hoeffding_half_width(self.confidence, samples)
    }
}

impl Default for ErrorBudget {
    /// `epsilon = 0.05` at 95% confidence (≈ 738 samples) — tight enough to
    /// rank options by impact, loose enough to beat the exact engine by an
    /// order of magnitude on arrangement-bound queries.
    fn default() -> Self {
        Self {
            epsilon: 0.05,
            confidence: 0.95,
        }
    }
}

/// Which processing tier answers a kSPR query (the
/// [`crate::config::KsprConfig::tier`] knob, dispatched by `kspr-approx` and
/// the `kspr-serve` front-end).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QueryTier {
    /// The exact engine: full region decomposition, paper semantics.  The
    /// default — and with it every pipeline is bit-for-bit the pre-tier
    /// behavior.
    #[default]
    Exact,
    /// The Monte-Carlo tier: an impact estimate within the budget's interval
    /// instead of exact regions.
    Approximate {
        /// Accuracy the estimate must meet.
        budget: ErrorBudget,
    },
    /// Cost-based routing: queries whose estimated arrangement cost is at
    /// most `cost_threshold` run exactly; arrangement-bound ones fall back to
    /// sampling under `budget`.  The cost estimate is
    /// `candidates^work_dim` — the arrangement-size bound for the candidate
    /// hyperplanes in the working space (see `kspr-approx`).
    Auto {
        /// Accuracy of the sampling fallback.
        budget: ErrorBudget,
        /// Largest estimated arrangement cost still routed to the exact
        /// engine.
        cost_threshold: f64,
    },
}

impl QueryTier {
    /// Default routing threshold of [`QueryTier::auto`]: at the repo's
    /// benchmark scales this sends small-`k` / low-`d` queries (candidate
    /// bands of tens of records in 2 working dimensions) to the exact engine
    /// and arrangement-bound ones (hundreds of candidates, 3+ working
    /// dimensions) to sampling.
    pub const DEFAULT_COST_THRESHOLD: f64 = 1.0e6;

    /// The approximate tier under `budget`.
    pub fn approximate(budget: ErrorBudget) -> Self {
        QueryTier::Approximate { budget }
    }

    /// Cost-based routing with the default threshold.
    pub fn auto(budget: ErrorBudget) -> Self {
        QueryTier::Auto {
            budget,
            cost_threshold: Self::DEFAULT_COST_THRESHOLD,
        }
    }

    /// Resolves the tier to the budget the query should sample under —
    /// `None` means "run exactly".  `estimated_cost` is invoked only for
    /// `Auto` (the cost probe may touch engine caches), and routes to
    /// sampling strictly above the threshold.  This is the single routing
    /// rule every dispatch layer (engine, sharded pool, server) applies.
    pub fn resolve(self, estimated_cost: impl FnOnce() -> f64) -> Option<ErrorBudget> {
        match self {
            QueryTier::Exact => None,
            QueryTier::Approximate { budget } => Some(budget),
            QueryTier::Auto {
                budget,
                cost_threshold,
            } => (estimated_cost() > cost_threshold).then_some(budget),
        }
    }
}

/// Estimator options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ApproxOptions {
    /// Retain the sampled preference vectors for which the focal record was
    /// in the top-`k` (a discrete sketch of the kSPR regions) in
    /// [`ApproxImpact::hits`].  Off by default: the sketch clones every hit
    /// weight vector, which the serving hot path never reads.
    pub keep_hits: bool,
}

impl ApproxOptions {
    /// Options with the hit sketch retained.
    pub fn with_hits() -> Self {
        Self { keep_hits: true }
    }
}

/// Result of the Monte-Carlo kSPR approximation.
#[derive(Debug, Clone)]
pub struct ApproxImpact {
    /// Point estimate of the market impact in `[0, 1]`.
    pub impact: f64,
    /// Half-width of the two-sided confidence interval at the requested
    /// confidence level (Hoeffding bound, distribution-free).
    pub half_width: f64,
    /// Number of samples used.
    pub samples: usize,
    /// The sampled working-space preferences for which the focal record was
    /// in the top-`k` — retained only under [`ApproxOptions::keep_hits`],
    /// empty otherwise.
    pub hits: Vec<Vec<f64>>,
}

impl ApproxImpact {
    /// Lower end of the confidence interval (clamped to `[0, 1]`).
    pub fn lower(&self) -> f64 {
        (self.impact - self.half_width).max(0.0)
    }

    /// Upper end of the confidence interval (clamped to `[0, 1]`).
    pub fn upper(&self) -> f64 {
        (self.impact + self.half_width).min(1.0)
    }

    /// True iff `impact` lies inside the reported confidence interval.
    pub fn covers(&self, impact: f64) -> bool {
        impact >= self.lower() && impact <= self.upper()
    }
}

/// Estimates the market impact of `focal` by sampling `samples` preference
/// vectors uniformly from the transformed preference space, without
/// retaining the hit sketch (see [`approximate_impact_with`]).
///
/// `confidence` is the two-sided confidence level of the reported interval
/// (e.g. `0.95`); the half-width follows from Hoeffding's inequality:
/// `sqrt(ln(2 / (1 - confidence)) / (2 · samples))`.
///
/// # Panics
/// Panics if `samples == 0`, `k == 0`, or `confidence` is not in `(0, 1)`.
pub fn approximate_impact(
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    samples: usize,
    confidence: f64,
    seed: u64,
) -> ApproxImpact {
    approximate_impact_with(
        dataset,
        focal,
        k,
        samples,
        confidence,
        seed,
        &ApproxOptions::default(),
    )
}

/// Like [`approximate_impact`], with explicit [`ApproxOptions`] — pass
/// [`ApproxOptions::with_hits`] to retain the sampled hit sketch (one cloned
/// weight vector per hit, skipped entirely on the default hot path).
pub fn approximate_impact_with(
    dataset: &Dataset,
    focal: &[f64],
    k: usize,
    samples: usize,
    confidence: f64,
    seed: u64,
    options: &ApproxOptions,
) -> ApproxImpact {
    assert!(k >= 1, "k must be at least 1");
    let half_width = hoeffding_half_width(confidence, samples);
    let space = PreferenceSpace::transformed(focal.len());
    let raw: Vec<Vec<f64>> = dataset.live_records().map(|r| r.values.clone()).collect();
    let points = naive::sample_weights(&space, samples, seed);
    let mut hit_count = 0usize;
    let mut hits = Vec::new();
    for w in points {
        let full = space.to_full_weight(&w);
        if naive::is_top_k(&raw, focal, &full, k) {
            hit_count += 1;
            if options.keep_hits {
                hits.push(w);
            }
        }
    }
    let impact = hit_count as f64 / samples as f64;
    ApproxImpact {
        impact,
        half_width,
        samples,
        hits,
    }
}

/// Number of samples needed so the Hoeffding half-width is at most `epsilon`
/// at the given confidence level.
pub fn samples_for_accuracy(epsilon: f64, confidence: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    ((2.0 / (1.0 - confidence)).ln() / (2.0 * epsilon * epsilon)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::run_lpcta;
    use crate::config::KsprConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        Dataset::new(
            (0..n)
                .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
                .collect(),
        )
    }

    #[test]
    fn unbeatable_record_has_impact_one() {
        let dataset = Dataset::new(vec![vec![0.1, 0.1], vec![0.2, 0.3]]);
        let approx = approximate_impact_with(
            &dataset,
            &[0.9, 0.9],
            1,
            500,
            0.95,
            1,
            &ApproxOptions::with_hits(),
        );
        assert_eq!(approx.impact, 1.0);
        assert_eq!(approx.hits.len(), 500);
        assert!(approx.upper() <= 1.0 && approx.lower() >= 0.0);
        assert!(approx.covers(1.0));
    }

    #[test]
    fn hopeless_record_has_impact_zero() {
        let dataset = Dataset::new(vec![vec![0.9, 0.9], vec![0.8, 0.95]]);
        let approx = approximate_impact(&dataset, &[0.1, 0.1], 1, 500, 0.95, 2);
        assert_eq!(approx.impact, 0.0);
        assert!(approx.hits.is_empty());
    }

    #[test]
    fn hit_sketch_is_opt_in_and_does_not_change_the_estimate() {
        let dataset = random_dataset(150, 3, 5);
        let focal = vec![0.7, 0.7, 0.7];
        let plain = approximate_impact(&dataset, &focal, 4, 600, 0.95, 3);
        let sketched = approximate_impact_with(
            &dataset,
            &focal,
            4,
            600,
            0.95,
            3,
            &ApproxOptions::with_hits(),
        );
        assert!(
            plain.hits.is_empty(),
            "the default path must not allocate the sketch"
        );
        assert_eq!(plain.impact, sketched.impact, "same seed, same estimate");
        assert_eq!(plain.half_width, sketched.half_width);
        assert_eq!(
            sketched.hits.len(),
            (sketched.impact * sketched.samples as f64).round() as usize
        );
    }

    #[test]
    fn estimate_brackets_the_exact_impact() {
        let dataset = random_dataset(300, 3, 3);
        let focal = vec![0.75, 0.7, 0.72];
        let k = 8;
        let exact = run_lpcta(&dataset, &focal, k, &KsprConfig::default()).impact(50_000, 5);
        let approx = approximate_impact(&dataset, &focal, k, 4_000, 0.99, 7);
        assert!(
            exact >= approx.lower() - 0.02 && exact <= approx.upper() + 0.02,
            "exact {exact} outside approx interval [{}, {}]",
            approx.lower(),
            approx.upper()
        );
    }

    #[test]
    fn every_hit_is_actually_a_top_k_preference() {
        let dataset = random_dataset(200, 3, 9);
        let focal = vec![0.8, 0.7, 0.75];
        let k = 5;
        // Validate against the *live* view — the same record set the
        // estimator samples against.  (On a freshly built dataset the two
        // coincide; on a tombstoned store they must not be confused, see
        // `tombstoned_records_never_influence_the_estimate`.)
        let raw: Vec<Vec<f64>> = dataset.live_records().map(|r| r.values.clone()).collect();
        let space = PreferenceSpace::transformed(3);
        let approx = approximate_impact_with(
            &dataset,
            &focal,
            k,
            1_000,
            0.95,
            11,
            &ApproxOptions::with_hits(),
        );
        for w in &approx.hits {
            assert!(naive::is_top_k(&raw, &focal, &space.to_full_weight(w), k));
        }
    }

    #[test]
    fn tombstoned_records_never_influence_the_estimate() {
        use crate::dataset::DatasetStore;
        // Record 0 dominates the focal record, so while it is live the focal
        // record can never be top-1 (impact 0); once deleted, the focal
        // record beats everything that is left (impact 1).
        let mut store = DatasetStore::from_raw(vec![vec![0.9, 0.9], vec![0.2, 0.2]]);
        let focal = vec![0.5, 0.5];
        let sketch = ApproxOptions::with_hits();
        let before = approximate_impact_with(store.dataset(), &focal, 1, 400, 0.95, 21, &sketch);
        assert_eq!(before.impact, 0.0);
        assert!(before.hits.is_empty());

        assert_eq!(store.delete(0), Some(vec![0.9, 0.9]));
        let after = approximate_impact_with(store.dataset(), &focal, 1, 400, 0.95, 21, &sketch);
        assert_eq!(
            after.impact, 1.0,
            "a deleted dominator must not suppress the estimate"
        );
        assert_eq!(after.hits.len(), 400);

        // The hit-validation invariant holds on the live view even with
        // tombstones present: every hit is a genuine top-k preference of the
        // surviving records.
        let live: Vec<Vec<f64>> = store
            .dataset()
            .live_records()
            .map(|r| r.values.clone())
            .collect();
        let space = PreferenceSpace::transformed(2);
        for w in &after.hits {
            assert!(naive::is_top_k(&live, &focal, &space.to_full_weight(w), 1));
        }
    }

    #[test]
    fn sample_size_calculator_matches_half_width() {
        let eps = 0.01;
        let conf = 0.95;
        let n = samples_for_accuracy(eps, conf);
        let dataset = Dataset::new(vec![vec![0.5, 0.4], vec![0.4, 0.5]]);
        let approx = approximate_impact(&dataset, &[0.45, 0.45], 1, n, conf, 13);
        assert!(approx.half_width <= eps + 1e-9);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn rejects_invalid_confidence() {
        let dataset = Dataset::new(vec![vec![0.5, 0.5]]);
        approximate_impact(&dataset, &[0.4, 0.4], 1, 10, 1.5, 1);
    }

    #[test]
    fn error_budget_meets_itself() {
        let budget = ErrorBudget::new(0.05, 0.95);
        let n = budget.samples();
        assert_eq!(n, samples_for_accuracy(0.05, 0.95));
        assert!(budget.half_width(n) <= budget.epsilon + 1e-12);
        assert!(
            budget.half_width(n - 50) > budget.epsilon,
            "fewer samples must miss the budget"
        );
        // Tighter budgets need more samples, at the Hoeffding 1/eps^2 rate.
        assert!(ErrorBudget::new(0.01, 0.95).samples() > 20 * n);
        assert!(ErrorBudget::new(0.05, 0.99).samples() > n);
        let default = ErrorBudget::default();
        assert_eq!(default.epsilon, 0.05);
        assert_eq!(default.confidence, 0.95);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn error_budget_rejects_bad_epsilon() {
        ErrorBudget::new(0.0, 0.95);
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn error_budget_rejects_bad_confidence() {
        ErrorBudget::new(0.1, 1.0);
    }

    #[test]
    fn tier_resolution_routes_by_cost() {
        let budget = ErrorBudget::new(0.05, 0.95);
        assert_eq!(QueryTier::Exact.resolve(|| unreachable!()), None);
        assert_eq!(
            QueryTier::approximate(budget).resolve(|| unreachable!()),
            Some(budget)
        );
        let auto = QueryTier::Auto {
            budget,
            cost_threshold: 100.0,
        };
        assert_eq!(auto.resolve(|| 100.0), None, "at the threshold: exact");
        assert_eq!(auto.resolve(|| 100.1), Some(budget), "above: sampling");
    }

    #[test]
    fn query_tier_constructors() {
        assert_eq!(QueryTier::default(), QueryTier::Exact);
        let budget = ErrorBudget::new(0.02, 0.9);
        assert_eq!(
            QueryTier::approximate(budget),
            QueryTier::Approximate { budget }
        );
        match QueryTier::auto(budget) {
            QueryTier::Auto {
                budget: b,
                cost_threshold,
            } => {
                assert_eq!(b, budget);
                assert_eq!(cost_threshold, QueryTier::DEFAULT_COST_THRESHOLD);
            }
            other => panic!("expected Auto, got {other:?}"),
        }
    }
}
