//! Brute-force oracles used by tests, examples and the benchmark harness.
//!
//! None of these functions is part of the kSPR algorithms themselves; they
//! evaluate the *definition* of the query directly (score every record under
//! a concrete weight vector) and are therefore trustworthy reference answers
//! for correctness checks and for the probabilistic market-impact estimates
//! shown in the examples.

use crate::result::KsprResult;
use kspr_geometry::PreferenceSpace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Rank of the focal record among `records` under the full `d`-dimensional
/// weight vector `w`: one plus the number of records with a strictly higher
/// score.
pub fn rank_of(records: &[Vec<f64>], focal: &[f64], w: &[f64]) -> usize {
    let score = |r: &[f64]| -> f64 { r.iter().zip(w).map(|(v, wi)| v * wi).sum() };
    let focal_score = score(focal);
    1 + records
        .iter()
        .filter(|r| score(r) > focal_score + 1e-12)
        .count()
}

/// True iff the focal record is in the top-`k` under weight vector `w`.
pub fn is_top_k(records: &[Vec<f64>], focal: &[f64], w: &[f64], k: usize) -> bool {
    rank_of(records, focal, w) <= k
}

/// Samples `n` working-space points uniformly from the preference space.
pub fn sample_weights(space: &PreferenceSpace, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let dim = space.work_dim();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let w: Vec<f64> = (0..dim).map(|_| rng.gen_range(1e-6..1.0)).collect();
        if space.contains(&w) {
            out.push(w);
        }
    }
    out
}

/// Fraction of sampled weight vectors on which a kSPR result agrees with the
/// brute-force definition of the query.
///
/// A correct result yields agreement 1.0 (up to points that fall numerically
/// on cell boundaries, which have probability ~0 under random sampling).
pub fn classification_agreement(
    result: &KsprResult,
    records: &[Vec<f64>],
    focal: &[f64],
    k: usize,
    samples: usize,
    seed: u64,
) -> f64 {
    let points = sample_weights(&result.space, samples, seed);
    let mut agree = 0usize;
    for w in &points {
        let full = result.space.to_full_weight(w);
        let oracle = is_top_k(records, focal, &full, k);
        if oracle == result.contains(w) {
            agree += 1;
        }
    }
    agree as f64 / points.len() as f64
}

/// Monte-Carlo estimate of the market impact (probability that the focal
/// record is in the top-`k` for a uniformly random preference), computed
/// directly from the query definition.  Used to validate
/// [`KsprResult::impact`].
pub fn impact_monte_carlo(
    records: &[Vec<f64>],
    focal: &[f64],
    k: usize,
    space: &PreferenceSpace,
    samples: usize,
    seed: u64,
) -> f64 {
    let points = sample_weights(space, samples, seed);
    let hits = points
        .iter()
        .filter(|w| is_top_k(records, focal, &space.to_full_weight(w), k))
        .count();
    hits as f64 / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_better_records() {
        let records = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.6, 0.6]];
        let focal = vec![0.5, 0.5];
        let w = vec![0.5, 0.5];
        // Scores: 0.5, 0.5, 0.6 vs focal 0.5 -> only one strictly better.
        assert_eq!(rank_of(&records, &focal, &w), 2);
        assert!(is_top_k(&records, &focal, &w, 2));
        assert!(!is_top_k(&records, &focal, &w, 1));
    }

    #[test]
    fn sampled_weights_lie_in_space() {
        let t = PreferenceSpace::transformed(4);
        for w in sample_weights(&t, 200, 1) {
            assert!(t.contains(&w));
        }
        let o = PreferenceSpace::original(3);
        for w in sample_weights(&o, 200, 1) {
            assert!(o.contains(&w));
        }
    }

    #[test]
    fn monte_carlo_impact_of_unbeatable_record_is_one() {
        let records = vec![vec![0.1, 0.1], vec![0.2, 0.3]];
        let focal = vec![0.9, 0.9];
        let space = PreferenceSpace::transformed(2);
        let p = impact_monte_carlo(&records, &focal, 1, &space, 500, 3);
        assert_eq!(p, 1.0);
    }
}
