//! # kspr — k-Shortlist Preference Region identification
//!
//! A from-scratch Rust implementation of the kSPR query of
//! *Tang, Mouratidis and Yiu, "Determining the Impact Regions of Competing
//! Options in Preference Space", SIGMOD 2017*.
//!
//! Given a dataset `D` of `d`-dimensional options, a focal record `p` and an
//! integer `k`, the kSPR query reports **every region of the preference
//! space** (the space of linear-scoring weight vectors) in which `p` ranks
//! among the top-`k` options.  Those regions describe exactly which user
//! profiles find `p` attractive — the paper's motivating applications are
//! market-impact analysis, customer identification and targeted advertising.
//!
//! ## Algorithms
//!
//! | Algorithm | Paper section | Entry point |
//! |---|---|---|
//! | CTA — Cell Tree Approach | §4 | [`algorithms::run_cta`] |
//! | P-CTA — Progressive CTA | §5 | [`algorithms::run_pcta`] |
//! | LP-CTA — Look-ahead Progressive CTA | §6 | [`algorithms::run_lpcta`] |
//! | k-skyband + CTA baseline | Appendix B | [`algorithms::run_skyband`] |
//! | RTOPK (monochromatic reverse top-k, `d = 2`) | §2, Vlachou et al. | [`rtopk::run_rtopk`] |
//! | iMaxRank (incremental maximum-rank) baseline | §2, Mouratidis et al. | [`maxrank::run_imaxrank`] |
//!
//! All of CTA / P-CTA / LP-CTA can run either in the *transformed* preference
//! space (Section 3.2, the default) or in the *original* space (Appendix C)
//! through [`KsprConfig::space`], which yields the paper's OP-CTA / OLP-CTA
//! variants.
//!
//! ## Architecture
//!
//! The CellTree-based methods share a single traversal loop in the
//! [`engine`] module: each algorithm is an [`engine::ExpansionPolicy`]
//! plugged into [`engine::QueryEngine`].  The engine also offers
//! [`engine::QueryEngine::run_batch`], which answers many focal-record
//! queries in parallel with shared, focal-independent preprocessing —
//! the entry point for serving query workloads rather than single lookups.
//!
//! ## Quick start
//!
//! ```
//! use kspr::{Dataset, KsprConfig, algorithms};
//!
//! // Figure 1 of the paper: restaurants rated on value, service, ambiance.
//! let restaurants = vec![
//!     vec![0.3, 0.8, 0.8], // L'Entrecôte
//!     vec![0.9, 0.4, 0.4], // Beirut Grill
//!     vec![0.8, 0.3, 0.4], // El Coyote
//!     vec![0.4, 0.3, 0.6], // La Braceria
//! ];
//! let kyma = vec![0.5, 0.5, 0.7];
//!
//! let dataset = Dataset::new(restaurants);
//! let result = algorithms::run_lpcta(&dataset, &kyma, 3, &KsprConfig::default());
//!
//! // Kyma is in the top-3 for the "balanced" preference (1/3, 1/3, 1/3) ...
//! assert!(result.contains_full_weight(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]));
//! // ... and the regions cover a measurable share of all possible preferences.
//! assert!(result.impact(10_000, 42) > 0.0);
//! ```

pub mod algorithms;
pub mod approximate;
pub mod bounds;
pub mod celltree;
pub mod config;
pub mod dataset;
pub mod engine;
pub mod hyperplanes;
pub mod maxrank;
pub mod naive;
pub mod prep;
pub mod result;
pub mod rtopk;
pub mod stats;

pub use algorithms::{run, run_batch, Algorithm};
pub use approximate::{ApproxImpact, ApproxOptions, ErrorBudget, QueryTier};
pub use config::{BoundMode, KsprConfig};
pub use dataset::{check_record, Dataset, DatasetStore, IngestError};
pub use engine::{
    CtaPolicy, ExpansionPolicy, PreparedQuery, ProgressivePolicy, QueryEngine, SharedPrep,
    SkybandPolicy,
};
pub use result::{KsprResult, Region};
pub use stats::{PhaseNanos, QueryStats};

// Re-export the pieces of the substrate crates that appear in this crate's
// public API, so downstream users only need a `kspr` dependency.
pub use kspr_geometry::{PreferenceSpace, Space};
pub use kspr_spatial::{ColumnarBlock, DomClass, Record, RecordId};
