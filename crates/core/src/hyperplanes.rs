//! The hyperplane store: one separating hyperplane per processed record.
//!
//! Cells of the CellTree reference hyperplanes by index (a [`Halfspace`] is a
//! `(plane index, sign)` pair), so all hyperplanes live in a central store
//! that also remembers which record produced each of them.

use kspr_geometry::{Halfspace, Hyperplane, PreferenceSpace, Sign};
use kspr_lp::LinearConstraint;
use kspr_spatial::RecordId;

/// Central store of record-induced hyperplanes.
#[derive(Debug, Clone)]
pub struct HyperplaneStore {
    space: PreferenceSpace,
    focal: Vec<f64>,
    planes: Vec<Hyperplane>,
    /// Record (filtered id) that produced each plane.
    sources: Vec<RecordId>,
}

impl HyperplaneStore {
    /// Creates an empty store for a given focal record and space.
    pub fn new(space: PreferenceSpace, focal: Vec<f64>) -> Self {
        assert_eq!(focal.len(), space.data_dim, "focal arity mismatch");
        Self {
            space,
            focal,
            planes: Vec::new(),
            sources: Vec::new(),
        }
    }

    /// The working preference space.
    pub fn space(&self) -> &PreferenceSpace {
        &self.space
    }

    /// The focal record.
    pub fn focal(&self) -> &[f64] {
        &self.focal
    }

    /// Number of stored hyperplanes.
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// True iff no hyperplane has been added yet.
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// Adds the hyperplane separating `record` from the focal record and
    /// returns its index.
    pub fn add(&mut self, record_id: RecordId, record_values: &[f64]) -> usize {
        let plane = Hyperplane::separating(record_values, &self.focal, &self.space);
        self.planes.push(plane);
        self.sources.push(record_id);
        self.planes.len() - 1
    }

    /// The hyperplane with index `idx`.
    pub fn plane(&self, idx: usize) -> &Hyperplane {
        &self.planes[idx]
    }

    /// The (filtered) record id that produced plane `idx`.
    pub fn source(&self, idx: usize) -> RecordId {
        self.sources[idx]
    }

    /// The LP constraint for one side of plane `idx`.
    pub fn constraint(&self, half: Halfspace, strict: bool) -> LinearConstraint {
        self.planes[half.plane].constraint(half.sign, strict)
    }

    /// The side of plane `idx` on which a working-space point lies
    /// (`None` if the point is on the plane).
    pub fn side(&self, idx: usize, point: &[f64]) -> Option<Sign> {
        self.planes[idx].side(point)
    }

    /// Materializes the `(hyperplane, sign)` pairs for a halfspace list —
    /// used when packaging result regions.
    pub fn materialize(&self, halves: &[Halfspace]) -> Vec<(Hyperplane, Sign)> {
        halves
            .iter()
            .map(|h| (self.planes[h.plane].clone(), h.sign))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kspr_geometry::Sign;

    #[test]
    fn store_round_trip() {
        let space = PreferenceSpace::transformed(3);
        let mut store = HyperplaneStore::new(space, vec![0.5, 0.5, 0.7]);
        assert!(store.is_empty());
        let idx = store.add(7, &[0.3, 0.8, 0.8]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.source(idx), 7);
        assert_eq!(store.plane(idx).dim(), 2);
        let c = store.constraint(Halfspace::negative(idx), true);
        assert_eq!(c.coeffs.len(), 2);
        let mats = store.materialize(&[Halfspace::positive(idx)]);
        assert_eq!(mats.len(), 1);
        assert_eq!(mats[0].1, Sign::Positive);
    }

    #[test]
    #[should_panic(expected = "focal arity mismatch")]
    fn rejects_wrong_focal_arity() {
        HyperplaneStore::new(PreferenceSpace::transformed(3), vec![0.5, 0.5]);
    }
}
